#include "cache/prefetcher.hh"

namespace dx::cache
{

StridePrefetcher::StridePrefetcher(const Config &cfg)
    : cfg_(cfg), table_(cfg.tableSize)
{
}

StridePrefetcher::Entry &
StridePrefetcher::entryFor(std::uint16_t pc)
{
    return table_[pc % cfg_.tableSize];
}

void
StridePrefetcher::observe(const CacheReq &req, bool miss)
{
    (void)miss;
    if (req.pc == 0 || req.write)
        return;

    Entry &e = entryFor(req.pc);
    if (!e.valid || e.pc != req.pc) {
        e = Entry{};
        e.pc = req.pc;
        e.valid = true;
        e.lastAddr = req.addr;
        return;
    }

    const std::int64_t delta =
        static_cast<std::int64_t>(req.addr) -
        static_cast<std::int64_t>(e.lastAddr);
    e.lastAddr = req.addr;
    if (delta == 0)
        return;

    if (delta == e.stride) {
        if (e.confidence < cfg_.confidenceThreshold + 2)
            ++e.confidence;
    } else {
        if (--e.confidence <= 0) {
            e.stride = delta;
            e.confidence = 1;
        }
        return;
    }

    if (e.confidence < cfg_.confidenceThreshold)
        return;

    // Confident stream: prefetch `degree` lines starting `distance`
    // ahead of the demand stream. For sub-line strides the depth is
    // counted in whole lines so the prefetcher actually runs ahead.
    const std::int64_t lineStride =
        std::abs(e.stride) < static_cast<std::int64_t>(kLineBytes)
            ? (e.stride > 0 ? static_cast<std::int64_t>(kLineBytes)
                            : -static_cast<std::int64_t>(kLineBytes))
            : e.stride;
    for (unsigned k = 0; k < cfg_.degree; ++k) {
        const Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(req.addr) +
            lineStride * static_cast<std::int64_t>(cfg_.distance + k));
        const Addr line = lineAlign(target);
        if (line == e.lastIssued)
            continue;
        e.lastIssued = line;
        if (queue_.size() < cfg_.queueMax)
            queue_.push_back(line);
    }
}

bool
StridePrefetcher::nextPrefetch(Addr &line)
{
    if (queue_.empty())
        return false;
    line = queue_.front();
    queue_.pop_front();
    return true;
}

} // namespace dx::cache

#include "dx100/dx100.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "dx100/functional.hh"
#include "sim/stat_registry.hh"

namespace dx::dx100
{

Dx100::Dx100(const Dx100Config &cfg, mem::DramSystem &dram,
             cache::CachePort *llcPort, CoherencyAgent agent,
             unsigned maxCores)
    : Component("dx100"), cfg_(cfg), dram_(dram),
      llcPopAddr_(llcPort ? llcPort->popCountAddr() : nullptr),
      agent_(agent),
      tlb_(cfg.tlbEntries, cfg.tlbMissPenalty),
      doorbells_(maxCores), sideband_(maxCores),
      regs_(cfg.numRegs, 0), tileReady_(cfg.numTiles, true),
      tileProgress_(cfg.numTiles),
      tables_({dram.geometry().totalBanks(), cfg.rowsPerSlice,
               cfg.colsPerRow})
{
    if (llcPort)
        llcPort_.bind(*llcPort);
    retired_.push_back(true); // id 0 unused
    streamSink_.owner = this;
    llcSink_.owner = this;
    spdPort_.owner = this;
    const unsigned linesPerTile = cfg_.tileElems * Dx100Config::kSpdLane /
                                  kLineBytes;
    spdCached_.assign(cfg_.numTiles,
                      std::vector<bool>(linesPerTile, false));
    indirect_.rrPtr.assign(dram_.channels(), 0);
}

// ---------------------------------------------------------------------
// Sideband + MMIO
// ---------------------------------------------------------------------

std::uint64_t
Dx100::registerPayload(int coreId, ExecPayload payload)
{
    dx_assert(static_cast<unsigned>(coreId) < sideband_.size(),
              "core id out of range");
    payload.id = nextId_++;
    retired_.push_back(false);
    const std::uint64_t id = payload.id;
    sideband_[static_cast<unsigned>(coreId)].push_back(
        std::move(payload));
    return id;
}

void
Dx100::registerRegion(Addr base, Addr size)
{
    tlb_.installRange(base, size);
}

void
Dx100::mmioWrite(Addr addr, std::uint64_t data, int coreId)
{
    qMemo_ = QMemo::kNone;
    if (addr >= cfg_.rfBase() &&
        addr < cfg_.rfBase() + cfg_.numRegs * 8) {
        regs_[(addr - cfg_.rfBase()) / 8] = data;
        return;
    }

    const Addr off = addr - cfg_.mmioBase;
    const unsigned core = static_cast<unsigned>(
        off / Dx100Config::kDoorbellStride);
    const unsigned word = static_cast<unsigned>(
        (off % Dx100Config::kDoorbellStride) / 8);
    dx_assert(core < doorbells_.size(), "doorbell out of range");
    dx_assert(static_cast<int>(core) == coreId,
              "core wrote another core's doorbell");

    Doorbell &db = doorbells_[core];
    dx_assert(word == db.have, "doorbell words arrived out of order");
    db.words[word] = data;
    if (++db.have < 3)
        return;
    db.have = 0;

    dx_assert(!sideband_[core].empty(),
              "doorbell completed with no registered payload");
    ExecPayload payload = std::move(sideband_[core].front());
    sideband_[core].pop_front();

    // The architectural bits must round-trip: the doorbell words are
    // the actual encoding of the registered instruction.
    const Instruction decoded = decode(db.words);
    dx_assert(decoded == payload.instr,
              "doorbell encoding does not match registered payload");

    inputQueue_.push_back(std::move(payload));
    dispatchWait_ = false;
}

bool
Dx100::mmioReady(std::uint64_t token, int coreId)
{
    (void)coreId;
    dx_assert(token < retired_.size(), "bogus wait token");
    return retired_[token];
}

bool
Dx100::tileReady(unsigned tile) const
{
    dx_assert(tile < tileReady_.size(), "tile out of range");
    return tileReady_[tile];
}

// ---------------------------------------------------------------------
// Scoreboard / dispatch
// ---------------------------------------------------------------------

Dx100::UnitKind
Dx100::unitFor(Opcode op)
{
    switch (op) {
      case Opcode::kSld:
      case Opcode::kSst:
        return UnitKind::kStream;
      case Opcode::kIld:
      case Opcode::kIst:
      case Opcode::kIrmw:
        return UnitKind::kIndirect;
      case Opcode::kAluv:
      case Opcode::kAlus:
        return UnitKind::kAlu;
      case Opcode::kRng:
        return UnitKind::kRange;
    }
    dx_panic("bad opcode");
}

std::uint64_t
Dx100::tileMaskDest(const Instruction &i) const
{
    std::uint64_t m = 0;
    if (i.td != kNoOperand)
        m |= std::uint64_t{1} << i.td;
    if (i.td2 != kNoOperand)
        m |= std::uint64_t{1} << i.td2;
    return m;
}

std::uint64_t
Dx100::tileMaskSrc(const Instruction &i) const
{
    std::uint64_t m = 0;
    if (i.ts1 != kNoOperand)
        m |= std::uint64_t{1} << i.ts1;
    if (i.ts2 != kNoOperand)
        m |= std::uint64_t{1} << i.ts2;
    if (i.tc != kNoOperand)
        m |= std::uint64_t{1} << i.tc;
    return m;
}

std::uint32_t
Dx100::gateLimit(const Active &a)
{
    std::uint32_t limit = ~std::uint32_t{0};
    for (const auto &g : a.srcGates) {
        if (g)
            limit = std::min(limit, g->prefix);
    }
    return limit;
}

void
Dx100::tryDispatch()
{
    dispatchWait_ = false;
    if (inputQueue_.empty())
        return;
    bool regionRetry = false;

    // Collect hazard masks of everything already executing.
    std::uint64_t activeDest = 0;
    std::uint64_t activeAny = 0;
    auto addActive = [&](const Active &a) {
        if (!a.valid)
            return;
        activeDest |= a.destMask;
        activeAny |= a.destMask | a.srcMask;
    };
    addActive(stream_.active);
    addActive(indirect_.active);
    addActive(alu_.active);
    addActive(range_.active);

    // Out-of-order dispatch within a bounded window, preserving
    // dependences against both executing and older queued instructions.
    std::uint64_t olderDest = 0;
    std::uint64_t olderAny = 0;
    const std::size_t window =
        std::min<std::size_t>(inputQueue_.size(), cfg_.dispatchWindow);
    for (std::size_t i = 0; i < window; ++i) {
        const ExecPayload &p = inputQueue_[i];
        const std::uint64_t dest = tileMaskDest(p.instr);
        const std::uint64_t src = tileMaskSrc(p.instr);
        const UnitKind unit = unitFor(p.instr.op);

        const bool unitFree =
            (unit == UnitKind::kStream && !stream_.busy) ||
            (unit == UnitKind::kIndirect && !indirect_.busy) ||
            (unit == UnitKind::kAlu && !alu_.busy) ||
            (unit == UnitKind::kRange && !range_.busy);

        // WAW/WAR against anything in flight or older in the queue
        // still blocks; RAW against an *executing* producer is allowed
        // and gated element-wise on its finish-bit progress (§3.5).
        const bool hazard =
            (dest & (activeAny | olderAny)) != 0 ||
            (src & olderDest) != 0;

        // Cross-instance region coherence: stores/RMWs need write
        // ownership of their target region (§6.6).
        const bool needsRegion =
            regionDir_ && (p.instr.op == Opcode::kIst ||
                           p.instr.op == Opcode::kIrmw ||
                           p.instr.op == Opcode::kSst);
        if (unitFree && !hazard && needsRegion &&
            !regionDir_->tryAcquireWrite(instanceId_, p.instr.base,
                                         now_)) {
            regionRetry = true;
            olderDest |= dest;
            olderAny |= dest | src;
            continue;
        }

        if (unitFree && !hazard) {
            ExecPayload payload = std::move(inputQueue_[i]);
            inputQueue_.erase(inputQueue_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            dispatchTo(unit, std::move(payload));
            return;
        }
        olderDest |= dest;
        olderAny |= dest | src;
    }
    dispatchWait_ = !regionRetry;
    ++stats_.dispatchStalls;
}

void
Dx100::dispatchTo(UnitKind unit, ExecPayload &&payload)
{
    Active a;
    a.valid = true;
    a.destMask = tileMaskDest(payload.instr);
    a.srcMask = tileMaskSrc(payload.instr);
    a.payload = std::move(payload);

    // Capture the finish-bit progress of still-executing producers of
    // our source tiles, then publish fresh progress for our dests.
    for (unsigned t = 0; t < cfg_.numTiles; ++t) {
        const std::uint64_t bit = std::uint64_t{1} << t;
        if ((a.srcMask & bit) && tileProgress_[t] &&
            tileProgress_[t]->prefix < tileProgress_[t]->total) {
            a.srcGates.push_back(tileProgress_[t]);
        }
    }
    if (a.destMask) {
        a.progress = std::make_shared<Progress>();
        a.progress->total = a.payload.outCount;
        for (unsigned t = 0; t < cfg_.numTiles; ++t) {
            if (a.destMask & (std::uint64_t{1} << t))
                tileProgress_[t] = a.progress;
        }
    }

    // Ready bits drop for every tile the instruction touches, and any
    // cached SPD lines of those tiles are invalidated (§3.6).
    for (unsigned t = 0; t < cfg_.numTiles; ++t) {
        if ((a.destMask | a.srcMask) & (std::uint64_t{1} << t)) {
            tileReady_[t] = false;
            invalidateTileLines(t);
        }
    }

    switch (unit) {
      case UnitKind::kStream:
        stream_.busy = true;
        stream_.active = std::move(a);
        streamStart(stream_);
        break;
      case UnitKind::kIndirect:
        indirect_.busy = true;
        indirect_.active = std::move(a);
        indirectStart(indirect_);
        break;
      case UnitKind::kAlu:
        alu_.busy = true;
        alu_.active = std::move(a);
        alu_.processed = 0;
        alu_.rate = cfg_.aluLanes;
        break;
      case UnitKind::kRange:
        range_.busy = true;
        range_.active = std::move(a);
        range_.processed = 0;
        range_.rate = cfg_.rangeRate;
        break;
    }
}

void
Dx100::retire(UnitKind unit)
{
    Active *a = nullptr;
    switch (unit) {
      case UnitKind::kStream:
        a = &stream_.active;
        stream_.busy = false;
        break;
      case UnitKind::kIndirect:
        a = &indirect_.active;
        indirect_.busy = false;
        break;
      case UnitKind::kAlu:
        a = &alu_.active;
        alu_.busy = false;
        break;
      case UnitKind::kRange:
        a = &range_.active;
        range_.busy = false;
        break;
    }

    if (a->progress)
        a->progress->prefix = a->progress->total;
    a->srcGates.clear();
    for (unsigned t = 0; t < cfg_.numTiles; ++t) {
        if ((a->destMask | a->srcMask) & (std::uint64_t{1} << t))
            tileReady_[t] = true;
    }
    if (regionDir_ && (a->payload.instr.op == Opcode::kIst ||
                       a->payload.instr.op == Opcode::kIrmw ||
                       a->payload.instr.op == Opcode::kSst)) {
        regionDir_->releaseWrite(instanceId_, a->payload.instr.base);
    }
    retired_[a->payload.id] = true;
    dispatchWait_ = false;
    ++stats_.instructionsRetired;
    ++stats_.byOpcode[static_cast<unsigned>(a->payload.instr.op)];
    a->valid = false;
}

void
Dx100::invalidateTileLines(unsigned tile)
{
    auto &lines = spdCached_[tile];
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!lines[i])
            continue;
        lines[i] = false;
        const Addr line = cfg_.spdBase +
                          (static_cast<Addr>(tile) * lines.size() + i) *
                              kLineBytes;
        stats_.invalidations += agent_.invalidateLine(line);
    }
}

// ---------------------------------------------------------------------
// Stream unit
// ---------------------------------------------------------------------

void
Dx100::StreamSink::complete(const std::uint64_t &tag)
{
    (void)tag;
    StreamUnit &u = owner->stream_;
    dx_assert(u.outstanding > 0, "stray stream response");
    owner->qMemo_ = QMemo::kNone;
    u.waitIdle = false;
    u.waitGated = false;
    --u.outstanding;
    ++u.linesDone;
    if (u.active.progress && !u.lines.empty()) {
        // Responses return roughly in order: publish a linear prefix.
        u.active.progress->prefix = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(u.active.progress->total) *
            u.linesDone / u.lines.size());
    }
}

void
Dx100::streamStart(StreamUnit &u)
{
    const ExecPayload &p = u.active.payload;
    const StreamScalars s = unpackStream(p.instr.imm);
    const unsigned bytes = p.instr.elemBytes();
    u.isStore = p.instr.op == Opcode::kSst;
    u.lines.clear();
    u.issuePos = 0;
    u.outstanding = 0;
    u.linesDone = 0;
    u.waitIdle = false;
    u.waitBlocked = false;
    u.waitPops = 0;
    u.waitGated = false;
    u.gatePrefix = 0;

    Addr prevLine = ~Addr{0};
    for (std::uint32_t i = 0; i < s.count; ++i) {
        if (!p.cond.empty() && !p.cond[i])
            continue;
        const Addr addr =
            p.instr.base +
            (s.start + static_cast<std::int64_t>(i) * s.stride) * bytes;
        const Addr line = lineAlign(addr);
        if (line != prevLine) {
            u.lines.push_back(line);
            prevLine = line;
        }
    }
}

void
Dx100::streamTick(StreamUnit &u)
{
    if (!u.busy)
        return;
    u.waitIdle = false;
    u.waitGated = false;

    // Gate on still-executing producers of the data/condition tiles
    // (finish bits): a store may only stream out elements that exist.
    std::size_t allowedLines = u.lines.size();
    const std::uint32_t limit = gateLimit(u.active);
    if (limit != ~std::uint32_t{0} && u.active.payload.count > 0) {
        allowedLines = std::min<std::size_t>(
            allowedLines, static_cast<std::size_t>(
                              static_cast<std::uint64_t>(
                                  u.lines.size()) *
                              limit / u.active.payload.count));
    }

    // Issue up to two line requests per cycle through the LLC.
    bool issued = false;
    for (unsigned n = 0; n < 2; ++n) {
        if (u.issuePos >= allowedLines)
            break;
        if (u.outstanding >= cfg_.requestTableSize)
            break;
        if (!llcPort_ || !llcPort_->canAccept())
            break;
        cache::CacheReq req;
        req.addr = u.lines[u.issuePos];
        req.write = u.isStore;
        req.fullLine = u.isStore;
        req.origin = mem::Origin::kDx100;
        req.tag = u.issuePos;
        req.sink = &streamSink_;
        llcPort_->request(req);
        if (u.isStore)
            ++stats_.llcWrites;
        else
            ++stats_.llcReads;
        ++u.outstanding;
        ++u.issuePos;
        issued = true;
    }

    if (u.issuePos >= u.lines.size() && u.outstanding == 0) {
        retire(UnitKind::kStream);
        return;
    }
    if (issued)
        return;

    // Nothing issued and not retired: classify whether the next tick
    // is a provable no-op (see StreamUnit::waitIdle).
    if (u.issuePos >= u.lines.size() ||
        u.outstanding >= cfg_.requestTableSize) {
        // All issued, or the request table is full: only a response
        // can make the next tick productive.
        u.waitIdle = true;
        u.waitBlocked = false;
    } else if (u.issuePos < allowedLines) {
        // A line was sendable but the LLC refused admission: sleep
        // until the port records a departure.
        u.waitIdle = true;
        u.waitBlocked = true;
        u.waitPops = drainPops();
    } else {
        // Gated on a producer's finish bits. The producer may advance
        // in a later unit tick of this same cycle, so record the gate
        // value for quiescent() to revalidate rather than trusting it.
        u.waitGated = true;
        u.gatePrefix = limit;
    }
}

// ---------------------------------------------------------------------
// Indirect unit
// ---------------------------------------------------------------------

void
Dx100::LlcSink::complete(const std::uint64_t &tag)
{
    owner->qMemo_ = QMemo::kNone;
    owner->indirect_.responses.push_back(
        {static_cast<IndirectTables::ColHandle>(tag), true});
    owner->indirect_.waitIdle = false;
    dx_assert(owner->indirect_.outstandingReads > 0,
              "stray LLC indirect response");
    --owner->indirect_.outstandingReads;
}

void
Dx100::complete(const mem::MemRequest &req)
{
    dx_assert(!req.write, "unexpected DRAM write response");
    qMemo_ = QMemo::kNone;
    indirect_.responses.push_back(
        {static_cast<IndirectTables::ColHandle>(req.tag), false});
    indirect_.waitIdle = false;
    dx_assert(indirect_.outstandingReads > 0,
              "stray DRAM indirect response");
    --indirect_.outstandingReads;
}

void
Dx100::indirectStart(IndirectUnit &u)
{
    const ExecPayload &p = u.active.payload;
    u.n = p.count;
    u.fillPos = 0;
    u.fillBlocked = false;
    u.tlbStall = 0;
    u.wordsDone = 0;
    u.skippedAtFill = 0;
    u.lineOfHandle.clear();
    u.responses.clear();
    u.pendingWrites.clear();
    u.outstandingReads = 0;
    u.waitIdle = false;
    u.waitBlocked = false;
    u.waitPops = 0;
    u.waitFillStall = false;
    u.needsWriteback = p.instr.op != Opcode::kIld;
    tables_.reset(u.n);
}

bool
Dx100::indirectDone(const IndirectUnit &u) const
{
    return u.fillPos >= u.n && tables_.drained() &&
           u.responses.empty() && u.pendingWrites.empty() &&
           u.outstandingReads == 0;
}

void
Dx100::indirectFill(IndirectUnit &u)
{
    if (u.tlbStall > 0) {
        --u.tlbStall;
        return;
    }
    u.fillBlocked = false;

    const ExecPayload &p = u.active.payload;
    const unsigned bytes = p.instr.elemBytes();
    const mem::AddressMap &map = dram_.addressMap();
    const mem::DramGeometry &geom = dram_.geometry();

    // Finish-bit gating (§3.5): only consume source elements the
    // producing instruction has already written. While gated, the
    // request stage keeps draining so the fill latency hides behind
    // the index load instead of serializing after it.
    const std::uint32_t fillLimit =
        std::min<std::uint32_t>(u.n, gateLimit(u.active));
    u.fillGated = u.fillPos < u.n && u.fillPos >= fillLimit;

    // Condition-false iterations are skipped by a cheap pre-scan of
    // the condition tile (§3.2: the controller reads SPD[TC][i] and
    // only triggers the address generator when it holds), so they
    // drain four times faster than real inserts.
    unsigned skipBudget = 4 * cfg_.fillRate;
    for (unsigned k = 0; k < cfg_.fillRate && u.fillPos < fillLimit;
         ++k) {
        while (u.fillPos < fillLimit && !p.cond.empty() &&
               !p.cond[u.fillPos] && skipBudget > 0) {
            ++u.fillPos;
            ++u.skippedAtFill;
            --skipBudget;
        }
        if (u.fillPos >= fillLimit)
            break;
        const std::uint32_t i = u.fillPos;
        if (!p.cond.empty() && !p.cond[i])
            break; // skip budget exhausted for this cycle

        const Addr addr = p.instr.base + p.src1[i] * bytes;
        const unsigned penalty = tlb_.lookup(addr);
        if (penalty > 0) {
            u.tlbStall = penalty;
            return;
        }

        const Addr line = lineAlign(addr);
        const mem::DramCoord coord = map.decompose(line);
        const unsigned slice = coord.flatBank(geom);
        const auto wordOff =
            static_cast<std::uint16_t>(lineOffset(addr) / 4);

        const auto res =
            tables_.insert(slice, coord.row, coord.column, wordOff, i);
        if (res == IndirectTables::InsertResult::kSliceFull) {
            u.fillBlocked = true;
            ++stats_.fillStallCycles;
            return;
        }
        if (res == IndirectTables::InsertResult::kNewColumn) {
            const auto h = static_cast<IndirectTables::ColHandle>(
                tables_.columnsAllocated() - 1);
            if (u.lineOfHandle.size() <= h)
                u.lineOfHandle.resize(h + 1);
            u.lineOfHandle[h] = line;
            // Snoop the coherence directory for the H bit.
            tables_.setCacheHit(h, llcPort_ && agent_.hasHierarchy() &&
                                       agent_.isCached(line));
            ++stats_.indirectColumns;
        }
        ++stats_.indirectWords;
        ++u.fillPos;
    }
}

std::pair<bool, bool>
Dx100::indirectRequests(IndirectUnit &u)
{
    bool sent = false;
    bool blocked = false;

    // Draining starts once the tile is fully inserted or fill is stuck
    // on a full slice (§3.2 Operation Stage 2). While fill merely paces
    // a still-running producer (fillGated), requests are *not* issued:
    // draining early would split the Word-Table coalescing chains, and
    // when the chain is DRAM-bound the bandwidth floor dominates
    // anyway — the §3.5 overlap value is in the hidden fill stage.
    const bool draining = u.fillPos >= u.n || u.fillBlocked;
    if (!draining)
        return {false, false};

    const mem::DramGeometry &geom = dram_.geometry();
    const unsigned slicesPerChannel = geom.banksPerChannel();

    for (unsigned ch = 0; ch < dram_.channels(); ++ch) {
        // One request per channel per core cycle, walking this
        // channel's slices round-robin so consecutive requests
        // interleave bank groups.
        unsigned &rr = u.rrPtr[ch];
        for (unsigned probe = 0; probe < slicesPerChannel; ++probe) {
            const unsigned sliceInCh = (rr + probe) % slicesPerChannel;
            const unsigned slice = ch * slicesPerChannel + sliceInCh;
            auto req = tables_.nextRequest(slice);
            if (!req)
                continue;

            const Addr line = u.lineOfHandle[req->handle];
            if (req->cacheHit) {
                if (!llcPort_ || !llcPort_->canAccept()) {
                    tables_.unsend(*req);
                    blocked = true;
                    break;
                }
                cache::CacheReq creq;
                creq.addr = line;
                creq.write = false;
                creq.origin = mem::Origin::kDx100;
                creq.tag = req->handle;
                creq.sink = &llcSink_;
                llcPort_->request(creq);
                ++stats_.llcReads;
            } else {
                if (!dram_.channel(ch).canAccept(false)) {
                    tables_.unsend(*req);
                    blocked = true;
                    break;
                }
                dram_.access(line, false, mem::Origin::kDx100,
                             req->handle, this);
                ++stats_.dramReads;
            }
            ++u.outstandingReads;
            sent = true;
            rr = (sliceInCh + 1) % slicesPerChannel;
            break;
        }
    }
    return {sent, blocked};
}

bool
Dx100::indirectResponses(IndirectUnit &u)
{
    const bool any = !u.responses.empty();
    for (unsigned n = 0; n < cfg_.respPerCycle && !u.responses.empty();
         ++n) {
        const auto [handle, viaCache] = u.responses.front();
        u.responses.pop_front();
        const unsigned words = tables_.completeColumn(
            handle, [&](std::uint32_t, std::uint16_t) {});
        u.wordsDone += words;
        if (u.active.progress && u.n > 0) {
            // Columns complete out of order; the in-order finish-bit
            // prefix grows roughly quadratically in the done fraction.
            const std::uint64_t done = u.wordsDone + u.skippedAtFill;
            u.active.progress->prefix = static_cast<std::uint32_t>(
                done * done / u.n);
        }
        if (u.needsWriteback) {
            u.pendingWrites.push_back(
                {u.lineOfHandle[handle], viaCache});
        }
    }
    return any;
}

std::pair<bool, bool>
Dx100::indirectWrites(IndirectUnit &u)
{
    bool sent = false;
    while (!u.pendingWrites.empty()) {
        const auto [line, viaCache] = u.pendingWrites.front();
        if (viaCache) {
            if (!llcPort_ || !llcPort_->canAccept())
                return {sent, true};
            cache::CacheReq creq;
            creq.addr = line;
            creq.write = true;
            creq.origin = mem::Origin::kDx100;
            creq.sink = nullptr;
            llcPort_->request(creq);
            ++stats_.llcWrites;
        } else {
            if (!dram_.canAccept(line, true))
                return {sent, true};
            dram_.access(line, true, mem::Origin::kDx100, 0, nullptr);
            ++stats_.dramWrites;
        }
        u.pendingWrites.pop_front();
        sent = true;
    }
    return {sent, false};
}

void
Dx100::indirectTick(IndirectUnit &u)
{
    if (!u.busy)
        return;
    u.waitIdle = false;
    const bool consumed = indirectResponses(u);
    const auto [wrSent, wrBlocked] = indirectWrites(u);
    const auto [rqSent, rqBlocked] = indirectRequests(u);
    // Captured before fill runs: requests are issued earlier in the
    // tick than fill, so "drain phase moved nothing" may only be
    // concluded when the request stage already saw the completed fill.
    // On the very cycle fill finishes (or inserts anything), the next
    // tick can send the new columns and must not be skipped.
    const bool wasDrainDone = u.fillPos >= u.n;
    bool fillStallOnly = false;
    if (u.fillPos < u.n) {
        const std::uint32_t pos0 = u.fillPos;
        const std::uint32_t skip0 = u.skippedAtFill;
        const bool stalled0 = u.tlbStall > 0;
        indirectFill(u);
        // A slice-full retry that advanced nothing: re-running it only
        // bumps fillStallCycles and re-hits the same TLB page, both of
        // which skipCycles() accounts closed-form.
        fillStallOnly = u.fillBlocked && !stalled0 &&
                        u.tlbStall == 0 && u.fillPos == pos0 &&
                        u.skippedAtFill == skip0;
    }
    if (!consumed && !wrSent && !rqSent &&
        (wasDrainDone || fillStallOnly)) {
        // This cycle moved nothing (or only re-counted a fill stall):
        // every issued request is in flight, so the next tick is a
        // provable no-op until a response arrives (the response entry
        // points clear waitIdle) — or, when a send was merely refused
        // admission, until the blocking ports record a departure.
        u.waitIdle = true;
        u.waitFillStall = fillStallOnly;
        u.waitBlocked = wrBlocked || rqBlocked;
        if (u.waitBlocked)
            u.waitPops = drainPops();
    }
    if (indirectDone(u))
        retire(UnitKind::kIndirect);
}

void
Dx100::skipCycles(Cycle n)
{
    now_ += n;
    if (indirect_.busy && indirect_.waitIdle && indirect_.waitFillStall) {
        // Each skipped cycle would have retried the slice-full insert:
        // one fill-stall count and one repeat hit of the (installed)
        // page, exactly as the naive loop accumulates.
        stats_.fillStallCycles += n;
        tlb_.skipHits(n);
    }
    if (!inputQueue_.empty() && dispatchWait_) {
        // Each skipped cycle would have re-scanned the window and
        // counted one dispatch stall.
        stats_.dispatchStalls += n;
    }
}

std::uint64_t
Dx100::drainPops() const
{
    if (llcPopAddr_)
        return *llcPopAddr_ + dram_.dequeueCount();
    const std::uint64_t llc =
        llcPort_ ? llcPort_->popCount() : 0;
    if (llc == cache::kPortPopsUnknown)
        return cache::kPortPopsUnknown;
    return llc + dram_.dequeueCount();
}

void
Dx100::timedTick(TimedUnit &u, UnitKind kind)
{
    if (!u.busy)
        return;
    const std::uint32_t count = u.active.payload.count;
    const std::uint32_t limit =
        std::min<std::uint32_t>(count, gateLimit(u.active));
    u.processed = std::min<std::uint64_t>(u.processed + u.rate, limit);

    if (u.active.progress && count > 0) {
        // In-order lanes: published output prefix tracks consumed
        // input linearly (RNG expands count -> outCount).
        u.active.progress->prefix = static_cast<std::uint32_t>(
            u.processed * u.active.progress->total / count);
    }
    if (u.processed >= count)
        retire(kind);
}

// ---------------------------------------------------------------------
// Scratchpad port
// ---------------------------------------------------------------------

bool
Dx100::SpdPort::canAccept() const
{
    return queue.size() < owner->cfg_.spdPortQueue;
}

void
Dx100::SpdPort::request(const cache::CacheReq &req)
{
    owner->qMemo_ = QMemo::kNone;
    queue.push_back({owner->now_ + owner->cfg_.spdReadLatency, req});
    if (!req.write)
        owner->markSpdCached(req.addr);
}

unsigned
Dx100::tileOfSpdAddr(Addr addr) const
{
    const Addr off = addr - cfg_.spdBase;
    return static_cast<unsigned>(
        off / (static_cast<Addr>(cfg_.tileElems) *
               Dx100Config::kSpdLane));
}

void
Dx100::markSpdCached(Addr addr)
{
    const unsigned tile = tileOfSpdAddr(addr);
    if (tile >= cfg_.numTiles)
        return;
    const Addr tileBase = cfg_.spdBase +
                          static_cast<Addr>(tile) * cfg_.tileElems *
                              Dx100Config::kSpdLane;
    const std::size_t lineIdx = (lineAlign(addr) - tileBase) /
                                kLineBytes;
    if (lineIdx < spdCached_[tile].size())
        spdCached_[tile][lineIdx] = true;
}

void
Dx100::spdTick()
{
    // Serve up to two SPD lines per cycle (the 4-ported scratchpad is
    // not the bottleneck; the NoC link is).
    for (unsigned n = 0; n < 2; ++n) {
        if (spdPort_.queue.empty() ||
            spdPort_.queue.front().first > now_) {
            return;
        }
        const cache::CacheReq req = spdPort_.queue.front().second;
        spdPort_.queue.pop_front();
        ++stats_.spdLinesServed;
        if (req.sink)
            req.sink->complete(req.tag);
    }
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

void
Dx100::tick()
{
    ++now_;
    qMemo_ = QMemo::kNone;
    spdTick();
    streamTick(stream_);
    indirectTick(indirect_);

    timedTick(alu_, UnitKind::kAlu);
    timedTick(range_, UnitKind::kRange);

    tryDispatch();
}

std::string
Dx100::debugDump() const
{
    std::ostringstream os;
    os << "dx100: inputQ=" << inputQueue_.size()
       << " stream=" << (stream_.busy ? "busy" : "idle")
       << "(issue=" << stream_.issuePos << "/" << stream_.lines.size()
       << " out=" << stream_.outstanding << ")"
       << " indirect=" << (indirect_.busy ? "busy" : "idle")
       << "(fill=" << indirect_.fillPos << "/" << indirect_.n
       << (indirect_.fillBlocked ? " blocked" : "")
       << " resp=" << indirect_.responses.size()
       << " wr=" << indirect_.pendingWrites.size()
       << " outRd=" << indirect_.outstandingReads
       << " drained=" << tables_.drained() << ")"
       << " alu=" << (alu_.busy ? "busy" : "idle")
       << " rng=" << (range_.busy ? "busy" : "idle")
       << " spdQ=" << spdPort_.queue.size();
    return os.str();
}

bool
Dx100::quiescentSlow() const
{
    // A busy stream or indirect unit is quiescent only in its
    // wait-idle state (see {Stream,Indirect}Unit::waitIdle):
    // everything issued and in flight, with any admission-blocked
    // send still blocked (no port departures since the memo). A
    // backlogged inputQueue_ is quiescent only while the last
    // dispatch scan's verdict is frozen (dispatchWait_); each skipped
    // cycle then accounts one dispatch stall closed-form.
    qMemo_ = QMemo::kNone;
    const bool indirectBlocked = indirect_.busy && indirect_.waitBlocked;
    const bool indirectIdle =
        !indirect_.busy ||
        (indirect_.waitIdle &&
         (!indirect_.waitBlocked ||
          (indirect_.waitPops != cache::kPortPopsUnknown &&
           drainPops() == indirect_.waitPops)));
    const bool streamWaiting = stream_.busy && stream_.waitIdle;
    const bool streamBlocked = streamWaiting && stream_.waitBlocked;
    const bool streamIdle =
        !stream_.busy ||
        (stream_.waitIdle &&
         (!stream_.waitBlocked ||
          (stream_.waitPops != cache::kPortPopsUnknown &&
           drainPops() == stream_.waitPops))) ||
        (stream_.waitGated &&
         gateLimit(stream_.active) == stream_.gatePrefix);
    const bool verdict =
        streamIdle && indirectIdle && !alu_.busy && !range_.busy &&
        (inputQueue_.empty() || dispatchWait_) &&
        (spdPort_.queue.empty() ||
         spdPort_.queue.front().first > now_);
    if (!verdict)
        return false;

    // Memoize: every input is frozen until tick()/an entry point runs
    // (they clear the memo), except the clock against the SPD head and
    // - when a wait-idle unit is admission-blocked - the downstream
    // departure count, which the inline fast path rechecks.
    qSleepUntil_ = spdPort_.queue.empty()
                       ? kNeverCycle
                       : spdPort_.queue.front().first;
    if (indirectBlocked || streamBlocked) {
        const std::uint64_t pops = drainPops();
        if (pops != cache::kPortPopsUnknown) {
            qMemo_ = QMemo::kBlocked;
            qPops_ = pops;
        }
    } else {
        qMemo_ = QMemo::kTimed;
    }
    return true;
}

bool
Dx100::idle() const
{
    if (!inputQueue_.empty() || stream_.busy || indirect_.busy ||
        alu_.busy || range_.busy || !spdPort_.queue.empty()) {
        return false;
    }
    for (const auto &sb : sideband_) {
        if (!sb.empty())
            return false;
    }
    return true;
}

void
Dx100::registerStats(StatRegistry &reg) const
{
    StatRegistry::Group g = reg.group(path());
    g.counter("instructionsRetired", stats_.instructionsRetired);
    g.counter("dramReads", stats_.dramReads);
    g.counter("dramWrites", stats_.dramWrites);
    g.counter("llcReads", stats_.llcReads);
    g.counter("llcWrites", stats_.llcWrites);
    g.counter("spdLinesServed", stats_.spdLinesServed);
    g.counter("invalidations", stats_.invalidations);
    g.counter("fillStallCycles", stats_.fillStallCycles);
    g.counter("dispatchStalls", stats_.dispatchStalls);

    // The Row/Word Table reordering metrics (§3.4): words gathered,
    // unique DRAM columns touched, and their ratio — the paper's
    // coalescing factor.
    StatRegistry::Group rt = g.sub("rowtable");
    rt.counter("words", stats_.indirectWords);
    rt.counter("columns", stats_.indirectColumns);
    // Insertions that chained onto an already-open column instead of
    // allocating a new one — the table's coalescing hits.
    rt.value("hits", std::function<std::uint64_t()>([this] {
                 return stats_.indirectWords.value() -
                        stats_.indirectColumns.value();
             }));
    rt.gauge("coalescingFactor",
             [this] { return stats_.coalescingFactor(); });

    StatRegistry::Group op = g.sub("opcode");
    static const char *const kOpNames[8] = {
        "ild", "ist", "irmw", "sld", "sst", "aluv", "alus", "rng",
    };
    for (std::size_t i = 0; i < stats_.byOpcode.size(); ++i)
        op.counter(kOpNames[i], stats_.byOpcode[i]);
}

} // namespace dx::dx100

/**
 * @file
 * Coarse-grained region coherence between DX100 instances (paper
 * §6.6, core-multiplexing design).
 *
 * Each array region (identified by its base address, which the
 * instructions carry) obeys a Single-Writer invariant across
 * instances: an instance must own a region before dispatching a store
 * or RMW instruction into it, ownership transfer costs a fixed
 * latency, and a region is locked while the owner has such
 * instructions in flight. The protocol is independent of the core
 * coherence fabric, exactly as the paper describes.
 */

#ifndef DX_DX100_REGION_DIRECTORY_HH
#define DX_DX100_REGION_DIRECTORY_HH

#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace dx::dx100
{

class RegionDirectory
{
  public:
    explicit RegionDirectory(unsigned transferLatency = 150)
        : transferLatency_(transferLatency)
    {}

    /**
     * Try to acquire write ownership of @p region for @p instance at
     * time @p now. Returns true when the instance may dispatch; false
     * means "retry later" (transfer in progress or the current owner
     * still has writes in flight).
     */
    bool
    tryAcquireWrite(int instance, Addr region, Cycle now)
    {
        Entry &e = entries_[region];
        if (e.owner == instance) {
            if (now < e.readyAt)
                return false;
            ++e.inFlight;
            return true;
        }
        if (e.inFlight > 0)
            return false; // current owner still writing
        if (e.owner >= 0) {
            // Start (or wait out) an ownership transfer.
            if (e.pendingOwner != instance) {
                e.pendingOwner = instance;
                e.transferDone = now + transferLatency_;
                ++transfers_;
                return false;
            }
            if (now < e.transferDone)
                return false;
        }
        e.owner = instance;
        e.pendingOwner = -1;
        e.readyAt = 0;
        ++e.inFlight;
        return true;
    }

    /** A write instruction by the owner retired. */
    void
    releaseWrite(int instance, Addr region)
    {
        Entry &e = entries_[region];
        if (e.owner == instance && e.inFlight > 0)
            --e.inFlight;
    }

    std::uint64_t transfers() const { return transfers_.value(); }

  private:
    struct Entry
    {
        int owner = -1;
        int pendingOwner = -1;
        Cycle transferDone = 0;
        Cycle readyAt = 0;
        unsigned inFlight = 0;
    };

    unsigned transferLatency_;
    std::unordered_map<Addr, Entry> entries_;
    Counter transfers_;
};

} // namespace dx::dx100

#endif // DX_DX100_REGION_DIRECTORY_HH

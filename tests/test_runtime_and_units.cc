/**
 * @file
 * Runtime API and accelerator-unit tests: resource allocation, the
 * TLB, the DMP prefetcher's differential matching, the region
 * directory, tile-size variation, and multi-instance correctness.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dx100/region_directory.hh"
#include "dx100/tlb.hh"
#include "prefetch/indirect_prefetcher.hh"
#include "sim/experiment.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

TEST(Runtime, TileAndRegisterAllocationExhausts)
{
    System sys(SystemConfig::withDx100());
    auto *rt = sys.runtime(0);
    std::vector<unsigned> tiles;
    for (unsigned i = 0; i < sys.dx100(0)->config().numTiles; ++i)
        tiles.push_back(rt->allocTile());
    // All distinct.
    std::sort(tiles.begin(), tiles.end());
    EXPECT_EQ(std::unique(tiles.begin(), tiles.end()), tiles.end());
    // Freeing returns capacity.
    rt->freeTile(tiles[3]);
    EXPECT_EQ(rt->allocTile(), tiles[3]);
}

TEST(Tlb, HugePageRegistrationCoversRegion)
{
    dx100::Tlb tlb(256, 200);
    tlb.installRange(0x40000000, 8 << 20); // 8 MiB = 4 huge pages
    EXPECT_EQ(tlb.lookup(0x40000000), 0u);
    EXPECT_EQ(tlb.lookup(0x40000000 + (7 << 20)), 0u);
    EXPECT_EQ(tlb.misses(), 0u);

    // Untransferred page: one PTE-walk penalty, then resident.
    EXPECT_EQ(tlb.lookup(0x80000000), 200u);
    EXPECT_EQ(tlb.lookup(0x80000000 + 64), 0u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(RegionDirectory, SingleWriterTransfers)
{
    dx100::RegionDirectory dir(100);
    // Instance 0 acquires cold region immediately.
    EXPECT_TRUE(dir.tryAcquireWrite(0, 0x1000, 10));
    // Instance 1 cannot while 0 has a write in flight.
    EXPECT_FALSE(dir.tryAcquireWrite(1, 0x1000, 11));
    dir.releaseWrite(0, 0x1000);
    // Transfer starts; not ready until the latency elapses.
    EXPECT_FALSE(dir.tryAcquireWrite(1, 0x1000, 12));
    EXPECT_FALSE(dir.tryAcquireWrite(1, 0x1000, 50));
    EXPECT_TRUE(dir.tryAcquireWrite(1, 0x1000, 200));
    EXPECT_EQ(dir.transfers(), 1u);
    // Same-owner re-acquire is free.
    dir.releaseWrite(1, 0x1000);
    EXPECT_TRUE(dir.tryAcquireWrite(1, 0x1000, 201));
}

TEST(DmpPrefetcher, LearnsIndirectPatternAndPrefetches)
{
    SimMemory mem;
    const Addr bBase = 0x10000;
    const Addr aBase = 0x400000;
    // B[i] holds indices; A[B[i]] are the dependent accesses.
    std::uint32_t idx[64];
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        idx[i] = static_cast<std::uint32_t>(rng.below(4096));
        mem.write<std::uint32_t>(bBase + static_cast<Addr>(i) * 4,
                                 idx[i]);
    }

    prefetch::IndirectPrefetcher::Config cfg;
    prefetch::IndirectPrefetcher pf(cfg, &mem);

    // Feed the observation stream: strided index loads + misses at
    // aBase + idx*4.
    for (int i = 0; i < 40; ++i) {
        cache::CacheReq load;
        load.addr = bBase + static_cast<Addr>(i) * 4;
        load.pc = 11;
        load.value = idx[i];
        pf.observe(load, true);

        cache::CacheReq miss;
        miss.addr = aBase + Addr{idx[i]} * 4;
        miss.pc = 12;
        pf.observe(miss, true);
    }
    EXPECT_GE(pf.stats().patternsLearned, 1u);
    EXPECT_GT(pf.stats().indirectPrefetches, 0u);

    // Prefetched lines must hit future dependent accesses: collect the
    // queue and check against upcoming A[B[i+d]] lines.
    std::set<Addr> targets;
    for (int i = 0; i < 64; ++i)
        targets.insert(lineAlign(aBase + Addr{idx[i]} * 4));
    Addr line;
    unsigned useful = 0, total = 0;
    while (pf.nextPrefetch(line)) {
        ++total;
        // Useful = a dependent A[B[i]] line or an index-stream line.
        const bool indexStream =
            line >= bBase && line < bBase + 64 * 4 + 4096;
        useful += (targets.count(line) || indexStream) ? 1 : 0;
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(useful) / total, 0.5);
}

TEST(TileSize, SmallTilesStillCorrect)
{
    for (unsigned t : {1024u, 4096u}) {
        SystemConfig cfg = SystemConfig::withDx100();
        cfg.dx.tileElems = t;
        GatherMicro w(GatherMicro::Mode::kFull, 1 << 14);
        System sys(cfg);
        w.init(sys);
        std::vector<std::unique_ptr<cpu::Kernel>> ks;
        for (unsigned c = 0; c < sys.cores(); ++c) {
            ks.push_back(w.makeKernel(sys, c, true));
            sys.setKernel(c, ks.back().get());
        }
        sys.run();
        EXPECT_TRUE(w.verify(sys)) << "tile " << t;
    }
}

TEST(MultiInstance, TwoInstancesEightCoresCorrect)
{
    SystemConfig cfg = SystemConfig::withDx100(8, 2);
    RmwMicro w(1 << 15, true);
    System sys(cfg);
    w.init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> ks;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        ks.push_back(w.makeKernel(sys, c, true));
        sys.setKernel(c, ks.back().get());
    }
    const RunStats s = sys.run();
    EXPECT_TRUE(w.verify(sys));
    EXPECT_GT(s.dxInstructions, 0u);
    // Both instances were used (cores 0-3 -> 0, 4-7 -> 1).
    EXPECT_GT(sys.dx100(1)->stats().instructionsRetired.value(), 0u);
}

TEST(StatsSerialization, RoundTrips)
{
    RunStats s;
    s.cycles = 12345;
    s.instructions = 678;
    s.bandwidthUtil = 0.731;
    s.rowBufferHitRate = 0.25;
    s.requestBufferOccupancy = 0.5;
    s.dramLines = 999;
    s.llcMpki = 1.5;
    s.l2Mpki = 2.5;
    s.coalescingFactor = 3.5;
    s.dxInstructions = 42;

    const auto parsed = parseStats(serializeStats(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cycles, s.cycles);
    EXPECT_EQ(parsed->instructions, s.instructions);
    EXPECT_DOUBLE_EQ(parsed->bandwidthUtil, s.bandwidthUtil);
    EXPECT_EQ(parsed->dxInstructions, s.dxInstructions);

    EXPECT_FALSE(parseStats("garbage").has_value());
}

#include "sim/run_matrix.hh"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "sim/parallel_runner.hh"

namespace dx::sim
{

namespace
{

/**
 * DX_CELL_TIME=1 emits a per-cell wall-clock timing line after each
 * simulated (non-cached) cell, for scheduler perf comparisons (see
 * tools/perf_smoke.sh). Off by default: the lines are diagnostics, not
 * part of any BENCH_*.json output.
 */
bool
cellTimeEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("DX_CELL_TIME");
        return env && env[0] == '1' && env[1] == '\0';
    }();
    return enabled;
}

} // namespace

// ---------------------------------------------------------------------
// MatrixResult
// ---------------------------------------------------------------------

const CellResult *
MatrixResult::find(const std::string &workload,
                   const std::string &tag) const
{
    for (const auto &c : cells_) {
        if (workloads_[c.workload].name == workload &&
            configs_[c.config].tag == tag) {
            return &c.result;
        }
    }
    return nullptr;
}

const CellResult &
MatrixResult::cell(const std::string &workload,
                   const std::string &tag) const
{
    const CellResult *r = find(workload, tag);
    if (!r)
        dx_fatal("run matrix has no cell (", workload, ", ", tag, ")");
    return *r;
}

std::size_t
MatrixResult::failures() const
{
    std::size_t n = 0;
    for (const auto &c : cells_) {
        if (!c.result.ok)
            ++n;
    }
    return n;
}

std::string
MatrixResult::toJson(const std::string &benchName,
                     const ExpOptions &opt) const
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n"
       << "  \"bench\": \"" << benchName << "\",\n"
       << "  \"scale\": " << opt.scale << ",\n"
       << "  \"cells\": [\n";
    bool first = true;
    for (const auto &c : cells_) {
        const auto &w = workloads_[c.workload];
        const auto &cfg = configs_[c.config];
        os << (first ? "" : ",\n");
        first = false;
        os << "    {\"workload\": \"" << w.name << "\", \"suite\": \""
           << w.suite << "\", \"config\": \"" << cfg.tag
           << "\", \"scaleMult\": " << cfg.scaleMult
           << ", \"ok\": " << (c.result.ok ? "true" : "false")
           << ", \"fromCache\": "
           << (c.result.fromCache ? "true" : "false");
        if (c.result.ok)
            os << ", \"stats\": " << statsToJson(c.result.stats);
        else
            os << ", \"error\": \"" << c.result.error << "\"";
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

// ---------------------------------------------------------------------
// RunMatrix
// ---------------------------------------------------------------------

RunMatrix::RunMatrix(std::string name) : name_(std::move(name)) {}

RunMatrix &
RunMatrix::add(const wl::WorkloadEntry &entry)
{
    workloads_.push_back({entry.name, entry.suite, entry.make, true});
    return *this;
}

RunMatrix &
RunMatrix::add(WorkloadSpec spec)
{
    workloads_.push_back(std::move(spec));
    return *this;
}

RunMatrix &
RunMatrix::addWorkloads(const std::vector<wl::WorkloadEntry> &es)
{
    for (const auto &e : es)
        add(e);
    return *this;
}

RunMatrix &
RunMatrix::addConfig(std::string tag, const SystemConfig &cfg,
                     double scaleMult)
{
    // Fail the whole bench up front on a bad configuration, before
    // any job starts: one actionable message beats N worker deaths.
    cfg.validate();
    configs_.push_back({std::move(tag), cfg, scaleMult});
    return *this;
}

RunMatrix &
RunMatrix::limit(const std::string &workload,
                 std::vector<std::string> tags)
{
    auto &set = limits_[workload];
    for (auto &t : tags)
        set.insert(std::move(t));
    return *this;
}

bool
RunMatrix::cellEnabled(const WorkloadSpec &w, const ConfigSpec &c) const
{
    const auto it = limits_.find(w.name);
    return it == limits_.end() || it->second.count(c.tag) > 0;
}

MatrixResult
RunMatrix::run(const ExpOptions &opt) const
{
    // Fail fast on an unusable cache directory: discovering it per
    // cell would simulate the whole matrix first and then fail every
    // store.
    if (opt.useCache) {
        bool anyCacheable = false;
        for (const auto &w : workloads_)
            anyCacheable = anyCacheable || w.cacheable;
        if (anyCacheable) {
            std::error_code ec;
            std::filesystem::create_directories(opt.cacheDir, ec);
            if (ec) {
                dx_fatal("cannot create cache directory ",
                         opt.cacheDir, ": ", ec.message(),
                         " (use --cache-dir=<dir> or --no-cache)");
            }
        }
    }

    MatrixResult res;
    res.workloads_ = workloads_;
    res.configs_ = configs_;

    // Enumerate enabled cells in declaration order (workload-major).
    struct Pending
    {
        std::size_t w, c;
    };
    std::vector<Pending> pending;
    for (std::size_t wi = 0; wi < workloads_.size(); ++wi) {
        for (std::size_t ci = 0; ci < configs_.size(); ++ci) {
            if (cellEnabled(workloads_[wi], configs_[ci]))
                pending.push_back({wi, ci});
        }
    }

    // fromCache flags live outside JobResult; one slot per job, each
    // touched only by the thread running that job (vector<uint8_t>,
    // not vector<bool>, so neighbouring slots do not share an object).
    std::vector<std::uint8_t> fromCache(pending.size(), 0);

    std::vector<Job> jobs;
    jobs.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const WorkloadSpec &w = workloads_[pending[i].w];
        const ConfigSpec &c = configs_[pending[i].c];
        const double effScale = opt.scale * c.scaleMult;
        std::uint8_t *cachedFlag = &fromCache[i];
        jobs.push_back(
            {w.name + "/" + c.tag, [&w, &c, effScale, opt,
                                    cachedFlag]() -> RunStats {
                 const bool useCache = w.cacheable && opt.useCache;
                 const auto path = cachePath(opt.cacheDir, w.name,
                                             c.tag, effScale);
                 if (useCache) {
                     if (auto cached = loadCachedStats(path)) {
                         *cachedFlag = 1;
                         dx_inform("cached");
                         return *cached;
                     }
                 }
                 dx_inform("run ...");
                 auto workload = w.make(wl::Scale{effScale});
                 const auto t0 = std::chrono::steady_clock::now();
                 const RunStats stats =
                     runWorkloadOnce(*workload, c.cfg);
                 if (cellTimeEnabled()) {
                     const auto ns =
                         std::chrono::duration_cast<
                             std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
                     dx_inform("cell time ", ns / 1e6, " ms, ",
                               stats.cycles, " cycles");
                 }
                 if (useCache)
                     storeCachedStats(path, stats);
                 return stats;
             }});
    }

    ParallelRunner runner(opt.effectiveJobs());
    const std::vector<JobResult> out = runner.run(jobs);

    for (std::size_t i = 0; i < pending.size(); ++i) {
        MatrixResult::Cell cell;
        cell.workload = pending[i].w;
        cell.config = pending[i].c;
        cell.result.ok = out[i].ok;
        cell.result.stats = out[i].stats;
        cell.result.error = out[i].error;
        cell.result.fromCache = fromCache[i] != 0;
        if (!out[i].ok) {
            dx_warn("cell ", jobs[i].label,
                    " failed: ", out[i].error,
                    " (continuing with the rest of the matrix)");
        }
        res.cells_.push_back(std::move(cell));
    }
    return res;
}

RunMatrix
RunMatrix::paperMain()
{
    RunMatrix m("paper_main");
    m.addWorkloads(wl::paperWorkloads());
    m.addConfig("baseline", SystemConfig::baseline());
    m.addConfig("dx100", SystemConfig::withDx100());
    return m;
}

void
maybeWriteJson(const MatrixResult &result, const std::string &benchName,
               const ExpOptions &opt)
{
    if (!opt.json)
        return;
    const std::string file = "BENCH_" + benchName + ".json";
    std::ofstream out(file);
    if (!out) {
        dx_warn("cannot write ", file);
        return;
    }
    out << result.toJson(benchName, opt);
    dx_inform("wrote ", file);
}

} // namespace dx::sim

/**
 * @file
 * A single-channel DDR4 memory controller with an FR-FCFS scheduler.
 *
 * The controller owns a bounded request buffer (32 entries by default,
 * per paper Table 3) and a write buffer with drain watermarks. Every
 * controller cycle it issues at most one DRAM command, chosen
 * first-ready-first-come-first-served: ready column commands to open rows
 * win over row commands; among equals, the oldest request wins. All DDR4
 * bank/bank-group/rank timing constraints from DramTimings are enforced,
 * including tCCD_S/tCCD_L bank-group spacing, tFAW, write-to-read
 * turnaround, and periodic all-bank refresh.
 */

#ifndef DX_MEM_CONTROLLER_HH
#define DX_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/dram_timings.hh"
#include "mem/request.hh"
#include "sim/component.hh"

namespace dx::mem
{

class MemoryController final : public Component
{
  public:
    struct Config
    {
        DramTimings timings;
        DramGeometry geom;
        unsigned readQueueSize = 32;
        unsigned writeQueueSize = 32;
        unsigned writeHiWatermark = 24;
        unsigned writeLoWatermark = 8;
        unsigned writeBurstMax = 24; //!< writes per drain when reads wait
    };

    struct Stats
    {
        Counter cycles;
        Counter readsServed;
        Counter writesServed;
        Counter rowHits;       //!< column commands needing no ACT
        Counter rowMisses;     //!< column commands that required an ACT
        Counter rowConflicts;  //!< requests that forced a PRE first
        Counter actCommands;
        Counter preCommands;
        Counter refCommands;
        Counter busBusyCycles; //!< data-bus occupancy in controller cycles
        std::uint64_t occupancyAccum = 0; //!< sum of queue sizes per cycle

        double
        rowHitRate() const
        {
            const double total =
                static_cast<double>(rowHits.value() + rowMisses.value());
            return total > 0 ? rowHits.value() / total : 0.0;
        }

        double
        busUtilization() const
        {
            return cycles.value()
                ? static_cast<double>(busBusyCycles.value()) /
                      cycles.value()
                : 0.0;
        }
    };

    MemoryController(const Config &cfg, unsigned channelId);

    /** True if a request of the given type can be enqueued right now. */
    bool canAccept(bool write) const;

    /** Free read-buffer slots (used by DX100's request generator). */
    unsigned readSlotsFree() const;

    /** Enqueue a request; canAccept(write) must be true. */
    void enqueue(const MemRequest &req);

    /** Advance one controller clock cycle. */
    void tick() override;

    /**
     * Quiescence contract (see DESIGN.md): the next controller tick
     * would be a no-op except for the closed-form per-cycle stats
     * (cycles, occupancyAccum) — no response due, no refresh activity,
     * no write-mode toggle, no command issuable.
     *
     * Fast-out: a productive tick invalidated the event hint, so a
     * probe right after one would pay a full queue/bank rescan. While
     * the channel is streaming commands that rescan would conclude
     * "busy" anyway, so report busy without computing the hint
     * (conservative — a stale "false" only degrades to ticking). The
     * streak threshold adds hysteresis: inter-command gaps of a cycle
     * or two — the common case under bank-conflict traffic — never pay
     * the rescan, which would buy no skip anyway; only a sustained
     * unproductive stretch re-enables real hint probing.
     */
    bool
    quiescent() const override
    {
        return idleStreak_ >= 2 && nextEventAt() > now_ + 1;
    }

    /**
     * Conservative earliest controller cycle at which tick() could act:
     * the head in-flight response, the next refresh deadline, a pending
     * write-mode toggle, or the earliest bank-timer expiry of any entry
     * in the queue currently being served. May be earlier than the true
     * event (that only degrades to normal ticking), never later. The
     * scan is cached and invalidated by tick()/enqueue(); the cached
     * hint costs one compare at the call site.
     */
    Cycle
    nextEventAt() const override
    {
        if (!eventHintValid_)
            refreshEventHint();
        // An overdue candidate (e.g. a second issuable entry the one-
        // command-per-cycle limit postponed) means "could act next
        // tick".
        return eventHint_ == kNeverCycle
                   ? kNeverCycle
                   : std::max(eventHint_, now_ + 1);
    }

    /**
     * Closed-form advance over @p n controller cycles the caller has
     * proven quiescent (nextEventAt() > now() + n).
     */
    void
    skipCycles(Cycle n) override
    {
        now_ += n;
        stats_.cycles += n;
        stats_.occupancyAccum +=
            n * (readQueue_.size() + writeQueue_.size());
    }

    /** Current controller cycle. */
    Cycle now() const { return now_; }

    /** Component clock: the controller-domain cycle. */
    Cycle localNow() const override { return now_; }

    /** True when both queues and in-flight responses are empty. */
    bool idle() const;

    /** Component drain is the same predicate as idle(). */
    bool drained() const override { return idle(); }

    // Component introspection.
    void registerStats(StatRegistry &reg) const override;

    /**
     * Monotonic count of entries that left the request buffers (column
     * command issued). Lets waiters blocked on canAccept() cache the
     * "full" verdict: arrivals never free space, so an unchanged count
     * proves the buffers are still full.
     */
    std::uint64_t dequeueCount() const { return dequeues_; }

    /**
     * Mirror every future dequeue into @p sum as well (the DRAM
     * system's O(1) aggregate). Wire before the first request arrives.
     */
    void setDequeueMirror(std::uint64_t *sum) { dequeueMirror_ = sum; }

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }
    unsigned channelId() const { return channel_; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Cycle nextAct = 0;
        Cycle nextPre = 0;
        Cycle nextRd = 0;
        Cycle nextWr = 0;
    };

    struct Entry
    {
        MemRequest req;
        bool neededAct = false; //!< an ACT was issued on its behalf
    };

    struct PendingResp
    {
        Cycle ready;
        MemRequest req;
    };

    // Scheduling helpers; each returns true if a command was issued.
    bool tryRefresh();
    bool tryIssueFrom(std::vector<Entry> &queue, bool writes);
    bool tryColumn(std::vector<Entry> &queue, bool writes);
    bool tryActivate(std::vector<Entry> &queue);
    bool tryPrecharge(std::vector<Entry> &queue);

    /**
     * The write-drain hysteresis condition, shared by tick() and the
     * nextEventAt() hint so the two cannot diverge: true when this
     * cycle's mode check would flip writeMode_.
     */
    bool wouldToggleWriteMode() const;

    /** Earliest cycle the tFAW window admits another ACT. */
    Cycle fawReadyAt() const;

    /** Earliest bank-timer expiry over the queue being served. */
    Cycle earliestCommandAt() const;

    /** Uncached hint scan; 0 encodes "could act immediately". */
    Cycle computeEventHint() const;

    /** Recompute and cache the nextEventAt() hint (slow path). */
    void refreshEventHint() const;

    void issueRead(Entry &e);
    void issueWrite(Entry &e);
    void issueAct(Bank &bank, std::uint32_t row, std::uint16_t bankGroup);
    void issuePre(Bank &bank);

    bool actAllowedByFaw() const;
    bool rowHitPendingFor(const std::vector<Entry> &queue,
                          const Bank &bank, unsigned flatBank) const;

    Bank &bankFor(const DramCoord &c);
    unsigned flatBankFor(const DramCoord &c) const;

    /** Deliver due responses; true when at least one was delivered. */
    bool deliverResponses();

    const Config cfg_;
    const unsigned channel_;
    Cycle now_ = 0;

    std::vector<Bank> banks_;       //!< per (rank, bg, bank) in channel
    std::vector<Entry> readQueue_;
    std::vector<Entry> writeQueue_;
    std::deque<PendingResp> pending_;

    std::uint64_t dequeues_ = 0; //!< request-buffer departures
    std::uint64_t *dequeueMirror_ = nullptr; //!< system-wide aggregate

    bool writeMode_ = false;
    unsigned writeBurst_ = 0;
    unsigned readCredit_ = 0;
    bool refreshPending_ = false;
    Cycle nextRefresh_;
    std::deque<Cycle> actWindow_;   //!< timestamps of recent ACTs (tFAW)

    // nextEventAt() cache: hint values are absolute cycles, so only
    // state changes (tick, enqueue) invalidate — skipCycles keeps it.
    mutable Cycle eventHint_ = 0;
    mutable bool eventHintValid_ = false;

    // Consecutive ticks with no command / delivery / refresh / toggle:
    // quiescent() short-circuits to busy until the streak shows the
    // channel has genuinely gone quiet (see the fast-out comment).
    std::uint8_t idleStreak_ = 2;

    Stats stats_;
};

} // namespace dx::mem

#endif // DX_MEM_CONTROLLER_HH

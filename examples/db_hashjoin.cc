/**
 * @file
 * Domain example: in-memory database probe (the paper's Hash-Join
 * suite). Runs the bucket-chaining probe (PRO) baseline vs DX100 and
 * shows how the accelerator executes a *pointerless linked-list
 * traversal in bulk*: chained conditional ILDs walk every probe
 * tuple's chain simultaneously, one level per instruction round.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "workloads/hashjoin.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main()
{
    // Note: the baseline rides its LLC when the hash table fits, so
    // small scales understate DX100 (see EXPERIMENTS.md). 0.5 gives a
    // table about twice the LLC.
    const Scale scale{0.5};

    std::printf("running baseline probe ...\n");
    BucketChainProbe wb(scale);
    const RunStats base = runWorkloadOnce(wb, SystemConfig::baseline());

    std::printf("running DX100 probe ...\n");
    BucketChainProbe wd(scale);
    const RunStats dx = runWorkloadOnce(wd, SystemConfig::withDx100());

    std::printf("\nbucket-chaining probe (foreign-key join)\n");
    std::printf("%-24s %12s %12s\n", "", "baseline", "DX100");
    std::printf("%-24s %12llu %12llu\n", "cycles",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(dx.cycles));
    std::printf("%-24s %12s %11.2fx\n", "speedup", "1.00x",
                static_cast<double>(base.cycles) / dx.cycles);
    std::printf("%-24s %11.1f%% %11.1f%%\n", "DRAM bus utilization",
                base.bandwidthUtil * 100, dx.bandwidthUtil * 100);
    std::printf("%-24s %11.1f%% %11.1f%%\n", "row-buffer hit rate",
                base.rowBufferHitRate * 100,
                dx.rowBufferHitRate * 100);
    std::printf("%-24s %12llu %12llu\n", "core instructions",
                static_cast<unsigned long long>(base.instructions),
                static_cast<unsigned long long>(dx.instructions));
    std::printf("\nThe DX100 version issues, per tile of probes:\n"
                "  SLD keys; ALUS hash; ILD head -> cursor\n"
                "  repeat until all chains end:\n"
                "    ALUS alive = cursor > 0\n"
                "    ILD  build-key[cursor-1]      if alive\n"
                "    ALUV match += (key == probe)  if alive\n"
                "    ILD  cursor = next[cursor-1]  if alive\n"
                "  SST match counts\n");
    return 0;
}

/**
 * @file
 * DX100's small TLB over huge pages (paper §3.6).
 *
 * Applications map DX100-visible arrays with 2 MiB huge pages and the
 * runtime transfers the page-table entries once per region of interest,
 * so a 256-entry TLB covers working sets of up to 512 MiB. Lookups of an
 * untransferred page model a PTE walk penalty and then install the entry.
 */

#ifndef DX_DX100_TLB_HH
#define DX_DX100_TLB_HH

#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"

namespace dx::dx100
{

class Tlb
{
  public:
    static constexpr unsigned kPageShift = 21; //!< 2 MiB huge pages

    explicit Tlb(unsigned entries, unsigned missPenalty)
        : entries_(entries), missPenalty_(missPenalty)
    {}

    /** Pre-install PTEs covering [base, base + size). */
    void
    installRange(Addr base, Addr size)
    {
        const Addr first = base >> kPageShift;
        const Addr last = (base + size - 1) >> kPageShift;
        for (Addr p = first; p <= last; ++p) {
            pages_.insert(p);
            evictIfFull(p);
        }
    }

    /**
     * Translate an address. Returns the extra latency in cycles
     * (0 on a hit, the PTE-walk penalty on a miss, which also installs
     * the entry).
     */
    unsigned
    lookup(Addr addr)
    {
        const Addr page = addr >> kPageShift;
        if (pages_.count(page)) {
            ++hits_;
            return 0;
        }
        ++misses_;
        pages_.insert(page);
        evictIfFull(page);
        return missPenalty_;
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /**
     * Closed-form account of @p n repeated hit lookups of one already
     * installed page — what a skipped stall loop would have recorded
     * (used by the quiescence fast-forward path).
     */
    void skipHits(std::uint64_t n) { hits_ += n; }

  private:
    /** Capacity model: drop an arbitrary entry, but never the page
     *  that was just installed (evicting it would livelock the
     *  requester in a miss-install-evict loop). */
    void
    evictIfFull(Addr justInstalled)
    {
        if (pages_.size() <= entries_)
            return;
        auto it = pages_.begin();
        if (*it == justInstalled)
            ++it;
        pages_.erase(it);
    }

    unsigned entries_;
    unsigned missPenalty_;
    std::unordered_set<Addr> pages_;
    Counter hits_;
    Counter misses_;
};

} // namespace dx::dx100

#endif // DX_DX100_TLB_HH

/**
 * @file
 * Declarative system assembly.
 *
 * TopologyBuilder turns a SystemConfig into a Topology: the owned set
 * of components (cores, caches, DX100 instances, DRAM, glue ports),
 * wired together and adopted into the component naming tree under a
 * caller-supplied root. System's constructor is the only caller; tests
 * use it through System to audit the resulting tree.
 *
 * The builder is where every structural decision lives — cache
 * hierarchy shape, prefetcher substitution (DMP replaces the L1 stride
 * prefetcher), DX100 MMIO/scratchpad window placement, coherency-agent
 * membership, multi-instance region directory — so sim/system.cc holds
 * no hand-wiring.
 */

#ifndef DX_SIM_TOPOLOGY_HH
#define DX_SIM_TOPOLOGY_HH

#include <memory>
#include <vector>

#include "sim/system.hh"

namespace dx::sim
{

/**
 * Everything a built system owns, in destruction-safe order (later
 * members reference earlier ones and are destroyed first).
 */
struct Topology
{
    std::unique_ptr<mem::DramSystem> dram;
    std::unique_ptr<cache::DramPort> dramPort;
    std::unique_ptr<cache::RangeRouter> router;
    std::unique_ptr<cache::Cache> llc;
    std::vector<std::unique_ptr<cache::Cache>> l2s;
    std::vector<std::unique_ptr<cache::Cache>> l1s;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    std::vector<std::unique_ptr<dx100::Dx100>> dxs;
    std::vector<std::unique_ptr<runtime::Dx100Runtime>> runtimes;
    std::unique_ptr<dx100::RegionDirectory> regionDir;
};

class TopologyBuilder
{
  public:
    /**
     * @p mem is the functional memory backing DMP's value-predicting
     * prefetcher and the DX100 runtimes; it must outlive the topology.
     */
    TopologyBuilder(const SystemConfig &cfg, SimMemory &mem)
        : cfg_(cfg), mem_(mem)
    {
    }

    /**
     * Validate the configuration, instantiate and wire every component,
     * and adopt the tree under @p root:
     *
     *   root.core<i>.{l1d[.dmp], l2}
     *   root.llc
     *   root.dx100 (or dx100_<i> with several instances)
     *   root.dram.ch<c>
     */
    Topology build(Component &root) const;

  private:
    const SystemConfig &cfg_;
    SimMemory &mem_;
};

} // namespace dx::sim

#endif // DX_SIM_TOPOLOGY_HH

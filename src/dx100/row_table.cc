#include "dx100/row_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dx::dx100
{

IndirectTables::IndirectTables(const Config &cfg) : cfg_(cfg)
{
    slices_.assign(cfg_.slices, Slice{});
}

void
IndirectTables::reset(std::uint32_t elems)
{
    for (auto &s : slices_)
        s.rows.clear();
    rows_.clear();
    freeRows_.clear();
    cols_.clear();
    words_.assign(elems, WordEntry{});
    orderCounter_ = 0;
    colsAllocated_ = 0;
    liveRows_ = 0;
}

IndirectTables::InsertResult
IndirectTables::insert(unsigned slice, std::uint32_t row,
                       std::uint32_t col, std::uint16_t wordOff,
                       std::uint32_t iter)
{
    dx_assert(slice < slices_.size(), "slice out of range");
    Slice &s = slices_[slice];

    // BCAM lookup: a live, not-fully-sent row entry with this row
    // address whose SRAM still has room (or already holds the column).
    Row *target = nullptr;
    for (std::uint32_t rowIdx : s.rows) {
        Row &r = rows_[rowIdx];
        if (!r.live || r.sentAll || r.row != row)
            continue;
        // SRAM lookup: unsent entry with this column address?
        for (ColHandle h : r.cols) {
            Col &c = cols_[h];
            if (!c.sent && !c.done && c.col == col) {
                // Chain this word onto the column's linked list.
                words_[iter].prev = c.tail;
                words_[iter].wordOff = wordOff;
                c.tail = static_cast<std::int32_t>(iter);
                return InsertResult::kOk;
            }
        }
        if (r.cols.size() < cfg_.colsPerRow) {
            target = &r;
            break;
        }
    }

    if (!target) {
        if (s.rows.size() >= cfg_.rowsPerSlice)
            return InsertResult::kSliceFull;
        std::uint32_t rowIdx;
        if (!freeRows_.empty()) {
            rowIdx = freeRows_.back();
            freeRows_.pop_back();
        } else {
            rowIdx = static_cast<std::uint32_t>(rows_.size());
            rows_.emplace_back();
        }
        Row &r = rows_[rowIdx];
        r = Row{};
        r.live = true;
        r.slice = slice;
        r.row = row;
        r.order = ++orderCounter_;
        s.rows.push_back(rowIdx);
        ++liveRows_;
        target = &r;
    }

    // Allocate a fresh column entry.
    const ColHandle h = static_cast<ColHandle>(cols_.size());
    Col c;
    c.col = col;
    c.rowIdx = static_cast<std::uint32_t>(target - rows_.data());
    words_[iter].prev = kNoIter;
    words_[iter].wordOff = wordOff;
    c.tail = static_cast<std::int32_t>(iter);
    cols_.push_back(c);
    target->cols.push_back(h);
    ++colsAllocated_;
    return InsertResult::kNewColumn;
}

void
IndirectTables::setCacheHit(ColHandle h, bool hit)
{
    cols_[h].cacheHit = hit;
}

std::optional<IndirectTables::Request>
IndirectTables::nextRequest(unsigned slice)
{
    Slice &s = slices_[slice];
    // Oldest live row first (FIFO order of s.rows).
    for (std::uint32_t rowIdx : s.rows) {
        Row &r = rows_[rowIdx];
        if (!r.live)
            continue;
        for (ColHandle h : r.cols) {
            Col &c = cols_[h];
            if (c.sent || c.done)
                continue;
            c.sent = true;
            // If that was the last unsent column, the row is no longer
            // fill-matchable (BCAM S bit).
            bool allSent = true;
            for (ColHandle h2 : r.cols) {
                if (!cols_[h2].sent && !cols_[h2].done) {
                    allSent = false;
                    break;
                }
            }
            if (allSent && r.cols.size() >= cfg_.colsPerRow)
                r.sentAll = true;
            Request req;
            req.handle = h;
            req.slice = slice;
            req.row = r.row;
            req.col = c.col;
            req.cacheHit = c.cacheHit;
            return req;
        }
    }
    return std::nullopt;
}

void
IndirectTables::unsend(const Request &req)
{
    Col &c = cols_[req.handle];
    dx_assert(c.sent && !c.done, "unsend of an idle column");
    c.sent = false;
    rows_[c.rowIdx].sentAll = false;
}

bool
IndirectTables::hasUnsent(unsigned slice) const
{
    const Slice &s = slices_[slice];
    for (std::uint32_t rowIdx : s.rows) {
        const Row &r = rows_[rowIdx];
        if (!r.live)
            continue;
        for (ColHandle h : r.cols) {
            if (!cols_[h].sent && !cols_[h].done)
                return true;
        }
    }
    return false;
}

bool
IndirectTables::anyUnsent() const
{
    for (unsigned s = 0; s < slices_.size(); ++s) {
        if (hasUnsent(s))
            return true;
    }
    return false;
}

unsigned
IndirectTables::wordsInColumn(ColHandle h) const
{
    unsigned n = 0;
    for (std::int32_t i = cols_[h].tail; i != kNoIter;
         i = words_[static_cast<std::uint32_t>(i)].prev) {
        ++n;
    }
    return n;
}

unsigned
IndirectTables::rowsLive(unsigned slice) const
{
    unsigned n = 0;
    for (std::uint32_t rowIdx : slices_[slice].rows) {
        if (rows_[rowIdx].live)
            ++n;
    }
    return n;
}

void
IndirectTables::releaseColumn(ColHandle h)
{
    Col &c = cols_[h];
    dx_assert(c.sent && !c.done, "completing an idle column");
    c.done = true;
    Row &r = rows_[c.rowIdx];
    ++r.colsDone;
    maybeReleaseRow(c.rowIdx);
}

void
IndirectTables::maybeReleaseRow(std::uint32_t rowIdx)
{
    Row &r = rows_[rowIdx];
    if (!r.live || r.colsDone < r.cols.size())
        return;
    // All allocated columns are done; if nothing further can be added
    // (row closed) or everything sent, release the BCAM entry.
    for (ColHandle h : r.cols) {
        if (!cols_[h].done)
            return;
    }
    r.live = false;
    --liveRows_;
    Slice &s = slices_[r.slice];
    s.rows.erase(std::find(s.rows.begin(), s.rows.end(), rowIdx));
    freeRows_.push_back(rowIdx);
}

} // namespace dx::dx100

/**
 * @file
 * Experiment-layer tests: schema-driven RunStats serialization (every
 * field in DX_RUN_STATS_SCHEMA must survive a round trip), the
 * concurrency-safe stats cache, option parsing, and the declarative
 * run matrix — including deterministic parallel-vs-serial equality
 * and failure isolation on the jthread pool.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/run_matrix.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the gtest temp root. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

ExpOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static char prog[] = "bench";
    argv.push_back(prog);
    for (auto &a : args)
        argv.push_back(a.data());
    return ExpOptions::parse(static_cast<int>(argv.size()),
                             argv.data());
}

/** Distinct non-trivial value in every schema field. */
RunStats
populatedStats()
{
    RunStats s;
    double v = 1.25;
#define DX_TEST_SET(name, type) \
    s.name = static_cast<type>(v); \
    v = v * 2.0 + 0.1875;
    DX_RUN_STATS_SCHEMA(DX_TEST_SET)
#undef DX_TEST_SET
    return s;
}

/** Tiny gather whose verify() always reports failure. */
class FailingWorkload : public Workload
{
  public:
    FailingWorkload() : inner_(GatherMicro::Mode::kFull, 1024) {}

    std::string name() const override { return "failing"; }
    void init(sim::System &sys) override { inner_.init(sys); }

    std::unique_ptr<cpu::Kernel>
    makeKernel(sim::System &sys, unsigned core, bool dx100) override
    {
        return inner_.makeKernel(sys, core, dx100);
    }

    bool verify(sim::System &) override { return false; }

  private:
    GatherMicro inner_;
};

WorkloadSpec
tinyGather(const std::string &name, std::size_t n)
{
    return {name, "micro",
            [n](Scale) -> std::unique_ptr<Workload> {
                return std::make_unique<GatherMicro>(
                    GatherMicro::Mode::kFull, n);
            },
            /*cacheable=*/false};
}

RunMatrix
tinyMatrix()
{
    RunMatrix m("tiny");
    m.add(tinyGather("G1", 1024));
    m.add(tinyGather("G2", 2048));
    m.addConfig("baseline", SystemConfig::baseline(1));
    m.addConfig("dx100", SystemConfig::withDx100(1));
    return m;
}

} // namespace

// ---------------------------------------------------------------------
// Stats schema
// ---------------------------------------------------------------------

TEST(StatsSchema, EveryFieldSurvivesRoundTrip)
{
    const RunStats s = populatedStats();
    const auto parsed = parseStats(serializeStats(s));
    ASSERT_TRUE(parsed.has_value());
    // operator== is generated from the schema: any field that failed
    // to serialize, parse or assign breaks this single check.
    EXPECT_TRUE(*parsed == s);
}

TEST(StatsSchema, FieldCountMatchesVisitor)
{
    std::size_t visited = 0;
    RunStats{}.forEachField([&](const char *, auto) { ++visited; });
    EXPECT_EQ(visited, RunStats::fieldCount());
}

TEST(StatsSchema, SetFieldRejectsUnknownNames)
{
    RunStats s;
    EXPECT_TRUE(s.setField("cycles", 7));
    EXPECT_EQ(s.cycles, 7u);
    EXPECT_FALSE(s.setField("notAStat", 7));
}

TEST(StatsSchema, ParseRejectsGarbageAndPartialEntries)
{
    EXPECT_FALSE(parseStats("garbage").has_value());
    EXPECT_FALSE(parseStats("").has_value());

    // Dropping any one line makes the entry incomplete -> corrupt.
    std::string text = serializeStats(populatedStats());
    text.erase(0, text.find('\n') + 1);
    EXPECT_FALSE(parseStats(text).has_value());
}

TEST(StatsSchema, JsonEmitsEveryField)
{
    const RunStats s = populatedStats();
    const std::string json = statsToJson(s);
    s.forEachField([&](const char *name, auto) {
        EXPECT_NE(json.find("\"" + std::string(name) + "\":"),
                  std::string::npos)
            << "missing field " << name;
    });
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(StatsSchema, ToStringNamesEveryField)
{
    const std::string text = populatedStats().toString();
    RunStats{}.forEachField([&](const char *name, auto) {
        EXPECT_NE(text.find(std::string(name) + "="),
                  std::string::npos);
    });
}

// ---------------------------------------------------------------------
// Option parsing
// ---------------------------------------------------------------------

TEST(ExpOptionsParse, AcceptsAllSupportedOptions)
{
    const ExpOptions opt =
        parseArgs({"--scale=0.75", "--jobs=3", "--json", "--no-cache",
                   "--cache-dir=somewhere"});
    EXPECT_DOUBLE_EQ(opt.scale, 0.75);
    EXPECT_EQ(opt.jobs, 3u);
    EXPECT_EQ(opt.effectiveJobs(), 3u);
    EXPECT_TRUE(opt.json);
    EXPECT_FALSE(opt.useCache);
    EXPECT_EQ(opt.cacheDir, "somewhere");
}

TEST(ExpOptionsParse, NamedScales)
{
    EXPECT_DOUBLE_EQ(parseArgs({"--scale=small"}).scale, 0.25);
    EXPECT_DOUBLE_EQ(parseArgs({"--scale=paper"}).scale, 1.0);
}

TEST(ExpOptionsParse, DefaultsAreSane)
{
    const ExpOptions opt = parseArgs({});
    EXPECT_DOUBLE_EQ(opt.scale, 0.5);
    EXPECT_TRUE(opt.useCache);
    EXPECT_FALSE(opt.json);
    EXPECT_EQ(opt.jobs, 0u);
    EXPECT_GE(opt.effectiveJobs(), 1u);
}

TEST(ExpOptionsParse, MalformedValuesAreFatalNotExceptions)
{
    // In bench binaries dx_fatal exits with a usage hint; under
    // ScopedFatalThrow it surfaces as FatalError, proving std::stod's
    // exception can no longer escape unhandled.
    ScopedFatalThrow guard;
    EXPECT_THROW(parseArgs({"--scale=abc"}), FatalError);
    EXPECT_THROW(parseArgs({"--scale="}), FatalError);
    EXPECT_THROW(parseArgs({"--scale=1.5x"}), FatalError);
    EXPECT_THROW(parseArgs({"--scale=-2"}), FatalError);
    EXPECT_THROW(parseArgs({"--scale=0"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs=0"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs=lots"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs="}), FatalError);
    EXPECT_THROW(parseArgs({"--cache-dir="}), FatalError);
    EXPECT_THROW(parseArgs({"--frobnicate"}), FatalError);
}

// ---------------------------------------------------------------------
// Stats cache
// ---------------------------------------------------------------------

TEST(StatsCache, StoreThenLoadHits)
{
    const fs::path dir = scratchDir("cache_hit");
    const fs::path p = cachePath(dir.string(), "WL", "cfg", 0.5);
    EXPECT_FALSE(loadCachedStats(p).has_value());

    const RunStats s = populatedStats();
    storeCachedStats(p, s);
    const auto loaded = loadCachedStats(p);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(*loaded == s);
}

TEST(StatsCache, CorruptEntryIsAMiss)
{
    const fs::path dir = scratchDir("cache_corrupt");
    const fs::path p = cachePath(dir.string(), "WL", "cfg", 0.5);
    {
        std::ofstream out(p);
        out << "cycles 12\nnot a stats file\n";
    }
    EXPECT_FALSE(loadCachedStats(p).has_value());

    // A fresh store repairs the entry.
    storeCachedStats(p, populatedStats());
    EXPECT_TRUE(loadCachedStats(p).has_value());
}

TEST(StatsCache, AtomicWriteLeavesNoTempFiles)
{
    const fs::path dir = scratchDir("cache_atomic");
    storeCachedStats(cachePath(dir.string(), "A", "t", 1.0),
                     populatedStats());
    storeCachedStats(cachePath(dir.string(), "B", "t", 1.0),
                     populatedStats());
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        EXPECT_EQ(e.path().extension(), ".stats")
            << "stray file: " << e.path();
        ++entries;
    }
    EXPECT_EQ(entries, 2u);
}

TEST(StatsCache, CreatesMissingDirectories)
{
    const fs::path dir = scratchDir("cache_mkdir") / "a" / "b";
    const fs::path p = cachePath(dir.string(), "WL", "cfg", 0.5);
    storeCachedStats(p, populatedStats());
    EXPECT_TRUE(loadCachedStats(p).has_value());
}

TEST(StatsCache, KeysSeparateWorkloadConfigAndScale)
{
    const std::string d = "dir";
    const auto base = cachePath(d, "WL", "cfg", 0.5);
    EXPECT_NE(base, cachePath(d, "WL2", "cfg", 0.5));
    EXPECT_NE(base, cachePath(d, "WL", "cfg2", 0.5));
    EXPECT_NE(base, cachePath(d, "WL", "cfg", 0.25));
}

// ---------------------------------------------------------------------
// Parallel runner
// ---------------------------------------------------------------------

TEST(ParallelRunner, ResultsLandInDeclarationOrder)
{
    std::vector<Job> jobs;
    for (int i = 0; i < 16; ++i) {
        jobs.push_back({"job" + std::to_string(i), [i]() {
                            RunStats s;
                            s.cycles = static_cast<Cycle>(i);
                            return s;
                        }});
    }
    const auto results = ParallelRunner(4).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(results[i].ok);
        EXPECT_EQ(results[i].stats.cycles, static_cast<Cycle>(i));
    }
}

TEST(ParallelRunner, IsolatesFatalAndExceptionFailures)
{
    std::vector<Job> jobs;
    jobs.push_back({"ok", []() { return RunStats{}; }});
    jobs.push_back({"fatal", []() -> RunStats {
                        dx_fatal("deliberate fatal");
                    }});
    jobs.push_back({"throws", []() -> RunStats {
                        throw std::runtime_error("deliberate throw");
                    }});
    jobs.push_back({"ok2", []() { return RunStats{}; }});

    const auto results = ParallelRunner(2).run(jobs);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberate fatal"),
              std::string::npos);
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("deliberate throw"),
              std::string::npos);
    EXPECT_TRUE(results[3].ok);
}

// ---------------------------------------------------------------------
// Run matrix
// ---------------------------------------------------------------------

TEST(RunMatrix, ParallelMatchesSerialBitForBit)
{
    ExpOptions opt;
    opt.useCache = false;

    opt.jobs = 1;
    const MatrixResult serial = tinyMatrix().run(opt);
    opt.jobs = 8;
    const MatrixResult parallel = tinyMatrix().run(opt);

    ASSERT_EQ(serial.cells().size(), 4u);
    ASSERT_EQ(parallel.cells().size(), serial.cells().size());
    for (std::size_t i = 0; i < serial.cells().size(); ++i) {
        const auto &s = serial.cells()[i];
        const auto &p = parallel.cells()[i];
        EXPECT_EQ(s.workload, p.workload);
        EXPECT_EQ(s.config, p.config);
        ASSERT_TRUE(s.result.ok);
        ASSERT_TRUE(p.result.ok);
        // Schema-generated exact equality: every field, no epsilon.
        EXPECT_TRUE(s.result.stats == p.result.stats);
    }
    // Every System built by the matrix was torn down again.
    EXPECT_EQ(sim::System::liveSystems(), 0u);
}

TEST(RunMatrix, CacheRoundTripThroughMatrix)
{
    const fs::path dir = scratchDir("matrix_cache");
    ExpOptions opt;
    opt.useCache = true;
    opt.cacheDir = dir.string();
    opt.jobs = 2;

    RunMatrix m("cached_tiny");
    // cacheable=true so the matrix persists and reuses the cells.
    m.add({"G1", "micro",
           [](Scale) -> std::unique_ptr<Workload> {
               return std::make_unique<GatherMicro>(
                   GatherMicro::Mode::kFull, 1024);
           },
           /*cacheable=*/true});
    m.addConfig("baseline", SystemConfig::baseline(1));
    m.addConfig("dx100", SystemConfig::withDx100(1));

    const MatrixResult first = m.run(opt);
    ASSERT_EQ(first.failures(), 0u);
    for (const auto &c : first.cells())
        EXPECT_FALSE(c.result.fromCache);

    const MatrixResult second = m.run(opt);
    ASSERT_EQ(second.failures(), 0u);
    for (std::size_t i = 0; i < first.cells().size(); ++i) {
        EXPECT_TRUE(second.cells()[i].result.fromCache);
        EXPECT_TRUE(second.cells()[i].result.stats ==
                    first.cells()[i].result.stats);
    }
}

TEST(RunMatrix, FailedCellIsIsolated)
{
    ExpOptions opt;
    opt.useCache = false;
    opt.jobs = 2;

    RunMatrix m("failure");
    m.add({"failing", "micro",
           [](Scale) -> std::unique_ptr<Workload> {
               return std::make_unique<FailingWorkload>();
           },
           /*cacheable=*/false});
    m.add(tinyGather("good", 1024));
    m.addConfig("baseline", SystemConfig::baseline(1));

    const MatrixResult r = m.run(opt);
    EXPECT_EQ(r.failures(), 1u);
    const CellResult &bad = r.cell("failing", "baseline");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("verification"), std::string::npos);
    EXPECT_TRUE(r.cell("good", "baseline").ok);
}

TEST(RunMatrix, LimitProducesSparseGrid)
{
    RunMatrix m("sparse");
    m.add(tinyGather("A", 1024));
    m.add(tinyGather("B", 1024));
    m.addConfig("c1", SystemConfig::baseline(1));
    m.addConfig("c2", SystemConfig::baseline(1));
    m.limit("A", {"c1"});

    ExpOptions opt;
    opt.useCache = false;
    opt.jobs = 2;
    const MatrixResult r = m.run(opt);
    EXPECT_EQ(r.cells().size(), 3u); // A/c1, B/c1, B/c2
    EXPECT_NE(r.find("A", "c1"), nullptr);
    EXPECT_EQ(r.find("A", "c2"), nullptr);
    EXPECT_NE(r.find("B", "c2"), nullptr);
}

TEST(RunMatrix, JsonDumpCoversEveryCell)
{
    ExpOptions opt;
    opt.useCache = false;
    opt.jobs = 2;
    const MatrixResult r = tinyMatrix().run(opt);
    const std::string json = r.toJson("tiny", opt);
    EXPECT_NE(json.find("\"bench\": \"tiny\""), std::string::npos);
    for (const auto &w : r.workloads())
        EXPECT_NE(json.find("\"workload\": \"" + w.name + "\""),
                  std::string::npos);
    EXPECT_NE(json.find("\"config\": \"dx100\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
}

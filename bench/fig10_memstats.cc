/**
 * @file
 * Reproduces paper Fig. 10: (a) DRAM bandwidth utilization, (b) row
 * buffer hit rate, and (c) request buffer occupancy, baseline vs
 * DX100 (paper averages: 3.9x bandwidth, 2.7x row hits, 12.1x
 * occupancy). Shares RunMatrix::paperMain (and cache) with fig09/11.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

void
formatMemStatsTable(const MatrixResult &r)
{
    std::printf("%-8s | %6s %6s %6s | %6s %6s %6s | %7s %7s %7s\n",
                "kernel", "bw.b", "bw.dx", "ratio", "rbh.b", "rbh.dx",
                "ratio", "occ.b", "occ.dx", "ratio");
    std::vector<double> bwRatios, rbhRatios, occRatios;
    for (const auto &w : r.workloads()) {
        const CellResult &base = r.cell(w.name, "baseline");
        const CellResult &dx = r.cell(w.name, "dx100");
        if (!base.ok || !dx.ok) {
            std::printf("%-8s | %6s\n", w.name.c_str(), "FAILED");
            continue;
        }
        const RunStats &b = base.stats;
        const RunStats &d = dx.stats;

        const double bwR =
            d.bandwidthUtil / std::max(b.bandwidthUtil, 1e-9);
        const double rbhR =
            d.rowBufferHitRate / std::max(b.rowBufferHitRate, 1e-9);
        const double occR =
            d.requestBufferOccupancy /
            std::max(b.requestBufferOccupancy, 1e-9);
        bwRatios.push_back(bwR);
        rbhRatios.push_back(rbhR);
        occRatios.push_back(occR);

        std::printf("%-8s | %6.3f %6.3f %5.1fx | %6.3f %6.3f %5.1fx |"
                    " %7.4f %7.4f %5.1fx\n",
                    w.name.c_str(), b.bandwidthUtil, d.bandwidthUtil,
                    bwR, b.rowBufferHitRate, d.rowBufferHitRate, rbhR,
                    b.requestBufferOccupancy, d.requestBufferOccupancy,
                    occR);
    }
    std::printf("%-8s | %13s %5.1fx | %13s %5.1fx | %15s %5.1fx\n",
                "mean", "(paper 3.9x)", geomean(bwRatios),
                "(paper 2.7x)", geomean(rbhRatios), "(paper 12.1x)",
                geomean(occRatios));
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader(
        "Fig. 10 - bandwidth / row-buffer hits / occupancy", opt);

    const MatrixResult result = RunMatrix::paperMain().run(opt);
    formatMemStatsTable(result);
    maybeWriteJson(result, "fig10", opt);
    return result.failures() == 0 ? 0 : 1;
}

#include "model/area_power.hh"

namespace dx::model
{

std::vector<Component>
AreaPowerModel::components()
{
    // Paper Table 4 (28 nm TSMC synthesis; BCAM in 28 nm FDSOI).
    return {
        {"Range Fuser", 0.001, 0.26},
        {"ALU", 0.095, 74.83},
        {"Stream Access", 0.012, 6.03},
        {"Indirect Access", 0.323, 83.70},
        {"Controller", 0.002, 0.43},
        {"Interface", 0.045, 30.0},
        {"Coherency Agent", 0.010, 3.12},
        {"Register File", 0.005, 1.56},
        {"Scratchpad", 3.566, 577.03},
    };
}

double
AreaPowerModel::areaScale28to14()
{
    // Stillmaker & Baas give ~0.36-0.37 area scaling from 28 nm to
    // 14 nm for logic+SRAM mixes; the paper lands 4.061 mm^2 -> ~1.5
    // mm^2, i.e. a factor of ~0.369.
    return 1.5 / 4.061;
}

double
AreaPowerModel::totalArea28()
{
    double a = 0.0;
    for (const auto &c : components())
        a += c.areaMm2atlas28;
    return a;
}

double
AreaPowerModel::totalPower28()
{
    double p = 0.0;
    for (const auto &c : components())
        p += c.powerMw28;
    return p;
}

double
AreaPowerModel::totalArea14()
{
    return totalArea28() * areaScale28to14();
}

double
AreaPowerModel::processorOverhead(unsigned cores)
{
    return totalArea14() / (kCoreArea14 * cores);
}

} // namespace dx::model

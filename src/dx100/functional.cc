#include "dx100/functional.hh"

#include <bit>

#include "common/logging.hh"

namespace dx::dx100
{

std::uint64_t
packStream(const StreamScalars &s)
{
    dx_assert(s.start < (std::uint64_t{1} << 32), "stream start too big");
    dx_assert(s.count < (1u << 20), "stream count too big");
    dx_assert(s.stride >= -(1 << 11) && s.stride < (1 << 11),
              "stream stride out of range");
    const std::uint64_t strideBits =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.stride)) &
        0xfff;
    return s.start | (std::uint64_t{s.count} << 32) | (strideBits << 52);
}

StreamScalars
unpackStream(std::uint64_t imm)
{
    StreamScalars s;
    s.start = imm & 0xffffffffULL;
    s.count = static_cast<std::uint32_t>((imm >> 32) & 0xfffff);
    std::uint32_t raw = static_cast<std::uint32_t>((imm >> 52) & 0xfff);
    if (raw & 0x800)
        raw |= 0xfffff000u; // sign-extend 12 bits
    s.stride = static_cast<std::int32_t>(raw);
    return s;
}

namespace
{

template <typename T>
std::uint64_t
aluTyped(AluOp op, std::uint64_t ar, std::uint64_t br)
{
    T a, b;
    if constexpr (sizeof(T) == 4) {
        const auto a32 = static_cast<std::uint32_t>(ar);
        const auto b32 = static_cast<std::uint32_t>(br);
        a = std::bit_cast<T>(a32);
        b = std::bit_cast<T>(b32);
    } else {
        a = std::bit_cast<T>(ar);
        b = std::bit_cast<T>(br);
    }

    auto wrap = [](T v) -> std::uint64_t {
        if constexpr (sizeof(T) == 4) {
            return static_cast<std::uint64_t>(
                std::bit_cast<std::uint32_t>(v));
        } else {
            return std::bit_cast<std::uint64_t>(v);
        }
    };

    switch (op) {
      case AluOp::kAdd: return wrap(a + b);
      case AluOp::kSub: return wrap(a - b);
      case AluOp::kMul: return wrap(a * b);
      case AluOp::kMin: return wrap(a < b ? a : b);
      case AluOp::kMax: return wrap(a > b ? a : b);
      case AluOp::kLt: return a < b ? 1 : 0;
      case AluOp::kLe: return a <= b ? 1 : 0;
      case AluOp::kGt: return a > b ? 1 : 0;
      case AluOp::kGe: return a >= b ? 1 : 0;
      case AluOp::kEq: return a == b ? 1 : 0;
      default:
        break;
    }

    if constexpr (std::is_integral_v<T>) {
        switch (op) {
          case AluOp::kAnd: return wrap(a & b);
          case AluOp::kOr: return wrap(a | b);
          case AluOp::kXor: return wrap(a ^ b);
          case AluOp::kShr:
            return wrap(static_cast<T>(a >> (b & (sizeof(T) * 8 - 1))));
          case AluOp::kShl:
            return wrap(static_cast<T>(a << (b & (sizeof(T) * 8 - 1))));
          default:
            break;
        }
    }
    dx_panic("unsupported ALU op ", to_string(op), " for ",
             std::is_integral_v<T> ? "integer" : "float", " type");
}

} // namespace

std::uint64_t
applyAluOp(AluOp op, DataType t, std::uint64_t a, std::uint64_t b)
{
    switch (t) {
      case DataType::kU32: return aluTyped<std::uint32_t>(op, a, b);
      case DataType::kI32: return aluTyped<std::int32_t>(op, a, b);
      case DataType::kF32: return aluTyped<float>(op, a, b);
      case DataType::kU64: return aluTyped<std::uint64_t>(op, a, b);
      case DataType::kI64: return aluTyped<std::int64_t>(op, a, b);
      case DataType::kF64: return aluTyped<double>(op, a, b);
    }
    dx_panic("bad data type");
}

Functional::Functional(SimMemory &mem, unsigned numTiles,
                       unsigned tileElems, unsigned numRegs)
    : mem_(mem), tileElems_(tileElems), tiles_(numTiles),
      regs_(numRegs, 0)
{
    for (auto &t : tiles_)
        t.data.assign(tileElems_, 0);
}

void
Functional::writeReg(unsigned r, std::uint64_t v)
{
    dx_assert(r < regs_.size(), "register index out of range");
    regs_[r] = v;
}

std::uint64_t
Functional::reg(unsigned r) const
{
    dx_assert(r < regs_.size(), "register index out of range");
    return regs_[r];
}

const Functional::Tile &
Functional::tile(unsigned t) const
{
    dx_assert(t < tiles_.size(), "tile index out of range");
    return tiles_[t];
}

Functional::Tile &
Functional::tileRef(unsigned t)
{
    dx_assert(t < tiles_.size(), "tile index out of range");
    return tiles_[t];
}

bool
Functional::condAt(const Instruction &instr, std::uint32_t i) const
{
    if (instr.tc == kNoOperand)
        return true;
    const Tile &tc = tile(instr.tc);
    dx_assert(i < tc.size, "condition tile shorter than iteration space");
    return tc.data[i] != 0;
}

std::uint64_t
Functional::loadElem(Addr addr, unsigned bytes) const
{
    return bytes == 4 ? mem_.read<std::uint32_t>(addr)
                      : mem_.read<std::uint64_t>(addr);
}

void
Functional::storeElem(Addr addr, unsigned bytes, std::uint64_t v)
{
    if (bytes == 4)
        mem_.write<std::uint32_t>(addr, static_cast<std::uint32_t>(v));
    else
        mem_.write<std::uint64_t>(addr, v);
}

void
Functional::execute(const Instruction &instr)
{
    switch (instr.op) {
      case Opcode::kIld:
      case Opcode::kIst:
      case Opcode::kIrmw:
        execIndirect(instr);
        break;
      case Opcode::kSld:
      case Opcode::kSst:
        execStream(instr);
        break;
      case Opcode::kAluv:
      case Opcode::kAlus:
        execAlu(instr);
        break;
      case Opcode::kRng:
        execRange(instr);
        break;
    }
}

void
Functional::execIndirect(const Instruction &instr)
{
    const unsigned bytes = instr.elemBytes();
    const Tile &idx = tile(instr.ts1);
    Tile *dst = instr.op == Opcode::kIld ? &tileRef(instr.td) : nullptr;
    const Tile *src =
        instr.op != Opcode::kIld ? &tile(instr.ts2) : nullptr;

    if (instr.op == Opcode::kIrmw)
        dx_assert(rmwSupported(instr.aluOp),
                  "IRMW requires an associative/commutative op");

    for (std::uint32_t i = 0; i < idx.size; ++i) {
        if (!condAt(instr, i)) {
            if (dst)
                dst->data[i] = 0;
            continue;
        }
        const Addr addr = instr.base + idx.data[i] * bytes;
        switch (instr.op) {
          case Opcode::kIld:
            dst->data[i] = loadElem(addr, bytes);
            break;
          case Opcode::kIst:
            storeElem(addr, bytes, src->data[i]);
            break;
          case Opcode::kIrmw: {
            const std::uint64_t old = loadElem(addr, bytes);
            storeElem(addr, bytes,
                      applyAluOp(instr.aluOp, instr.dtype, old,
                                 src->data[i]));
            break;
          }
          default:
            dx_panic("not an indirect op");
        }
    }
    if (dst)
        dst->size = idx.size;
}

void
Functional::execStream(const Instruction &instr)
{
    const unsigned bytes = instr.elemBytes();
    const StreamScalars s = unpackStream(instr.imm);
    dx_assert(s.count <= tileElems_, "stream longer than a tile");

    if (instr.op == Opcode::kSld) {
        Tile &dst = tileRef(instr.td);
        for (std::uint32_t i = 0; i < s.count; ++i) {
            if (!condAt(instr, i)) {
                dst.data[i] = 0;
                continue;
            }
            const Addr addr =
                instr.base +
                (s.start + static_cast<std::int64_t>(i) * s.stride) *
                    bytes;
            dst.data[i] = loadElem(addr, bytes);
        }
        dst.size = s.count;
    } else {
        const Tile &src = tile(instr.ts1);
        for (std::uint32_t i = 0; i < s.count; ++i) {
            if (!condAt(instr, i))
                continue;
            const Addr addr =
                instr.base +
                (s.start + static_cast<std::int64_t>(i) * s.stride) *
                    bytes;
            storeElem(addr, bytes, src.data[i]);
        }
    }
}

void
Functional::execAlu(const Instruction &instr)
{
    const Tile &a = tile(instr.ts1);
    Tile &dst = tileRef(instr.td);
    const bool vector = instr.op == Opcode::kAluv;
    const Tile *b = vector ? &tile(instr.ts2) : nullptr;
    const std::uint64_t scalar = vector ? 0 : reg(instr.rs1);

    for (std::uint32_t i = 0; i < a.size; ++i) {
        if (!condAt(instr, i)) {
            dst.data[i] = 0;
            continue;
        }
        const std::uint64_t rhs = vector ? b->data[i] : scalar;
        dst.data[i] = applyAluOp(instr.aluOp, instr.dtype, a.data[i],
                                 rhs);
    }
    dst.size = a.size;
}

void
Functional::execRange(const Instruction &instr)
{
    const Tile &lo = tile(instr.ts1);
    const Tile &hi = tile(instr.ts2);
    dx_assert(lo.size == hi.size, "range boundary tiles differ in size");

    Tile &outer = tileRef(instr.td);
    Tile &inner = tileRef(instr.td2);
    const std::uint32_t startRange =
        static_cast<std::uint32_t>(instr.imm & 0xffffffffULL);

    std::uint32_t out = 0;
    std::uint32_t consumed = 0;
    for (std::uint32_t i = startRange; i < lo.size; ++i) {
        if (!condAt(instr, i)) {
            ++consumed;
            continue;
        }
        const std::uint64_t b = lo.data[i];
        const std::uint64_t e = hi.data[i];
        const std::uint64_t len = e > b ? e - b : 0;
        if (out + len > tileElems_)
            break; // output full: stop before this range
        for (std::uint64_t j = b; j < e; ++j) {
            outer.data[out] = i;
            inner.data[out] = j;
            ++out;
        }
        ++consumed;
    }
    outer.size = out;
    inner.size = out;
    if (instr.rs1 != kNoOperand)
        writeReg(instr.rs1, consumed);
}

} // namespace dx::dx100

/**
 * @file
 * Fundamental simulator-wide type aliases and constants.
 */

#ifndef DX_COMMON_TYPES_HH
#define DX_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace dx
{

/** A (virtual == physical in this model) byte address. */
using Addr = std::uint64_t;

/** A point in simulated time, measured in clock cycles of some domain. */
using Cycle = std::uint64_t;

/** Monotonic sequence number for micro-ops and requests. */
using SeqNum = std::uint64_t;

/** Cache line size in bytes, used uniformly by every level and DRAM. */
constexpr unsigned kLineBytes = 64;

/** log2 of the cache line size. */
constexpr unsigned kLineShift = 6;

/** Round an address down to its containing cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~Addr{kLineBytes - 1};
}

/** Offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineBytes - 1));
}

/** An invalid / "no value" sentinel for sequence numbers. */
constexpr SeqNum kNoSeq = ~SeqNum{0};

/**
 * "No scheduled event" sentinel for nextEventAt() hints: the component
 * will not act again unless external stimulus arrives.
 */
constexpr Cycle kNeverCycle = ~Cycle{0};

} // namespace dx

#endif // DX_COMMON_TYPES_HH

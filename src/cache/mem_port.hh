/**
 * @file
 * Memory-side ports below the LLC: the DRAM adapter and an address-range
 * router that steers scratchpad-region lines to DX100 instead of DRAM.
 */

#ifndef DX_CACHE_MEM_PORT_HH
#define DX_CACHE_MEM_PORT_HH

#include <cstdint>
#include <vector>

#include "cache/cache_if.hh"
#include "mem/dram_system.hh"

namespace dx::cache
{

/** Adapts the CachePort protocol onto the DRAM system. */
class DramPort : public CachePort, public mem::MemRespSink
{
  public:
    explicit DramPort(mem::DramSystem &dram) : dram_(dram) {}

    bool canAccept() const override;
    bool canAcceptReq(const CacheReq &req) const override;
    void request(const CacheReq &req) override;
    void complete(const mem::MemRequest &req) override;

    /** Admission is gated on controller buffers; report their drains. */
    std::uint64_t
    popCount() const override
    {
        return dram_.dequeueCount();
    }

    const std::uint64_t *
    popCountAddr() const override
    {
        return dram_.dequeueCountAddr();
    }

    bool busy() const { return inflight_ > 0; }

  private:
    mem::DramSystem &dram_;
    std::vector<CacheReq> slots_;
    std::vector<std::uint32_t> freeSlots_;
    unsigned inflight_ = 0;
};

/**
 * Steers requests by address range: lines inside [base, base+size) go to
 * the `special` port (DX100's scratchpad), everything else to DRAM.
 */
class RangeRouter : public CachePort
{
  public:
    RangeRouter(CachePort &fallback) : fallback_(&fallback) {}

    void
    addRange(Addr base, Addr size, CachePort *port)
    {
        ranges_.push_back({base, base + size, port});
    }

    bool canAccept() const override;
    bool canAcceptReq(const CacheReq &req) const override;
    void request(const CacheReq &req) override;

    /**
     * Departures across every routed port; unknown if any subport
     * cannot track them (a waiter must then probe every cycle).
     */
    std::uint64_t
    popCount() const override
    {
        std::uint64_t sum = fallback_->popCount();
        if (sum == kPortPopsUnknown)
            return kPortPopsUnknown;
        for (const auto &r : ranges_) {
            const std::uint64_t p = r.port->popCount();
            if (p == kPortPopsUnknown)
                return kPortPopsUnknown;
            sum += p;
        }
        return sum;
    }

  private:
    struct Range
    {
        Addr begin;
        Addr end;
        CachePort *port;
    };

    CachePort *fallback_;
    std::vector<Range> ranges_;
};

} // namespace dx::cache

#endif // DX_CACHE_MEM_PORT_HH

#include "sim/system.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace dx::sim
{

SystemConfig::SystemConfig()
{
    l1.name = "L1D";
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    l1.latency = 4;
    l1.mshrs = 16;
    l1.queueSize = 16;
    l1.width = 2;

    l2.name = "L2";
    l2.sizeBytes = 256 * 1024;
    l2.assoc = 4;
    l2.latency = 12;
    l2.mshrs = 32;
    l2.queueSize = 24;
    l2.width = 2;

    llc.name = "LLC";
    llc.sizeBytes = 10 * 1024 * 1024;
    llc.assoc = 20;
    llc.latency = 42;
    llc.mshrs = 256;
    llc.queueSize = 96;
    llc.width = 4;
    llc.inclusiveRoot = true;
}

SystemConfig
SystemConfig::baseline(unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    // Scale channels with core count (paper Fig. 14: 8 cores, 4 ch).
    cfg.dram.ctrl.geom.channels = cores <= 4 ? 2 : 4;
    if (cores > 4)
        cfg.llc.sizeBytes = 20 * 1024 * 1024;
    return cfg;
}

SystemConfig
SystemConfig::withDx100(unsigned cores, unsigned instances)
{
    SystemConfig cfg = baseline(cores);
    cfg.dx100Instances = instances;
    // Fair comparison: the LLC gives up ~2 MB per instance (paper §5),
    // rounded so the set count stays a power of two.
    cfg.llc.sizeBytes = cores <= 4 ? 8 * 1024 * 1024
                                   : 16 * 1024 * 1024;
    cfg.llc.assoc = 16;
    return cfg;
}

SystemConfig
SystemConfig::withDmp(unsigned cores)
{
    SystemConfig cfg = baseline(cores);
    cfg.dmp = true;
    return cfg;
}

bool
RunStats::setField(const std::string &name, double value)
{
#define DX_STAT_SET(fname, type) \
    if (name == #fname) { \
        fname = static_cast<type>(value); \
        return true; \
    }
    DX_RUN_STATS_SCHEMA(DX_STAT_SET)
#undef DX_STAT_SET
    return false;
}

bool
RunStats::operator==(const RunStats &o) const
{
#define DX_STAT_EQ(fname, type) \
    if (fname != o.fname) \
        return false;
    DX_RUN_STATS_SCHEMA(DX_STAT_EQ)
#undef DX_STAT_EQ
    return true;
}

std::string
RunStats::toString() const
{
    std::ostringstream os;
    bool first = true;
    forEachField([&](const char *name, auto value) {
        os << (first ? "" : " ") << name << "=" << value;
        first = false;
    });
    return os.str();
}

namespace
{

/** The only cross-System shared state; see System::liveSystems(). */
std::atomic<unsigned> gLiveSystems{0};

bool
resolveNaiveTick(TickPolicy policy)
{
    if (policy == TickPolicy::kNaive)
        return true;
    if (policy == TickPolicy::kQuiescent)
        return false;
    const char *env = std::getenv("DX_NAIVE_TICK");
    return env && env[0] == '1' && env[1] == '\0';
}

/**
 * Skip @p c one cycle when its own hint proves the tick a no-op.
 * Returns the component's event hint when it skipped, 0 when it had to
 * tick (0 is never a legal hint: hints exceed the component's clock).
 */
template <typename C>
Cycle
tickOrSkip(C &c)
{
    // c's clock trails the advanced System clock by one here, so the
    // tick being decided lands on localNow() + 1: skip only when the
    // next event lies strictly beyond it.
    if (c.quiescent()) {
        const Cycle ev = c.nextEventAt();
        if (ev > c.localNow() + 1) {
            c.skipCycles(1);
            return ev;
        }
    }
    c.tick();
    return 0;
}

} // namespace

unsigned
System::liveSystems()
{
    return gLiveSystems.load(std::memory_order_relaxed);
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), naiveTick_(resolveNaiveTick(cfg.tickPolicy))
{
    dx_assert(cfg_.cores > 0, "a System needs at least one core");
    gLiveSystems.fetch_add(1, std::memory_order_relaxed);
    dram_ = std::make_unique<mem::DramSystem>(cfg_.dram);
    dramPort_ = std::make_unique<cache::DramPort>(*dram_);
    router_ = std::make_unique<cache::RangeRouter>(*dramPort_);
    llc_ = std::make_unique<cache::Cache>(cfg_.llc, router_.get());

    for (unsigned i = 0; i < cfg_.cores; ++i) {
        cache::Cache::Config l2c = cfg_.l2;
        l2c.name = "L2." + std::to_string(i);
        l2s_.push_back(std::make_unique<cache::Cache>(l2c, llc_.get()));
        cache::Cache::Config l1c = cfg_.l1;
        l1c.name = "L1D." + std::to_string(i);
        l1s_.push_back(
            std::make_unique<cache::Cache>(l1c, l2s_.back().get()));
        llc_->addChild(l1s_.back().get());
        llc_->addChild(l2s_.back().get());

        if (cfg_.stridePrefetchers) {
            // DMP needs the full-resolution access stream (per-element
            // pcs and values), so it replaces the L1 prefetcher; the
            // L2 stride prefetcher stays in both configurations.
            l1s_.back()->setPrefetcher(
                cfg_.dmp ? std::unique_ptr<cache::Prefetcher>(
                               std::make_unique<
                                   prefetch::IndirectPrefetcher>(
                                   cfg_.dmpCfg, &mem_))
                         : std::unique_ptr<cache::Prefetcher>(
                               std::make_unique<
                                   cache::StridePrefetcher>()));
            l2s_.back()->setPrefetcher(
                std::make_unique<cache::StridePrefetcher>());
        }

        cores_.push_back(
            std::make_unique<cpu::Core>(cfg_.core, static_cast<int>(i),
                                        l1s_.back().get()));
    }

    // DX100 instances: cores are multiplexed contiguously.
    for (unsigned inst = 0; inst < cfg_.dx100Instances; ++inst) {
        dx100::Dx100Config dxc = cfg_.dx;
        // Give each instance disjoint MMIO/SPD windows.
        dxc.mmioBase = cfg_.dx.mmioBase + (Addr{inst} << 28);
        dxc.spdBase = cfg_.dx.spdBase + (Addr{inst} << 28);

        dx100::CoherencyAgent agent;
        agent.setLlc(llc_.get());
        agent.addCache(llc_.get());
        for (auto &c : l1s_)
            agent.addCache(c.get());
        for (auto &c : l2s_)
            agent.addCache(c.get());

        dxs_.push_back(std::make_unique<dx100::Dx100>(
            dxc, *dram_, llc_.get(), agent, cfg_.cores));
        router_->addRange(dxc.spdBase, dxc.spdSize(),
                          &dxs_.back()->spdPort());
        runtimes_.push_back(std::make_unique<runtime::Dx100Runtime>(
            *dxs_.back(), mem_));
    }

    // Multiple instances uphold the Single-Writer invariant through a
    // coarse-grained region directory (§6.6).
    if (dxs_.size() > 1) {
        regionDir_ = std::make_unique<dx100::RegionDirectory>();
        for (unsigned inst = 0; inst < dxs_.size(); ++inst) {
            dxs_[inst]->setRegionDirectory(regionDir_.get(),
                                           static_cast<int>(inst));
        }
    }

    for (unsigned i = 0; i < cfg_.cores; ++i) {
        if (auto *dev = dx100For(i))
            cores_[i]->setMmioDevice(dev);
    }

    // Parallel-safety invariant: every component this System ticks is
    // owned by this instance (no component registry, no global memory
    // pool). Check the ownership edges that matter.
    dx_assert(l1s_.size() == cfg_.cores &&
                  l2s_.size() == cfg_.cores &&
                  cores_.size() == cfg_.cores,
              "System must own one L1/L2/core per configured core");
    dx_assert(dxs_.size() == cfg_.dx100Instances,
              "System must own every configured DX100 instance");
}

System::~System()
{
    gLiveSystems.fetch_sub(1, std::memory_order_relaxed);
}

dx100::Dx100 *
System::dx100For(unsigned coreId)
{
    if (dxs_.empty())
        return nullptr;
    const unsigned coresPerInst =
        (cfg_.cores + static_cast<unsigned>(dxs_.size()) - 1) /
        static_cast<unsigned>(dxs_.size());
    return dxs_[coreId / coresPerInst].get();
}

dx100::Dx100 *
System::dx100(unsigned instance)
{
    return instance < dxs_.size() ? dxs_[instance].get() : nullptr;
}

runtime::Dx100Runtime *
System::runtime(unsigned instance)
{
    return instance < runtimes_.size() ? runtimes_[instance].get()
                                       : nullptr;
}

runtime::Dx100Runtime *
System::runtimeFor(unsigned coreId)
{
    if (runtimes_.empty())
        return nullptr;
    const unsigned coresPerInst =
        (cfg_.cores + static_cast<unsigned>(runtimes_.size()) - 1) /
        static_cast<unsigned>(runtimes_.size());
    return runtimes_[coreId / coresPerInst].get();
}

void
System::setKernel(unsigned coreId, cpu::Kernel *kernel)
{
    cores_[coreId]->setKernel(kernel);
}

void
System::warmLlc(Addr base, Addr size)
{
    // Warm at most 7/8 of the LLC, preferring the *tail* of the region
    // (what an LRU cache would retain after the producing phase).
    const Addr limit = std::min<Addr>(
        size, cfg_.llc.sizeBytes - cfg_.llc.sizeBytes / 8);
    const Addr start = base + (size - limit);
    for (Addr off = 0; off < limit; off += kLineBytes)
        llc_->warmInsert(start + off);
}

void
System::tick()
{
    ++now_;
    for (auto &c : cores_)
        c->tick();
    for (auto &c : l1s_)
        c->tick();
    for (auto &c : l2s_)
        c->tick();
    llc_->tick();
    for (auto &d : dxs_)
        d->tick();
    dram_->tick();
}

Cycle
System::tickScheduled()
{
    // Same component order as tick(): skip decisions are made at each
    // component's slot, so anything an earlier component injected this
    // cycle (e.g. a core's doorbell into a DX100 input queue) is seen.
    ++now_;
    Cycle ev = kNeverCycle;
    bool allSkipped = true;
    const auto fold = [&](Cycle r) {
        if (r == 0)
            allSkipped = false;
        else
            ev = std::min(ev, r);
    };
    for (auto &c : cores_)
        fold(tickOrSkip(*c));
    for (auto &c : l1s_)
        fold(tickOrSkip(*c));
    for (auto &c : l2s_)
        fold(tickOrSkip(*c));
    fold(tickOrSkip(*llc_));
    for (auto &d : dxs_)
        fold(tickOrSkip(*d));
    if (!dram_->tickScheduled() || !allSkipped)
        return 0;
    // Every skip above was side-effect-free, so the hints gathered at
    // each slot still hold now; the DRAM hint is queried lazily — it
    // is only worth computing when everything else already skipped.
    return std::min(ev, dram_->nextEventAt());
}

Cycle
System::quiescentHorizon() const
{
    Cycle best = kNeverCycle;
    for (const auto &c : cores_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    for (const auto &c : l1s_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    for (const auto &c : l2s_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    if (!llc_->quiescent())
        return 0;
    best = std::min(best, llc_->nextEventAt());
    for (const auto &d : dxs_) {
        if (!d->quiescent())
            return 0;
        best = std::min(best, d->nextEventAt());
    }
    if (!dram_->quiescent())
        return 0;
    return std::min(best, dram_->nextEventAt());
}

void
System::skipTo(Cycle target)
{
    dx_assert(target >= now_, "skipTo into the past");
    const Cycle n = target - now_;
    if (n == 0)
        return;
    for (auto &c : cores_)
        c->skipCycles(n);
    for (auto &c : l1s_)
        c->skipCycles(n);
    for (auto &c : l2s_)
        c->skipCycles(n);
    llc_->skipCycles(n);
    for (auto &d : dxs_)
        d->skipCycles(n);
    dram_->skipCycles(n);
    now_ = target;
}

bool
System::drained() const
{
    for (const auto &c : cores_) {
        if (!c->done())
            return false;
    }
    for (const auto &d : dxs_) {
        if (!d->idle())
            return false;
    }
    for (const auto &c : l1s_) {
        if (!c->drained())
            return false;
    }
    for (const auto &c : l2s_) {
        if (!c->drained())
            return false;
    }
    return llc_->drained() && dram_->idle();
}

RunStats
System::run(Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle limit = start + maxCycles;
    while (!drained()) {
        if (naiveTick_) {
            tick();
        } else {
            // When every component skipped, the per-slot hints prove a
            // horizon: jump to the cycle before it in one closed-form
            // step (the cap keeps the cycle-limit fatal below
            // reachable).
            const Cycle horizon = tickScheduled();
            if (horizon > now_ + 1)
                skipTo(std::min(horizon - 1, limit));
        }
        if (now_ - start >= maxCycles)
            dx_fatal("simulation exceeded cycle limit");
    }

    RunStats s = collectStats();
    s.cycles = now_ - start;
    s.ipc = s.cycles ? static_cast<double>(s.instructions) / s.cycles
                     : 0.0;
    return s;
}

RunStats
System::collectStats() const
{
    RunStats s;
    s.cycles = now_;
    for (const auto &c : cores_)
        s.instructions += c->stats().committedOps.value();
    s.ipc = now_ ? static_cast<double>(s.instructions) / now_ : 0.0;
    s.bandwidthUtil = dram_->busUtilization();
    s.rowBufferHitRate = dram_->rowHitRate();
    s.requestBufferOccupancy = dram_->queueOccupancy();
    s.dramLines = dram_->linesTransferred();

    const double kilo = s.instructions / 1000.0;
    if (kilo > 0) {
        s.llcMpki = llc_->stats().demandMisses.value() / kilo;
        std::uint64_t l2m = 0;
        for (const auto &c : l2s_)
            l2m += c->stats().demandMisses.value();
        s.l2Mpki = l2m / kilo;
    }

    for (const auto &d : dxs_) {
        s.dxInstructions += d->stats().instructionsRetired.value();
        s.coalescingFactor = d->stats().coalescingFactor();
    }
    return s;
}

} // namespace dx::sim

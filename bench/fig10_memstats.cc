/**
 * @file
 * Reproduces paper Fig. 10: (a) DRAM bandwidth utilization, (b) row
 * buffer hit rate, and (c) request buffer occupancy, baseline vs
 * DX100 (paper averages: 3.9x bandwidth, 2.7x row hits, 12.1x
 * occupancy).
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader(
        "Fig. 10 - bandwidth / row-buffer hits / occupancy", opt);

    std::printf("%-8s | %6s %6s %6s | %6s %6s %6s | %7s %7s %7s\n",
                "kernel", "bw.b", "bw.dx", "ratio", "rbh.b", "rbh.dx",
                "ratio", "occ.b", "occ.dx", "ratio");
    std::vector<double> bwRatios, rbhRatios, occRatios;
    for (const auto &entry : paperWorkloads()) {
        const RunStats base = runWorkload(
            entry, SystemConfig::baseline(), "baseline", opt);
        const RunStats dx = runWorkload(
            entry, SystemConfig::withDx100(), "dx100", opt);

        const double bwR = dx.bandwidthUtil /
                           std::max(base.bandwidthUtil, 1e-9);
        const double rbhR = dx.rowBufferHitRate /
                            std::max(base.rowBufferHitRate, 1e-9);
        const double occR = dx.requestBufferOccupancy /
                            std::max(base.requestBufferOccupancy,
                                     1e-9);
        bwRatios.push_back(bwR);
        rbhRatios.push_back(rbhR);
        occRatios.push_back(occR);

        std::printf("%-8s | %6.3f %6.3f %5.1fx | %6.3f %6.3f %5.1fx |"
                    " %7.4f %7.4f %5.1fx\n",
                    entry.name.c_str(), base.bandwidthUtil,
                    dx.bandwidthUtil, bwR, base.rowBufferHitRate,
                    dx.rowBufferHitRate, rbhR,
                    base.requestBufferOccupancy,
                    dx.requestBufferOccupancy, occR);
    }
    std::printf("%-8s | %13s %5.1fx | %13s %5.1fx | %15s %5.1fx\n",
                "mean", "(paper 3.9x)", geomean(bwRatios),
                "(paper 2.7x)", geomean(rbhRatios), "(paper 12.1x)",
                geomean(occRatios));
    return 0;
}

/**
 * @file
 * Full-system assembly: cores + private L1/L2 + shared inclusive LLC +
 * DRAM, optionally with DX100 instance(s) and/or the DMP indirect
 * prefetcher. Defaults follow paper Table 3.
 */

#ifndef DX_SIM_SYSTEM_HH
#define DX_SIM_SYSTEM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_port.hh"
#include "common/sim_memory.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "dx100/dx100.hh"
#include "mem/dram_system.hh"
#include "prefetch/indirect_prefetcher.hh"
#include "runtime/dx100_api.hh"
#include "sim/component.hh"
#include "sim/stat_registry.hh"

namespace dx::sim
{

/**
 * How System::run advances simulated time (see DESIGN.md):
 *  - kNaive ticks every component every cycle (the reference loop);
 *  - kQuiescent skips components whose quiescent()/nextEventAt()
 *    contract proves the tick a no-op, and fast-forwards globally
 *    quiescent stretches in one closed-form step. Bit-identical stats.
 *  - kAuto resolves to kNaive when the DX_NAIVE_TICK=1 environment
 *    escape hatch is set, else kQuiescent.
 */
enum class TickPolicy
{
    kAuto,
    kQuiescent,
    kNaive,
};

struct SystemConfig
{
    unsigned cores = 4;
    cpu::Core::Config core;

    cache::Cache::Config l1;
    cache::Cache::Config l2;
    cache::Cache::Config llc;
    bool stridePrefetchers = true;

    mem::DramSystem::Config dram;

    /** Number of DX100 instances (0 = baseline system). */
    unsigned dx100Instances = 0;
    dx100::Dx100Config dx;

    /** Attach a DMP-style indirect prefetcher at each core's L2. */
    bool dmp = false;
    prefetch::IndirectPrefetcher::Config dmpCfg;

    /** Scheduler for System::run (tests pin it; benches use kAuto). */
    TickPolicy tickPolicy = TickPolicy::kAuto;

    SystemConfig();

    /**
     * Check the configuration for the mistakes a wrong experiment
     * script actually makes, with actionable messages: zero cores,
     * cache geometries whose set count is not a power of two,
     * accelerator-vs-DMP conflicts, zero-width core structures,
     * non-power-of-two channel counts. dx_fatal on the first problem
     * found. Called by System's constructor (via TopologyBuilder) and
     * by RunMatrix::addConfig, so every bench validates up front.
     */
    void validate() const;

    /** Baseline (Table 3): 10 MB LLC, no accelerator. */
    static SystemConfig baseline(unsigned cores = 4);

    /** DX100 system (Table 3): 8 MB LLC + accelerator(s). */
    static SystemConfig withDx100(unsigned cores = 4,
                                  unsigned instances = 1);

    /** Baseline plus the DMP indirect prefetcher. */
    static SystemConfig withDmp(unsigned cores = 4);
};

/**
 * The RunStats schema, defined exactly once. X(field, type) is expanded
 * to declare the struct fields, the field visitors, serializeStats,
 * parseStats, toString and the JSON emitter — adding a stat is a
 * one-line change here and every producer/consumer picks it up.
 *
 *   cycles                  region-of-interest cycles
 *   instructions            committed, all cores
 *   ipc                     instructions / cycles
 *   bandwidthUtil           DRAM data-bus utilization
 *   rowBufferHitRate        DRAM row-buffer hit fraction
 *   requestBufferOccupancy  mean controller queue occupancy
 *   dramLines               cache lines moved to/from DRAM
 *   llcMpki                 LLC demand misses / kilo-instruction
 *   l2Mpki                  L2 demand misses / kilo-instruction
 *   coalescingFactor        DX100 words per DRAM column access
 *   dxInstructions          DX100 instructions retired
 */
#define DX_RUN_STATS_SCHEMA(X) \
    X(cycles, Cycle) \
    X(instructions, std::uint64_t) \
    X(ipc, double) \
    X(bandwidthUtil, double) \
    X(rowBufferHitRate, double) \
    X(requestBufferOccupancy, double) \
    X(dramLines, std::uint64_t) \
    X(llcMpki, double) \
    X(l2Mpki, double) \
    X(coalescingFactor, double) \
    X(dxInstructions, std::uint64_t)

/** Flat summary of a finished run (feeds EXPERIMENTS.md tables). */
struct RunStats
{
#define DX_STAT_FIELD(name, type) type name = {};
    DX_RUN_STATS_SCHEMA(DX_STAT_FIELD)
#undef DX_STAT_FIELD

    /** Number of fields in the schema. */
    static constexpr std::size_t
    fieldCount()
    {
#define DX_STAT_COUNT(name, type) +1
        return std::size_t{0} DX_RUN_STATS_SCHEMA(DX_STAT_COUNT);
#undef DX_STAT_COUNT
    }

    /** Visit every (name, value) pair in schema order. */
    template <typename F>
    void
    forEachField(F &&f) const
    {
#define DX_STAT_VISIT(name, type) f(#name, name);
        DX_RUN_STATS_SCHEMA(DX_STAT_VISIT)
#undef DX_STAT_VISIT
    }

    /**
     * Assign the field called @p name from @p value (cast to the
     * field's declared type). Returns false for unknown names.
     */
    bool setField(const std::string &name, double value);

    /** True when every schema field compares exactly equal. */
    bool operator==(const RunStats &o) const;

    std::string toString() const;
};

class System final : public Component
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System() override;

    SimMemory &memory() { return mem_; }
    SimAllocator &allocator() { return alloc_; }

    unsigned cores() const { return cfg_.cores; }
    cpu::Core &core(unsigned i) { return *cores_[i]; }
    cache::Cache &l1(unsigned i) { return *l1s_[i]; }
    cache::Cache &l2(unsigned i) { return *l2s_[i]; }
    cache::Cache &llc() { return *llc_; }
    mem::DramSystem &dram() { return *dram_; }

    /** DX100 instance serving core @p coreId (core multiplexing). */
    dx100::Dx100 *dx100For(unsigned coreId);
    dx100::Dx100 *dx100(unsigned instance = 0);
    runtime::Dx100Runtime *runtime(unsigned instance = 0);
    runtime::Dx100Runtime *runtimeFor(unsigned coreId);

    void setKernel(unsigned coreId, cpu::Kernel *kernel);

    /**
     * Warm the LLC with a region that is architecturally resident when
     * the region of interest starts (e.g. a vector the cores produced
     * in the previous solver iteration). Stops at LLC capacity.
     */
    void warmLlc(Addr base, Addr size);

    /** Tick every component once (the naive reference scheduler). */
    void tick() override;

    /**
     * Advance one cycle, replacing each provably no-op component tick
     * with its closed-form skipCycles(1). Identical observable state
     * and stats to tick() — the test_tick_equivalence /
     * test_quiescence_property harnesses enforce this bit-for-bit.
     *
     * Returns 0 when some component had to run, else the earliest
     * nextEventAt() across all components. In the latter case every
     * skip this cycle was side-effect-free, so the per-slot hints
     * double as a proven fast-forward horizon (same soundness argument
     * as quiescentHorizon(), without a second predicate sweep): run()
     * may skipTo(min(returned - 1, limit)) immediately.
     */
    Cycle tickScheduled();

    /**
     * If *every* component is quiescent, the earliest cycle any of
     * them could act (conservative; kNeverCycle when none has a timed
     * event); 0 when some component is active. Fast-forward is sound
     * only in the first case: while all components are quiescent no
     * cross-component callbacks occur, so no event can move earlier.
     */
    Cycle quiescentHorizon() const;

    /**
     * Closed-form advance of every component (and the global clock)
     * to cycle @p target. Caller must have proven quiescence through
     * @p target via quiescentHorizon().
     */
    void skipTo(Cycle target);

    /**
     * All cores done and the whole memory system drained — including
     * prefetcher queues, so a run cannot terminate with requests or
     * prefetch candidates still in flight.
     */
    bool drained() const override;

    /** True when run() uses the naive scheduler (policy + env). */
    bool naiveTick() const { return naiveTick_; }

    /** Current global cycle. */
    Cycle now() const { return now_; }

    // Component contract for the root: the whole-system predicates are
    // the aggregates the run loop already computes.
    bool quiescent() const override { return quiescentHorizon() != 0; }
    Cycle nextEventAt() const override { return quiescentHorizon(); }
    void skipCycles(Cycle n) override { skipTo(now_ + n); }
    Cycle localNow() const override { return now_; }
    void registerStats(StatRegistry &reg) const override;

    /** Run until all cores are done and the memory system drains. */
    RunStats run(Cycle maxCycles = Cycle{4} << 30);

    /**
     * Collect statistics without running further: a pure projection of
     * the hierarchical registry onto the flat RunStats schema.
     */
    RunStats collectStats() const;

    /**
     * The hierarchical per-component statistics, keyed by dotted
     * component path ("system.core0.l1d.demandMisses"). Built once in
     * the constructor from the component tree; entries reference the
     * live counters, so reads always observe current values. Dump as
     * nested JSON with statRegistry().writeJsonFile(...) — every bench
     * does when DX_STATS_JSON=<path> is set.
     */
    StatRegistry &statRegistry() { return statReg_; }
    const StatRegistry &statRegistry() const { return statReg_; }

    const SystemConfig &config() const { return cfg_; }

    /**
     * Number of System instances currently alive in the process.
     *
     * A System owns every component it ticks (memory, caches, cores,
     * DRAM, DX100 instances); this counter is the *only* mutable state
     * shared across instances, which is what makes independent Systems
     * safe to run on concurrent threads (see sim/parallel_runner.hh).
     * The constructor asserts that invariant where it can be checked.
     */
    static unsigned liveSystems();

  private:
    SystemConfig cfg_;
    const bool naiveTick_;
    SimMemory mem_;
    SimAllocator alloc_;

    std::unique_ptr<mem::DramSystem> dram_;
    std::unique_ptr<cache::DramPort> dramPort_;
    std::unique_ptr<cache::RangeRouter> router_;
    std::unique_ptr<cache::Cache> llc_;
    std::vector<std::unique_ptr<cache::Cache>> l2s_;
    std::vector<std::unique_ptr<cache::Cache>> l1s_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<dx100::Dx100>> dxs_;
    std::vector<std::unique_ptr<runtime::Dx100Runtime>> runtimes_;
    std::unique_ptr<dx100::RegionDirectory> regionDir_;

    StatRegistry statReg_;
    Cycle now_ = 0;
};

} // namespace dx::sim

#endif // DX_SIM_SYSTEM_HH

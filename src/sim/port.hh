/**
 * @file
 * The unified port layer: every request/response link between
 * components is an instantiation of the two templates below.
 *
 *  - RequestPort<Req> is the admission-gated request side. The cache
 *    hierarchy's CachePort, the DRAM adapter, the range router and
 *    DX100's scratchpad port are all RequestPort<cache::CacheReq>.
 *  - Completion<Payload> is the response side. Cache fill callbacks
 *    (Completion<std::uint64_t>, the requester-defined cookie) and
 *    DRAM completions (Completion<mem::MemRequest>) are the two
 *    instantiations; there is deliberately no third.
 *  - SnoopPort is the residency/invalidation interface DX100's
 *    coherency agent uses against the (inclusive) cache hierarchy.
 *  - PortSlot<Req> is the wiring end: a named, bind-exactly-once
 *    holder components expose through Component::portRefs() so the
 *    topology tests can audit connectivity.
 *
 * Domain-specific names (cache::CachePort, cache::CacheRespSink,
 * mem::MemRespSink) survive as thin aliases of these templates.
 */

#ifndef DX_SIM_PORT_HH
#define DX_SIM_PORT_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace dx
{

/** popCount() value for ports that do not track departures. */
inline constexpr std::uint64_t kPortPopsUnknown = ~std::uint64_t{0};

/** Receives typed completions (the response half of every link). */
template <typename Payload>
class Completion
{
  public:
    virtual ~Completion() = default;
    virtual void complete(const Payload &p) = 0;
};

/** Anything a component can send typed requests to. */
template <typename Req>
class RequestPort
{
  public:
    virtual ~RequestPort() = default;
    virtual bool canAccept() const = 0;

    /**
     * Monotonic count of departures from whatever resource gates
     * admission here (queue pops, command issues). Arrivals never free
     * space, so a waiter that found the port full may cache that
     * verdict and re-probe only when the count moves instead of every
     * cycle — the scheduler's cheap alternative to per-cycle polling.
     * Ports that do not track departures return kPortPopsUnknown,
     * which waiters must treat as "never cache".
     */
    virtual std::uint64_t popCount() const { return kPortPopsUnknown; }

    /**
     * Stable address of the counter popCount() reads, for waiters that
     * probe it every cycle (the quiescence fast paths): one load
     * instead of a virtual call. Null when the count is aggregated or
     * untracked — callers must then fall back to popCount(). The
     * address must stay valid and live-updating for the port's
     * lifetime.
     */
    virtual const std::uint64_t *popCountAddr() const { return nullptr; }

    /**
     * Request-specific admission: ports that multiplex resources by
     * address (the DRAM adapter's per-channel queues) override this so
     * one busy resource does not starve traffic headed elsewhere.
     */
    virtual bool
    canAcceptReq(const Req &req) const
    {
        (void)req;
        return canAccept();
    }

    virtual void request(const Req &req) = 0;
};

/**
 * Residency snoops and invalidations against a cache level. The LLC is
 * the inclusive root, so snooping it answers "cached anywhere?" for
 * DX100's H bit (§3.6).
 */
class SnoopPort
{
  public:
    virtual ~SnoopPort() = default;

    /** Line present (or being filled) at this level? */
    virtual bool containsLine(Addr line) const = 0;

    /** Drop a line if present; returns true if it was dirty. */
    virtual bool invalidateLine(Addr line) = 0;
};

/**
 * A named request-port binding owned by the client component.
 * bind() must be called at most once — double wiring is a topology
 * bug — and Component::portRefs() reports (name, bound) so the
 * connectivity audit can prove every slot was wired exactly once.
 */
template <typename Req>
class PortSlot
{
  public:
    explicit PortSlot(const char *name) : name_(name) {}

    void
    bind(RequestPort<Req> &port)
    {
        dx_assert(port_ == nullptr,
                  "port slot ", name_, " already bound");
        port_ = &port;
    }

    bool bound() const { return port_ != nullptr; }
    const char *name() const { return name_; }

    /** Raw access; never null-checked on the hot path. */
    RequestPort<Req> *operator->() const { return port_; }
    RequestPort<Req> *get() const { return port_; }
    explicit operator bool() const { return port_ != nullptr; }

  private:
    const char *name_;
    RequestPort<Req> *port_ = nullptr;
};

} // namespace dx

#endif // DX_SIM_PORT_HH

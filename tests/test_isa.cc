/**
 * @file
 * ISA tests: 192-bit encode/decode round-trips, stream scalar packing,
 * and typed ALU operation semantics.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "dx100/functional.hh"
#include "dx100/isa.hh"

using namespace dx;
using namespace dx::dx100;

namespace
{

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

} // namespace

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 17);
    for (int trial = 0; trial < 200; ++trial) {
        Instruction in;
        in.op = GetParam();
        in.dtype = static_cast<DataType>(rng.below(6));
        in.aluOp = static_cast<AluOp>(rng.below(16));
        in.td = static_cast<std::uint8_t>(rng.below(64));
        in.td2 = static_cast<std::uint8_t>(rng.below(64));
        in.ts1 = static_cast<std::uint8_t>(rng.below(64));
        in.ts2 = static_cast<std::uint8_t>(rng.below(64));
        in.tc = static_cast<std::uint8_t>(rng.below(64));
        in.rs1 = static_cast<std::uint8_t>(rng.below(64));
        in.rs2 = static_cast<std::uint8_t>(rng.below(64));
        in.rs3 = static_cast<std::uint8_t>(rng.below(64));
        in.base = rng.next();
        in.imm = rng.next();

        const Instruction out = decode(encode(in));
        EXPECT_EQ(in, out);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Values(Opcode::kIld, Opcode::kIst,
                                           Opcode::kIrmw, Opcode::kSld,
                                           Opcode::kSst, Opcode::kAluv,
                                           Opcode::kAlus, Opcode::kRng));

TEST(StreamScalars, PackUnpackRoundTrip)
{
    for (std::int32_t stride : {-2048, -7, -1, 1, 2, 17, 2047}) {
        for (std::uint64_t start : {0ull, 1ull, 123456ull,
                                    0xffffffffull}) {
            for (std::uint32_t count : {0u, 1u, 16384u, (1u << 20) - 1}) {
                const StreamScalars in{start, count, stride};
                const StreamScalars out = unpackStream(packStream(in));
                EXPECT_EQ(out.start, start);
                EXPECT_EQ(out.count, count);
                EXPECT_EQ(out.stride, stride);
            }
        }
    }
}

TEST(AluOps, IntegerArithmetic)
{
    using DT = DataType;
    EXPECT_EQ(applyAluOp(AluOp::kAdd, DT::kU32, 7, 8), 15u);
    EXPECT_EQ(applyAluOp(AluOp::kSub, DT::kU32, 3, 5),
              0xfffffffeull); // wraps in 32 bits
    EXPECT_EQ(applyAluOp(AluOp::kMul, DT::kU64, 1ull << 32, 4),
              1ull << 34);
    EXPECT_EQ(applyAluOp(AluOp::kAnd, DT::kU32, 0xff00ff00, 0x0ff00ff0),
              0x0f000f00u);
    EXPECT_EQ(applyAluOp(AluOp::kOr, DT::kU32, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(applyAluOp(AluOp::kXor, DT::kU32, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(applyAluOp(AluOp::kShr, DT::kU32, 0x100, 4), 0x10u);
    EXPECT_EQ(applyAluOp(AluOp::kShl, DT::kU32, 0x10, 4), 0x100u);
}

TEST(AluOps, SignedSemantics)
{
    using DT = DataType;
    const auto minusOne = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(-1));
    EXPECT_EQ(applyAluOp(AluOp::kLt, DT::kI32, minusOne, 1), 1u);
    EXPECT_EQ(applyAluOp(AluOp::kLt, DT::kU32, minusOne, 1), 0u);
    EXPECT_EQ(applyAluOp(AluOp::kMin, DT::kI32, minusOne, 1), minusOne);
    EXPECT_EQ(applyAluOp(AluOp::kMax, DT::kI32, minusOne, 1), 1u);
}

TEST(AluOps, FloatSemantics)
{
    const auto f = [](float v) {
        return static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(v));
    };
    const auto d = [](double v) {
        return std::bit_cast<std::uint64_t>(v);
    };

    EXPECT_EQ(applyAluOp(AluOp::kAdd, DataType::kF32, f(1.5f), f(2.25f)),
              f(3.75f));
    EXPECT_EQ(applyAluOp(AluOp::kMul, DataType::kF64, d(3.0), d(0.5)),
              d(1.5));
    EXPECT_EQ(applyAluOp(AluOp::kGe, DataType::kF64, d(2.0), d(2.0)),
              1u);
    EXPECT_EQ(applyAluOp(AluOp::kLt, DataType::kF32, f(-1.0f), f(0.0f)),
              1u);
    EXPECT_EQ(applyAluOp(AluOp::kMax, DataType::kF64, d(-4.0), d(2.0)),
              d(2.0));
}

TEST(AluOps, ComparisonsReturnBooleanLanes)
{
    for (auto op : {AluOp::kLt, AluOp::kLe, AluOp::kGt, AluOp::kGe,
                    AluOp::kEq}) {
        const std::uint64_t r = applyAluOp(op, DataType::kU64, 5, 5);
        EXPECT_TRUE(r == 0 || r == 1);
    }
    EXPECT_EQ(applyAluOp(AluOp::kEq, DataType::kU64, 5, 5), 1u);
    EXPECT_EQ(applyAluOp(AluOp::kLe, DataType::kU64, 5, 5), 1u);
    EXPECT_EQ(applyAluOp(AluOp::kGt, DataType::kU64, 5, 5), 0u);
}

TEST(Isa, RmwSupportsOnlyCommutativeAssociativeOps)
{
    EXPECT_TRUE(rmwSupported(AluOp::kAdd));
    EXPECT_TRUE(rmwSupported(AluOp::kMin));
    EXPECT_TRUE(rmwSupported(AluOp::kMax));
    EXPECT_TRUE(rmwSupported(AluOp::kAnd));
    EXPECT_TRUE(rmwSupported(AluOp::kOr));
    EXPECT_TRUE(rmwSupported(AluOp::kXor));
    EXPECT_FALSE(rmwSupported(AluOp::kSub));
    EXPECT_FALSE(rmwSupported(AluOp::kShl));
    EXPECT_FALSE(rmwSupported(AluOp::kMul)); // overflow reorder hazards
                                             // aside, paper lists
                                             // ADD/MIN/MAX-style updates
}

TEST(Isa, ElementSizes)
{
    EXPECT_EQ(elemSize(DataType::kU32), 4u);
    EXPECT_EQ(elemSize(DataType::kI32), 4u);
    EXPECT_EQ(elemSize(DataType::kF32), 4u);
    EXPECT_EQ(elemSize(DataType::kU64), 8u);
    EXPECT_EQ(elemSize(DataType::kI64), 8u);
    EXPECT_EQ(elemSize(DataType::kF64), 8u);
}

TEST(Isa, ToStringIsStable)
{
    Instruction in;
    in.op = Opcode::kIrmw;
    in.dtype = DataType::kF64;
    in.aluOp = AluOp::kAdd;
    in.ts1 = 3;
    in.ts2 = 4;
    const std::string s = in.toString();
    EXPECT_NE(s.find("IRMW"), std::string::npos);
    EXPECT_NE(s.find("f64"), std::string::npos);
    EXPECT_NE(s.find("add"), std::string::npos);
}

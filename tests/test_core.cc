/**
 * @file
 * Out-of-order core tests: dependency ordering, structural limits,
 * store drain, RMW serialization, and memory-level parallelism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_port.hh"
#include "cpu/core.hh"
#include "mem/dram_system.hh"

using namespace dx;
using namespace dx::cpu;

namespace
{

/** Kernel built from a pre-recorded list of emitter actions. */
class ScriptKernel : public Kernel
{
  public:
    using Step = std::function<void(OpEmitter &)>;

    void add(Step s) { steps_.push_back(std::move(s)); }

    bool more() const override { return next_ < steps_.size(); }

    void
    emitChunk(OpEmitter &e) override
    {
        steps_[next_++](e);
    }

  private:
    std::vector<Step> steps_;
    std::size_t next_ = 0;
};

struct CoreRig
{
    mem::DramSystem dram;
    cache::DramPort port;
    cache::Cache llc;
    cache::Cache l2;
    cache::Cache l1;
    Core core;
    ScriptKernel kernel;

    CoreRig()
        : dram(dramCfg()), port(dram), llc(llcCfg(), &port),
          l2(l2Cfg(), &llc), l1(l1Cfg(), &l2),
          core(Core::Config{}, 0, &l1)
    {
        llc.addChild(&l1);
        llc.addChild(&l2);
        core.setKernel(&kernel);
    }

    static mem::DramSystem::Config
    dramCfg()
    {
        mem::DramSystem::Config c;
        c.ctrl.timings.refreshEnabled = false;
        return c;
    }

    static cache::Cache::Config
    l1Cfg()
    {
        cache::Cache::Config c;
        c.name = "L1";
        c.sizeBytes = 32 * 1024;
        c.assoc = 8;
        c.latency = 4;
        c.mshrs = 16;
        return c;
    }

    static cache::Cache::Config
    l2Cfg()
    {
        cache::Cache::Config c;
        c.name = "L2";
        c.sizeBytes = 256 * 1024;
        c.assoc = 4;
        c.latency = 12;
        c.mshrs = 32;
        c.queueSize = 32;
        return c;
    }

    static cache::Cache::Config
    llcCfg()
    {
        cache::Cache::Config c;
        c.name = "LLC";
        c.sizeBytes = 10 * 1024 * 1024;
        c.assoc = 20;
        c.latency = 42;
        c.mshrs = 256;
        c.queueSize = 64;
        c.inclusiveRoot = true;
        return c;
    }

    /** Run until the core reports done; returns elapsed cycles. */
    Cycle
    run(Cycle limit = 1'000'000)
    {
        Cycle cycles = 0;
        while (!core.done() && cycles < limit) {
            core.tick();
            l1.tick();
            l2.tick();
            llc.tick();
            dram.tick();
            ++cycles;
        }
        EXPECT_TRUE(core.done()) << "core did not finish";
        return cycles;
    }
};

} // namespace

TEST(Core, ExecutesAluChain)
{
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        SeqNum a = e.intOp();
        SeqNum b = e.intOp(1, a);
        SeqNum c = e.intOp(1, b);
        e.intOp(1, c);
    });
    rig.run();
    EXPECT_EQ(rig.core.stats().committedOps.value(), 4u);
}

TEST(Core, IndependentOpsRunWiderThanChains)
{
    // 512 dependent ops vs 512 independent ops: the chain is bound by
    // latency (>= 512 cycles), the independent set by width (~64).
    CoreRig chainRig;
    chainRig.kernel.add([](OpEmitter &e) {
        SeqNum prev = e.intOp();
        for (int i = 0; i < 511; ++i)
            prev = e.intOp(1, prev);
    });
    const Cycle chain = chainRig.run();

    CoreRig wideRig;
    wideRig.kernel.add([](OpEmitter &e) {
        for (int i = 0; i < 512; ++i)
            e.intOp();
    });
    const Cycle wide = wideRig.run();

    EXPECT_GT(chain, 500u);
    EXPECT_LT(wide, 200u);
}

TEST(Core, LoadMissesOverlapForMlp)
{
    // 16 independent loads to distinct lines vs 16 dependent loads.
    CoreRig indep;
    indep.kernel.add([](OpEmitter &e) {
        for (int i = 0; i < 16; ++i)
            e.load(Addr(i) * 4096, 8, 1);
    });
    const Cycle parallelTime = indep.run();

    CoreRig chain;
    chain.kernel.add([](OpEmitter &e) {
        SeqNum prev = e.load(0, 8, 1);
        for (int i = 1; i < 16; ++i)
            prev = e.load(Addr(i) * 4096, 8, 1, 0, prev);
    });
    const Cycle serialTime = chain.run();

    // Dependent misses serialize on full memory latency.
    EXPECT_GT(static_cast<double>(serialTime) / parallelTime, 4.0);
}

TEST(Core, CommittedCountsByKind)
{
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        SeqNum v = e.load(0x100, 4, 1);
        e.store(0x200, 4, 2, v);
        e.rmw(0x300, 4, 3, v);
        e.intOp(1, v);
    });
    rig.run();
    const auto &s = rig.core.stats();
    EXPECT_EQ(s.committedOps.value(), 4u);
    EXPECT_EQ(s.committedLoads.value(), 1u);
    EXPECT_EQ(s.committedStores.value(), 1u);
    EXPECT_EQ(s.committedRmws.value(), 1u);
}

TEST(Core, AtomicRmwsSerializeAgainstLoads)
{
    // A stream of independent (load, RMW) pairs: the locked RMWs issue
    // only at the ROB head with drained stores, killing MLP relative to
    // plain stores.
    auto build = [](CoreRig &rig, bool atomic) {
        for (int i = 0; i < 64; ++i) {
            rig.kernel.add([i, atomic](OpEmitter &e) {
                SeqNum v = e.load(Addr(0x100000) + Addr(i) * 4096, 4, 1);
                if (atomic)
                    e.rmw(Addr(0x800000) + Addr(i) * 4096, 4, 2, v);
                else
                    e.store(Addr(0x800000) + Addr(i) * 4096, 4, 2, v);
            });
        }
    };

    CoreRig atomicRig;
    build(atomicRig, true);
    const Cycle atomicTime = atomicRig.run();

    CoreRig plainRig;
    build(plainRig, false);
    const Cycle plainTime = plainRig.run();

    EXPECT_GT(static_cast<double>(atomicTime) / plainTime, 2.0);
}

TEST(Core, StoresDrainToMemoryAfterCommit)
{
    CoreRig rig;
    for (int i = 0; i < 8; ++i) {
        rig.kernel.add([i](OpEmitter &e) {
            e.store(Addr(i) * 4096, 8, 5);
        });
    }
    rig.run();
    // All stores reached the L1 (demand accesses there).
    EXPECT_EQ(rig.core.stats().committedStores.value(), 8u);
    EXPECT_EQ(rig.l1.stats().demandAccesses.value(), 8u);
}

TEST(Core, FenceOrdersMemoryOps)
{
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        e.load(0x1000, 8, 1);
        e.fence();
        e.load(0x2000, 8, 1);
    });
    rig.run();
    EXPECT_EQ(rig.core.stats().committedOps.value(), 3u);
}

TEST(Core, RobLimitsRunahead)
{
    // A long-latency load at the head plus >224 younger ALU ops: the
    // ROB must fill and stall dispatch.
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        e.load(0x123400, 8, 1);
        for (int i = 0; i < 400; ++i)
            e.intOp();
    });
    rig.run();
    EXPECT_GT(rig.core.stats().robStallCycles.value(), 0u);
}

TEST(Core, LoadQueueLimitsOutstandingLoads)
{
    // More independent long-latency loads than LQ entries: dispatch
    // must stall on the LQ, and the stall counter must say so.
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        for (int i = 0; i < 200; ++i)
            e.load(Addr(0x200000) + Addr(i) * 4096, 8, 1);
    });
    rig.run();
    EXPECT_GT(rig.core.stats().lqStallCycles.value(), 0u);
}

TEST(Core, StoreQueueLimitsOutstandingStores)
{
    CoreRig rig;
    rig.kernel.add([](OpEmitter &e) {
        for (int i = 0; i < 200; ++i)
            e.store(Addr(0x400000) + Addr(i) * 4096, 8, 2);
    });
    rig.run();
    EXPECT_GT(rig.core.stats().sqStallCycles.value(), 0u);
    EXPECT_EQ(rig.core.stats().committedStores.value(), 200u);
}

TEST(Core, MmioStoresArriveInProgramOrder)
{
    // The DX100 doorbell protocol depends on per-core MMIO ordering.
    struct OrderedDevice : public MmioDevice
    {
        std::vector<std::uint64_t> seen;
        void
        mmioWrite(Addr, std::uint64_t data, int) override
        {
            seen.push_back(data);
        }
        bool mmioReady(std::uint64_t, int) override { return true; }
    } dev;

    CoreRig rig;
    rig.core.setMmioDevice(&dev);
    rig.kernel.add([](OpEmitter &e) {
        for (std::uint64_t k = 0; k < 24; ++k)
            e.mmioStore(Addr{0x1000} + (k % 3) * 8, k);
    });
    rig.run();
    ASSERT_EQ(dev.seen.size(), 24u);
    for (std::uint64_t k = 0; k < 24; ++k)
        EXPECT_EQ(dev.seen[k], k);
}

TEST(Core, WaitOpBlocksUntilDeviceReady)
{
    struct CountdownDevice : public MmioDevice
    {
        int polls = 0;
        void mmioWrite(Addr, std::uint64_t, int) override {}
        bool
        mmioReady(std::uint64_t, int) override
        {
            return ++polls >= 4;
        }
    } dev;

    CoreRig rig;
    rig.core.setMmioDevice(&dev);
    rig.kernel.add([](OpEmitter &e) { e.dxWait(1); });
    const Cycle cycles = rig.run();

    EXPECT_EQ(dev.polls, 4);
    // Three failed polls at the poll interval dominate the runtime.
    EXPECT_GE(cycles, 3 * Core::Config{}.pollInterval);
    EXPECT_GT(rig.core.stats().waitCycles.value(), 0u);
    // Spin-loop instructions were charged.
    EXPECT_GE(rig.core.stats().committedOps.value(),
              1 + 4 * Core::Config{}.pollInstrCost);
}

TEST(Core, SecondPassHitsInCache)
{
    CoreRig rig;
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 32; ++i) {
            rig.kernel.add([i](OpEmitter &e) {
                e.load(Addr(i) * kLineBytes, 8, 7);
            });
        }
        if (pass == 0) {
            // Separate the passes so the second one actually re-visits
            // installed lines instead of coalescing into live MSHRs.
            rig.kernel.add([](OpEmitter &e) { e.fence(); });
        }
    }
    rig.run();
    EXPECT_GE(rig.l1.stats().demandHits.value(), 32u);
    EXPECT_LE(rig.l1.stats().demandMisses.value(), 40u);
}

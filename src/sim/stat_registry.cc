#include "sim/stat_registry.hh"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace dx
{

namespace
{

/**
 * Tree view of the dotted paths, preserving registration order within
 * each group. A name is either a group or a leaf, never both —
 * registering "a.b" and "a.b.c" is a naming bug.
 */
struct JsonNode
{
    std::vector<std::pair<std::string, JsonNode>> children;
    bool isLeaf = false;
    std::size_t entryIndex = 0;

    JsonNode &
    child(const std::string &name)
    {
        for (auto &kv : children) {
            if (kv.first == name)
                return kv.second;
        }
        children.emplace_back(name, JsonNode{});
        return children.back().second;
    }
};

} // namespace

bool
StatRegistry::has(const std::string &path) const
{
    return index_.count(path) > 0;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first);
    return out;
}

const StatRegistry::Entry &
StatRegistry::find(const std::string &path) const
{
    const auto it = index_.find(path);
    if (it == index_.end())
        dx_fatal("unknown stat path ", path);
    return entries_[it->second].second;
}

std::uint64_t
StatRegistry::intValue(const std::string &path) const
{
    const Entry &e = find(path);
    switch (e.kind) {
      case Entry::Kind::kCounter:
        return e.counter->value();
      case Entry::Kind::kUint:
        return *e.uintPtr;
      case Entry::Kind::kUintFn:
        return e.uintFn();
      case Entry::Kind::kGauge:
        break;
    }
    dx_fatal("stat ", path, " is a gauge; use value()");
    return 0;
}

double
StatRegistry::value(const std::string &path) const
{
    const Entry &e = find(path);
    if (e.kind == Entry::Kind::kGauge)
        return e.gauge();
    return static_cast<double>(intValue(path));
}

void
StatRegistry::addCounter(std::string path, const Counter *c)
{
    Entry e;
    e.kind = Entry::Kind::kCounter;
    e.counter = c;
    addEntry(std::move(path), std::move(e));
}

void
StatRegistry::addUint(std::string path, const std::uint64_t *v)
{
    Entry e;
    e.kind = Entry::Kind::kUint;
    e.uintPtr = v;
    addEntry(std::move(path), std::move(e));
}

void
StatRegistry::addUintFn(std::string path,
                        std::function<std::uint64_t()> f)
{
    Entry e;
    e.kind = Entry::Kind::kUintFn;
    e.uintFn = std::move(f);
    addEntry(std::move(path), std::move(e));
}

void
StatRegistry::addGauge(std::string path, std::function<double()> f)
{
    Entry e;
    e.kind = Entry::Kind::kGauge;
    e.gauge = std::move(f);
    addEntry(std::move(path), std::move(e));
}

void
StatRegistry::addEntry(std::string path, Entry e)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        dx_fatal("malformed stat path '", path, "'");
    if (index_.count(path))
        dx_fatal("duplicate stat path ", path);
    index_.emplace(path, entries_.size());
    entries_.emplace_back(std::move(path), std::move(e));
}

std::string
StatRegistry::toJson() const
{
    // Group the flat registration order into a tree.
    JsonNode root;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const std::string &path = entries_[i].first;
        JsonNode *node = &root;
        std::size_t start = 0;
        while (true) {
            const std::size_t dot = path.find('.', start);
            const std::string seg =
                path.substr(start, dot == std::string::npos
                                       ? std::string::npos
                                       : dot - start);
            node = &node->child(seg);
            if (node->isLeaf)
                dx_fatal("stat path ", path,
                         " nests under a leaf entry");
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        if (!node->children.empty())
            dx_fatal("stat path ", path, " is both a leaf and a group");
        node->isLeaf = true;
        node->entryIndex = i;
    }

    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);

    const auto emit = [&](const JsonNode &node, unsigned depth,
                          const auto &self) -> void {
        os << "{\n";
        const std::string pad((depth + 1) * 2, ' ');
        bool first = true;
        for (const auto &kv : node.children) {
            os << (first ? "" : ",\n") << pad << "\"" << kv.first
               << "\": ";
            first = false;
            if (kv.second.isLeaf) {
                const Entry &e = entries_[kv.second.entryIndex].second;
                if (e.kind == Entry::Kind::kGauge)
                    os << e.gauge();
                else
                    os << intValue(entries_[kv.second.entryIndex].first);
            } else {
                self(kv.second, depth + 1, self);
            }
        }
        os << "\n" << std::string(depth * 2, ' ') << "}";
    };
    emit(root, 0, emit);
    os << "\n";
    return os.str();
}

void
StatRegistry::writeJsonFile(const std::string &file) const
{
    // Unique temp name per write: parallel bench jobs may share one
    // DX_STATS_JSON target, and a torn file is worse than a lost race.
    static std::atomic<std::uint64_t> serial{0};
    const std::filesystem::path target(file);
    std::filesystem::path tmp = target;
    tmp += ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(serial.fetch_add(1));

    {
        std::ofstream out(tmp);
        if (!out) {
            dx_warn("cannot write stats JSON to ", tmp.string());
            return;
        }
        out << toJson();
    }

    std::error_code ec;
    std::filesystem::rename(tmp, target, ec);
    if (ec) {
        dx_warn("cannot rename ", tmp.string(), " to ", file, ": ",
                ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace dx

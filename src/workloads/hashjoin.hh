/**
 * @file
 * Hash-Join kernels (paper §5): the histogram-based parallel radix
 * partitioning (PRH) and the bucket-chaining probe (PRO).
 */

#ifndef DX_WORKLOADS_HASHJOIN_HH
#define DX_WORKLOADS_HASHJOIN_HH

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

/**
 * PRH: radix partitioning with a per-core histogram. The core computes
 * partition cursors (hot, cache-resident); the scattered tuple store
 * out[B[f(C[i])] + cursor] is the memory-bound indirect pattern that
 * DX100 offloads (ST A[B[f(C[i])]], f = (C[i] & mask) >> shift).
 */
class RadixPartition : public Workload
{
  public:
    explicit RadixPartition(Scale s);

    std::string name() const override { return "PRH"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

    static constexpr unsigned kRadixBits = 15;
    static constexpr unsigned kShift = 8;

  private:
    std::size_t n_;
    std::vector<std::uint32_t> keys_;
    Addr c_ = 0, out_ = 0, dests_ = 0;
    std::vector<std::vector<std::uint32_t>> coreBase_; //!< per core
};

/**
 * PRO: bucket-chaining probe. Chains are built on the host (the build
 * has a loop-carried dependence); the kernel probes in bulk —
 * idx = head[f(C[i])], then walk next[] comparing keys — which DX100
 * executes as chained conditional ILDs across a whole tile of tuples.
 */
class BucketChainProbe : public Workload
{
  public:
    explicit BucketChainProbe(Scale s);

    std::string name() const override { return "PRO"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    std::size_t nBuild_;
    std::size_t nProbe_;
    std::size_t buckets_;
    std::vector<std::uint32_t> buildKeys_;
    std::vector<std::uint32_t> probeKeys_;
    std::vector<std::uint32_t> head_; //!< idx+1, 0 = empty
    std::vector<std::uint32_t> next_;
    unsigned maxChain_ = 0;
    Addr cProbe_ = 0, headA_ = 0, nextA_ = 0, keysA_ = 0, out_ = 0;

    std::uint32_t hashOf(std::uint32_t key) const;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_HASHJOIN_HH

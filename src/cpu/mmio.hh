/**
 * @file
 * Interface for memory-mapped devices reachable from a core (DX100).
 */

#ifndef DX_CPU_MMIO_HH
#define DX_CPU_MMIO_HH

#include <cstdint>

#include "common/types.hh"

namespace dx::cpu
{

class MmioDevice
{
  public:
    virtual ~MmioDevice() = default;

    /** An uncacheable 64-bit store arriving at the device. */
    virtual void mmioWrite(Addr addr, std::uint64_t data, int coreId) = 0;

    /**
     * Poll for a wait token (issued by the runtime alongside kDxWait
     * micro-ops). True once the awaited work has retired.
     */
    virtual bool mmioReady(std::uint64_t token, int coreId) = 0;
};

} // namespace dx::cpu

#endif // DX_CPU_MMIO_HH

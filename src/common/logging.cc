#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace dx
{

namespace
{

/** Serializes every log line emitted by any thread. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread prefix prepended to warn/inform/fatal lines. */
thread_local std::string tlLogPrefix;

/** When set, dx_fatal on this thread throws instead of exiting. */
thread_local bool tlFatalThrows = false;

void
emit(const char *kind, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s%s: %s\n", tlLogPrefix.c_str(), kind,
                 msg.c_str());
}

} // namespace

ScopedFatalThrow::ScopedFatalThrow() : prev_(tlFatalThrows)
{
    tlFatalThrows = true;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    tlFatalThrows = prev_;
}

ScopedLogPrefix::ScopedLogPrefix(std::string prefix)
    : prev_(std::move(tlLogPrefix))
{
    tlLogPrefix = std::move(prefix);
}

ScopedLogPrefix::~ScopedLogPrefix()
{
    tlLogPrefix = std::move(prev_);
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "%spanic: %s (%s:%d)\n",
                     tlLogPrefix.c_str(), msg.c_str(), file, line);
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (tlFatalThrows)
        throw FatalError(msg);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "%sfatal: %s (%s:%d)\n",
                     tlLogPrefix.c_str(), msg.c_str(), file, line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    emit("info", msg);
}

} // namespace detail
} // namespace dx

/**
 * @file
 * Reproduces paper Fig. 14: scalability with core count and DX100
 * instance count. Paper: 2.6x speedup with 4 cores / 1 instance, 2.5x
 * with 8 cores / 1 instance (4 channels), 2.7x with 8 cores / 2
 * instances (core multiplexing + region coherence).
 *
 * The 4-core pair reuses the paper_main tags, so those 24 cells come
 * straight from the fig09/10/11 cache. The 8-core columns carry a 2x
 * scale multiplier (the paper doubles the dataset with the cores).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

RunMatrix
scalabilityMatrix()
{
    RunMatrix m("scalability");
    m.addWorkloads(wl::paperWorkloads());

    m.addConfig("baseline", SystemConfig::baseline(4));
    m.addConfig("dx100", SystemConfig::withDx100(4, 1));

    m.addConfig("baseline8", SystemConfig::baseline(8), 2.0);
    // A single instance serving 8 cores gets a near-doubled
    // scratchpad (paper: one 4MB instance vs two 2MB instances);
    // tile ids are 6-bit with 0x3f reserved, capping at 60 tiles.
    SystemConfig c8i1 = SystemConfig::withDx100(8, 1);
    c8i1.dx.numTiles = 60;
    m.addConfig("dx100_c8i1", c8i1, 2.0);
    m.addConfig("dx100_c8i2", SystemConfig::withDx100(8, 2), 2.0);
    return m;
}

double
geomeanSpeedup(const MatrixResult &r, const std::string &baseTag,
               const std::string &dxTag)
{
    std::vector<double> speedups;
    for (const auto &w : r.workloads()) {
        const CellResult &base = r.cell(w.name, baseTag);
        const CellResult &dx = r.cell(w.name, dxTag);
        if (!base.ok || !dx.ok)
            continue;
        speedups.push_back(static_cast<double>(base.stats.cycles) /
                           dx.stats.cycles);
    }
    return geomean(speedups);
}

void
formatScalabilityTable(const MatrixResult &r)
{
    std::printf("%-26s %9s %9s\n", "configuration", "geomean",
                "paper");
    std::printf("%-26s %8.2fx %9s\n", "4 cores, 1 instance",
                geomeanSpeedup(r, "baseline", "dx100"), "2.6x");
    std::printf("%-26s %8.2fx %9s\n", "8 cores, 1 instance (4ch)",
                geomeanSpeedup(r, "baseline8", "dx100_c8i1"), "2.5x");
    std::printf("%-26s %8.2fx %9s\n", "8 cores, 2 instances",
                geomeanSpeedup(r, "baseline8", "dx100_c8i2"), "2.7x");
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 14 - scalability (cores x instances)", opt);

    const MatrixResult result = scalabilityMatrix().run(opt);
    formatScalabilityTable(result);
    maybeWriteJson(result, "fig14", opt);
    return result.failures() == 0 ? 0 : 1;
}

/**
 * @file
 * Ablation studies for the design choices called out in DESIGN.md §4,
 * run on the all-miss Gather-Full microbenchmark (worst-case index
 * order, where every mechanism matters):
 *
 *   1. DRAM address-interleaving order (channel/bank-group placement);
 *   2. memory-controller request-buffer depth (the visibility window
 *      the paper argues is too small, §2.1);
 *   3. DX100 Row Table fill rate;
 *   4. Row Table capacity (rows per slice).
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

DramPatternParams
worstPattern()
{
    DramPatternParams p;
    p.rbhPercent = 0;
    p.channelInterleave = false;
    p.bankGroupInterleave = false;
    return p;
}

struct Result
{
    Cycle baseCycles;
    Cycle dxCycles;
    double dxBw;
};

Result
run(const SystemConfig &baseCfg, const SystemConfig &dxCfg)
{
    const std::size_t n = 64 * 1024;
    GatherMicro wb(GatherMicro::Mode::kFull, n, worstPattern());
    const RunStats b = runWorkloadOnce(wb, baseCfg);
    GatherMicro wd(GatherMicro::Mode::kFull, n, worstPattern());
    const RunStats d = runWorkloadOnce(wd, dxCfg);
    return {b.cycles, d.cycles, d.bandwidthUtil};
}

} // namespace

int
main(int argc, char **argv)
{
    ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Ablations - all-miss gather, worst index order",
                     opt);

    std::printf("--- address interleaving order ---\n");
    std::printf("%-14s %12s %12s %9s %7s\n", "order", "base", "dx100",
                "speedup", "dx bw");
    for (auto order : {mem::MapOrder::kChBgCoBaRo,
                       mem::MapOrder::kChCoBgBaRo,
                       mem::MapOrder::kCoChBgBaRo}) {
        SystemConfig bc = SystemConfig::baseline();
        bc.dram.order = order;
        SystemConfig dc = SystemConfig::withDx100();
        dc.dram.order = order;
        const Result r = run(bc, dc);
        std::printf("%-14s %12llu %12llu %8.2fx %6.1f%%\n",
                    mem::to_string(order).c_str(),
                    static_cast<unsigned long long>(r.baseCycles),
                    static_cast<unsigned long long>(r.dxCycles),
                    static_cast<double>(r.baseCycles) / r.dxCycles,
                    r.dxBw * 100);
    }

    std::printf("\n--- request buffer depth (baseline visibility) ---\n");
    std::printf("%-14s %12s %12s %9s\n", "entries", "base", "dx100",
                "speedup");
    for (unsigned q : {8u, 16u, 32u, 64u, 128u}) {
        SystemConfig bc = SystemConfig::baseline();
        bc.dram.ctrl.readQueueSize = q;
        bc.dram.ctrl.writeQueueSize = q;
        bc.dram.ctrl.writeHiWatermark = 3 * q / 4;
        bc.dram.ctrl.writeLoWatermark = q / 4;
        SystemConfig dc = SystemConfig::withDx100();
        dc.dram.ctrl = bc.dram.ctrl;
        const Result r = run(bc, dc);
        std::printf("%-14u %12llu %12llu %8.2fx\n", q,
                    static_cast<unsigned long long>(r.baseCycles),
                    static_cast<unsigned long long>(r.dxCycles),
                    static_cast<double>(r.baseCycles) / r.dxCycles);
    }

    std::printf("\n--- DX100 fill rate (indices/cycle) ---\n");
    std::printf("%-14s %12s %7s\n", "fill rate", "dx100", "dx bw");
    for (unsigned f : {2u, 4u, 8u, 16u, 32u}) {
        SystemConfig dc = SystemConfig::withDx100();
        dc.dx.fillRate = f;
        const Result r = run(SystemConfig::baseline(), dc);
        std::printf("%-14u %12llu %6.1f%%\n", f,
                    static_cast<unsigned long long>(r.dxCycles),
                    r.dxBw * 100);
    }

    std::printf("\n--- Row Table rows per slice ---\n");
    std::printf("%-14s %12s %7s\n", "rows/slice", "dx100", "dx bw");
    for (unsigned rows : {8u, 16u, 32u, 64u, 128u}) {
        SystemConfig dc = SystemConfig::withDx100();
        dc.dx.rowsPerSlice = rows;
        const Result r = run(SystemConfig::baseline(), dc);
        std::printf("%-14u %12llu %6.1f%%\n", rows,
                    static_cast<unsigned long long>(r.dxCycles),
                    r.dxBw * 100);
    }
    return 0;
}

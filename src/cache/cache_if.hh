/**
 * @file
 * Request/response interfaces between cache levels and memory-side ports.
 */

#ifndef DX_CACHE_CACHE_IF_HH
#define DX_CACHE_CACHE_IF_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/request.hh"

namespace dx::cache
{

/** Receives line-granularity completions from a cache or port. */
class CacheRespSink
{
  public:
    virtual ~CacheRespSink() = default;
    virtual void cacheResponse(std::uint64_t tag) = 0;
};

/** One request into a cache level (or a memory-side port). */
struct CacheReq
{
    Addr addr = 0;            //!< raw byte address
    bool write = false;
    bool fullLine = false;    //!< whole-line write: no fetch-on-miss
    mem::Origin origin = mem::Origin::kCpuDemand;
    std::uint16_t pc = 0;     //!< static instruction id (prefetch training)
    std::uint64_t value = 0;  //!< loaded value (indirect-prefetch training)
    std::uint64_t tag = 0;    //!< requester-defined cookie
    CacheRespSink *sink = nullptr;
};

/** portPopCount() value for ports that do not track departures. */
inline constexpr std::uint64_t kPortPopsUnknown = ~std::uint64_t{0};

/** Anything a cache can send misses to (a lower cache, DRAM, DX100). */
class CachePort
{
  public:
    virtual ~CachePort() = default;
    virtual bool portCanAccept() const = 0;

    /**
     * Monotonic count of departures from whatever resource gates
     * admission here (queue pops, command issues). Arrivals never free
     * space, so a waiter that found the port full may cache that
     * verdict and re-probe only when the count moves instead of every
     * cycle — the scheduler's cheap alternative to per-cycle polling.
     * Ports that do not track departures return kPortPopsUnknown,
     * which waiters must treat as "never cache".
     */
    virtual std::uint64_t portPopCount() const { return kPortPopsUnknown; }

    /**
     * Stable address of the counter portPopCount() reads, for waiters
     * that probe it every cycle (the quiescence fast paths): one load
     * instead of a virtual call. Null when the count is aggregated or
     * untracked — callers must then fall back to portPopCount(). The
     * address must stay valid and live-updating for the port's
     * lifetime.
     */
    virtual const std::uint64_t *portPopCountAddr() const
    {
        return nullptr;
    }

    /**
     * Request-specific admission: ports that multiplex resources by
     * address (the DRAM adapter's per-channel queues) override this so
     * one busy resource does not starve traffic headed elsewhere.
     */
    virtual bool
    portCanAcceptReq(const CacheReq &req) const
    {
        (void)req;
        return portCanAccept();
    }

    virtual void portRequest(const CacheReq &req) = 0;
};

} // namespace dx::cache

#endif // DX_CACHE_CACHE_IF_HH

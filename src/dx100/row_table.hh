/**
 * @file
 * Row Table + Word Table of the Indirect Access unit (paper §3.2).
 *
 * The Row Table is sliced per DRAM bank. Each slice models a 64-entry
 * BCAM of open "rows under construction" and, per row, up to 8 SRAM
 * column entries. The Word Table chains all tile iterations that target
 * the same DRAM column into a linked list (coalescing), anchored at the
 * column's tail pointer.
 *
 * The fill stage inserts decomposed addresses; the request stage drains
 * unsent columns row-by-row in slice-interleaved order; responses walk
 * the word chain and eventually free the row entry.
 */

#ifndef DX_DX100_ROW_TABLE_HH
#define DX_DX100_ROW_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dx::dx100
{

class IndirectTables
{
  public:
    /** Handle naming one column entry of the current execution. */
    using ColHandle = std::uint32_t;
    static constexpr ColHandle kNoCol = ~ColHandle{0};
    static constexpr std::int32_t kNoIter = -1;

    struct Request
    {
        ColHandle handle = kNoCol;
        unsigned slice = 0;
        std::uint32_t row = 0;
        std::uint32_t col = 0;
        bool cacheHit = false;
    };

    struct Config
    {
        unsigned slices = 32;
        unsigned rowsPerSlice = 64;
        unsigned colsPerRow = 8;
    };

    explicit IndirectTables(const Config &cfg);

    /** Start a new execution over @p elems tile iterations. */
    void reset(std::uint32_t elems);

    enum class InsertResult
    {
        kOk,        //!< inserted
        kNewColumn, //!< inserted and allocated a fresh column (snoop it)
        kSliceFull, //!< no row entry available: drain needed
    };

    /**
     * Fill stage: record that iteration @p iter targets (@p slice,
     * @p row, @p col) at word offset @p wordOff.
     */
    InsertResult insert(unsigned slice, std::uint32_t row,
                        std::uint32_t col, std::uint16_t wordOff,
                        std::uint32_t iter);

    /** Set the cache-hit (H) bit on a freshly allocated column. */
    void setCacheHit(ColHandle h, bool hit);

    /**
     * Request stage: pick the next unsent column from @p slice (oldest
     * row first, its columns in insertion order). Marks it sent.
     */
    std::optional<Request> nextRequest(unsigned slice);

    /** Revert a nextRequest() (downstream refused the request). */
    void unsend(const Request &req);

    /** Any unsent column in this slice? */
    bool hasUnsent(unsigned slice) const;

    /** Any unsent column anywhere? */
    bool anyUnsent() const;

    /**
     * Response stage: walk the word chain of a completed column,
     * invoking fn(iter, wordOff) per coalesced word, then release the
     * column (and its row once the row is fully drained and complete).
     * Returns the number of words in the chain.
     */
    template <typename Fn>
    unsigned
    completeColumn(ColHandle h, Fn &&fn)
    {
        Col &c = cols_[h];
        unsigned n = 0;
        for (std::int32_t i = c.tail; i != kNoIter;
             i = words_[static_cast<std::uint32_t>(i)].prev) {
            fn(static_cast<std::uint32_t>(i),
               words_[static_cast<std::uint32_t>(i)].wordOff);
            ++n;
        }
        releaseColumn(h);
        return n;
    }

    /** Number of words chained into a column so far. */
    unsigned wordsInColumn(ColHandle h) const;

    /** All rows drained and completed? */
    bool drained() const { return liveRows_ == 0; }

    /** Columns allocated in this execution (for coalescing stats). */
    std::uint64_t columnsAllocated() const { return colsAllocated_; }

    /** Occupied row entries in a slice (test/telemetry hook). */
    unsigned rowsLive(unsigned slice) const;

  private:
    struct Col
    {
        std::uint32_t col = 0;
        std::int32_t tail = kNoIter;
        bool sent = false;
        bool done = false;
        bool cacheHit = false;
        std::uint32_t rowIdx = 0; //!< owning row (index into rows_)
    };

    struct Row
    {
        bool live = false;
        unsigned slice = 0;
        std::uint32_t row = 0;
        bool sentAll = false; //!< BCAM S bit: no longer fill-matchable
        std::uint64_t order = 0;
        std::vector<ColHandle> cols;
        unsigned colsDone = 0;
    };

    struct WordEntry
    {
        std::int32_t prev = kNoIter;
        std::uint16_t wordOff = 0;
    };

    struct Slice
    {
        std::vector<std::uint32_t> rows; //!< live row indices, FIFO
    };

    void releaseColumn(ColHandle h);
    void maybeReleaseRow(std::uint32_t rowIdx);

    Config cfg_;
    std::vector<Slice> slices_;
    std::vector<Row> rows_;   //!< arena, reused via free list
    std::vector<std::uint32_t> freeRows_;
    std::vector<Col> cols_;   //!< per-execution arena
    std::vector<WordEntry> words_;
    std::uint64_t orderCounter_ = 0;
    std::uint64_t colsAllocated_ = 0;
    unsigned liveRows_ = 0;
};

} // namespace dx::dx100

#endif // DX_DX100_ROW_TABLE_HH

/**
 * @file
 * Memory request / response plumbing shared by caches, DX100 and DRAM.
 */

#ifndef DX_MEM_REQUEST_HH
#define DX_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/address_map.hh"
#include "sim/port.hh"

namespace dx::mem
{

/** Who generated a DRAM request (for stats attribution). */
enum class Origin : std::uint8_t
{
    kCpuDemand,
    kPrefetch,
    kDx100,
    kWriteback,
};

struct MemRequest;

/**
 * Receives completions for DRAM reads (and writes, when issued) — the
 * memory-domain instantiation of the unified completion interface
 * (sim/port.hh).
 */
using MemRespSink = Completion<MemRequest>;

/** One line-granularity DRAM request. */
struct MemRequest
{
    Addr lineAddr = 0;
    bool write = false;
    Origin origin = Origin::kCpuDemand;
    std::uint64_t tag = 0;        //!< sink-defined cookie
    MemRespSink *sink = nullptr;  //!< may be null for fire-and-forget
    DramCoord coord;
    Cycle enqueued = 0;           //!< controller cycle of arrival
    bool neededAct = false;       //!< filled by the controller (row stat)
};

} // namespace dx::mem

#endif // DX_MEM_REQUEST_HH

#include "sim/topology.hh"

#include <string>
#include <utility>

#include "common/logging.hh"

namespace dx::sim
{

Topology
TopologyBuilder::build(Component &root) const
{
    cfg_.validate();

    Topology t;
    t.dram = std::make_unique<mem::DramSystem>(cfg_.dram);
    t.dramPort = std::make_unique<cache::DramPort>(*t.dram);
    t.router = std::make_unique<cache::RangeRouter>(*t.dramPort);

    cache::Cache::Config llcCfg = cfg_.llc;
    llcCfg.name = "llc";
    t.llc = std::make_unique<cache::Cache>(llcCfg, t.router.get());

    for (unsigned i = 0; i < cfg_.cores; ++i) {
        cache::Cache::Config l2c = cfg_.l2;
        l2c.name = "l2";
        t.l2s.push_back(
            std::make_unique<cache::Cache>(l2c, t.llc.get()));
        cache::Cache::Config l1c = cfg_.l1;
        l1c.name = "l1d";
        t.l1s.push_back(
            std::make_unique<cache::Cache>(l1c, t.l2s.back().get()));

        // Inclusive-LLC membership (back-invalidate targets) is a
        // protocol relation, separate from the naming tree.
        t.llc->addChild(t.l1s.back().get());
        t.llc->addChild(t.l2s.back().get());

        if (cfg_.stridePrefetchers) {
            // DMP needs the full-resolution access stream (per-element
            // pcs and values), so it replaces the L1 prefetcher; the
            // L2 stride prefetcher stays in both configurations.
            if (cfg_.dmp) {
                auto dmp =
                    std::make_unique<prefetch::IndirectPrefetcher>(
                        cfg_.dmpCfg, &mem_);
                t.l1s.back()->adopt(*dmp);
                t.l1s.back()->setPrefetcher(std::move(dmp));
            } else {
                t.l1s.back()->setPrefetcher(
                    std::make_unique<cache::StridePrefetcher>());
            }
            t.l2s.back()->setPrefetcher(
                std::make_unique<cache::StridePrefetcher>());
        }

        t.cores.push_back(std::make_unique<cpu::Core>(
            cfg_.core, static_cast<int>(i), t.l1s.back().get()));
        t.cores.back()->adopt(*t.l1s.back());
        t.cores.back()->adopt(*t.l2s.back());
        root.adopt(*t.cores.back());
    }

    // DX100 instances: cores are multiplexed contiguously.
    for (unsigned inst = 0; inst < cfg_.dx100Instances; ++inst) {
        dx100::Dx100Config dxc = cfg_.dx;
        // Give each instance disjoint MMIO/SPD windows.
        dxc.mmioBase = cfg_.dx.mmioBase + (Addr{inst} << 28);
        dxc.spdBase = cfg_.dx.spdBase + (Addr{inst} << 28);

        dx100::CoherencyAgent agent;
        agent.setLlc(t.llc.get());
        agent.addCache(t.llc.get());
        for (auto &c : t.l1s)
            agent.addCache(c.get());
        for (auto &c : t.l2s)
            agent.addCache(c.get());

        t.dxs.push_back(std::make_unique<dx100::Dx100>(
            dxc, *t.dram, t.llc.get(), agent, cfg_.cores));
        if (cfg_.dx100Instances > 1)
            t.dxs.back()->rename("dx100_" + std::to_string(inst));
        t.router->addRange(dxc.spdBase, dxc.spdSize(),
                           &t.dxs.back()->spdPort());
        t.runtimes.push_back(std::make_unique<runtime::Dx100Runtime>(
            *t.dxs.back(), mem_));
        root.adopt(*t.dxs.back());
    }

    // Multiple instances uphold the Single-Writer invariant through a
    // coarse-grained region directory (§6.6).
    if (t.dxs.size() > 1) {
        t.regionDir = std::make_unique<dx100::RegionDirectory>();
        for (unsigned inst = 0; inst < t.dxs.size(); ++inst) {
            t.dxs[inst]->setRegionDirectory(t.regionDir.get(),
                                            static_cast<int>(inst));
        }
    }

    // Core <-> DX100 MMIO multiplexing, contiguous blocks of cores.
    if (!t.dxs.empty()) {
        const unsigned coresPerInst =
            (cfg_.cores + static_cast<unsigned>(t.dxs.size()) - 1) /
            static_cast<unsigned>(t.dxs.size());
        for (unsigned i = 0; i < cfg_.cores; ++i)
            t.cores[i]->setMmioDevice(t.dxs[i / coresPerInst].get());
    }

    root.adopt(*t.llc);
    root.adopt(*t.dram);
    return t;
}

} // namespace dx::sim

/**
 * @file
 * Reproduces paper Fig. 11: (a) core instruction reduction (geomean
 * 3.6x in the paper) and (b) cache MPKI reduction (avg 6.1x). Shares
 * RunMatrix::paperMain (and cache) with fig09/10.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

void
formatInstrMpkiTable(const MatrixResult &r)
{
    std::printf("%-8s | %12s %12s %7s | %8s %8s %7s\n", "kernel",
                "instr.base", "instr.dx", "ratio", "mpki.b", "mpki.dx",
                "ratio");
    std::vector<double> instrRatios, mpkiRatios;
    for (const auto &w : r.workloads()) {
        const CellResult &base = r.cell(w.name, "baseline");
        const CellResult &dx = r.cell(w.name, "dx100");
        if (!base.ok || !dx.ok) {
            std::printf("%-8s | %12s\n", w.name.c_str(), "FAILED");
            continue;
        }
        const RunStats &b = base.stats;
        const RunStats &d = dx.stats;

        const double ir =
            static_cast<double>(b.instructions) /
            std::max<std::uint64_t>(d.instructions, 1);
        // LLC demand MPKI; DX100-originated traffic excluded.
        const double mb = std::max(b.llcMpki, 1e-3);
        const double md = std::max(d.llcMpki, 1e-3);
        const double mr = mb / md;
        instrRatios.push_back(ir);
        mpkiRatios.push_back(mr);

        std::printf("%-8s | %12llu %12llu %6.2fx | %8.2f %8.2f "
                    "%6.1fx\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(b.instructions),
                    static_cast<unsigned long long>(d.instructions),
                    ir, b.llcMpki, d.llcMpki, mr);
    }
    std::printf("%-8s | %26s %6.2fx | %11s %10.1fx\n", "geomean",
                "(paper 3.6x)", geomean(instrRatios), "(paper 6.1x)",
                geomean(mpkiRatios));
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 11 - instruction and MPKI reduction", opt);

    const MatrixResult result = RunMatrix::paperMain().run(opt);
    formatInstrMpkiTable(result);
    maybeWriteJson(result, "fig11", opt);
    return result.failures() == 0 ? 0 : 1;
}

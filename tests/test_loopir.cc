/**
 * @file
 * Loop-IR compiler tests: use-def analysis, legality, code generation,
 * and end-to-end equivalence of interpreter / baseline kernel /
 * compiled DX100 kernel.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "loopir/exec.hh"
#include "loopir/passes.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::loopir;

namespace
{

struct IrRig
{
    SimMemory mem;
    SimAllocator alloc;
    Program prog;

    int
    array(const std::string &name, std::size_t n,
          DataType t = DataType::kU32)
    {
        return prog.addArray(name, alloc.alloc(n * 8), t, n);
    }
};

} // namespace

TEST(LoopIrAnalysis, ClassifiesIndirectionDepth)
{
    IrRig r;
    const int a = r.array("A", 16);
    const int b = r.array("B", 16);

    // B[i]: streaming (depth 1, affine index).
    auto stream = Expr::ref(b, Expr::indVar());
    EXPECT_EQ(analyzeExpr(stream).indirectionDepth, 1u);
    EXPECT_EQ(analyzeExpr(stream->kids[0]).indirectionDepth, 0u);
    EXPECT_TRUE(analyzeExpr(stream->kids[0]).affine);

    // A[B[i]]: depth 2.
    auto indirect = Expr::ref(a, stream);
    EXPECT_EQ(analyzeExpr(indirect).indirectionDepth, 2u);

    // A[B[i] & 0xff]: still depth 2, index not affine.
    auto masked = Expr::ref(
        a, Expr::bin(AluOp::kAnd, stream, Expr::cnst(0xff)));
    EXPECT_EQ(analyzeExpr(masked).indirectionDepth, 2u);
    EXPECT_FALSE(analyzeExpr(masked->kids[0]).affine);
}

TEST(LoopIrLegality, RejectsLoadStoreAliasing)
{
    IrRig r;
    const int a = r.array("A", 16);
    const int b = r.array("B", 16);
    r.prog.hi = 16;

    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.array = a;
    s.index = Expr::ref(b, Expr::indVar());
    s.value = Expr::ref(a, Expr::indVar()); // reads the stored array
    r.prog.body.push_back(s);

    const Legality v = checkLegality(r.prog);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("A"), std::string::npos);
}

TEST(LoopIrLegality, RejectsNonCommutativeRmw)
{
    IrRig r;
    const int a = r.array("A", 16);
    const int b = r.array("B", 16);
    const int v = r.array("V", 16);
    r.prog.hi = 16;

    Stmt s;
    s.kind = Stmt::Kind::kRmw;
    s.rmwOp = AluOp::kSub; // not reorderable
    s.array = a;
    s.index = Expr::ref(b, Expr::indVar());
    s.value = Expr::ref(v, Expr::indVar());
    r.prog.body.push_back(s);

    EXPECT_FALSE(checkLegality(r.prog).ok);
}

TEST(LoopIrLegality, RejectsLoopInvariantStoreIndex)
{
    IrRig r;
    const int a = r.array("A", 16);
    const int v = r.array("V", 16);
    r.prog.hi = 16;

    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.array = a;
    s.index = Expr::cnst(3); // every iteration writes A[3]
    s.value = Expr::ref(v, Expr::indVar());
    r.prog.body.push_back(s);

    EXPECT_FALSE(checkLegality(r.prog).ok);
}

TEST(LoopIrCodegen, GatherLowersToSldIldSst)
{
    IrRig r;
    const int a = r.array("A", 64);
    const int b = r.array("B", 64);
    const int c = r.array("C", 64);
    r.prog.hi = 64;

    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.array = c;
    s.index = Expr::indVar();
    s.value = Expr::ref(a, Expr::ref(b, Expr::indVar()));
    r.prog.body.push_back(s);

    const CodegenResult cg = lowerToDx100(r.prog);
    ASSERT_TRUE(cg.ok) << cg.reason;
    ASSERT_EQ(cg.plan.ops.size(), 3u);
    EXPECT_EQ(cg.plan.ops[0].kind, PackedOp::Kind::kSld);
    EXPECT_EQ(cg.plan.ops[1].kind, PackedOp::Kind::kIld);
    EXPECT_EQ(cg.plan.ops[2].kind, PackedOp::Kind::kSst);
}

TEST(LoopIrCodegen, HashPatternUsesAluChain)
{
    // A[B[(C[i] & 0xff0) >> 4]] = C[i]  (PRH shape from Table 1)
    IrRig r;
    const int a = r.array("A", 64);
    const int b = r.array("B", 64);
    const int c = r.array("C", 64);
    r.prog.hi = 64;

    auto ci = Expr::ref(c, Expr::indVar());
    auto f = Expr::bin(AluOp::kShr,
                       Expr::bin(AluOp::kAnd, ci, Expr::cnst(0xff0)),
                       Expr::cnst(4));
    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.array = a;
    s.index = Expr::ref(b, f);
    s.value = ci;
    r.prog.body.push_back(s);

    const CodegenResult cg = lowerToDx100(r.prog);
    ASSERT_TRUE(cg.ok) << cg.reason;
    unsigned alus = 0, ilds = 0;
    for (const auto &op : cg.plan.ops) {
        alus += op.kind == PackedOp::Kind::kAluS;
        ilds += op.kind == PackedOp::Kind::kIld;
    }
    EXPECT_EQ(alus, 2u); // AND + SHR
    EXPECT_EQ(ilds, 1u); // B[f]
}

TEST(LoopIrEndToEnd, CompiledKernelMatchesInterpreter)
{
    const std::size_t n = 4096;

    auto build = [n](SimAllocator &alloc) {
        Program prog;
        prog.hi = n;
        const int a =
            prog.addArray("A", alloc.alloc(n * 4), DataType::kU32, n);
        const int b =
            prog.addArray("B", alloc.alloc(n * 4), DataType::kU32, n);
        const int v =
            prog.addArray("V", alloc.alloc(n * 4), DataType::kU32, n);
        Stmt s;
        s.kind = Stmt::Kind::kRmw;
        s.rmwOp = AluOp::kAdd;
        s.array = a;
        s.index = Expr::ref(b, Expr::indVar());
        s.value = Expr::ref(v, Expr::indVar());
        prog.body.push_back(s);
        return prog;
    };

    auto fill = [n](const Program &prog, SimMemory &mem) {
        Rng rng(5);
        for (std::size_t i = 0; i < n; ++i) {
            mem.write<std::uint32_t>(prog.arrays[0].base + i * 4, 0);
            mem.write<std::uint32_t>(
                prog.arrays[1].base + i * 4,
                static_cast<std::uint32_t>(rng.below(n)));
            mem.write<std::uint32_t>(
                prog.arrays[2].base + i * 4,
                static_cast<std::uint32_t>(rng.below(50)));
        }
    };

    // Reference.
    SimMemory refMem;
    SimAllocator refAlloc;
    Program refProg = build(refAlloc);
    fill(refProg, refMem);
    interpret(refProg, refMem);

    // Compiled DX100 run.
    const CodegenResult cg = lowerToDx100(refProg);
    ASSERT_TRUE(cg.ok) << cg.reason;

    sim::System sys(sim::SystemConfig::withDx100());
    Program dxProg = build(sys.allocator());
    fill(dxProg, sys.memory());
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        const auto [bg, en] = wl::coreSlice(n, c, sys.cores());
        kernels.push_back(makeDx100Kernel(dxProg, cg.plan,
                                          *sys.runtimeFor(c),
                                          static_cast<int>(c), bg,
                                          en));
        sys.setKernel(c, kernels.back().get());
    }
    sys.run();

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sys.memory().read<std::uint32_t>(
                      dxProg.arrays[0].base + i * 4),
                  refMem.read<std::uint32_t>(refProg.arrays[0].base +
                                             i * 4))
            << "element " << i;
    }
}

TEST(LoopIrEndToEnd, BaselineKernelMatchesInterpreter)
{
    const std::size_t n = 2048;
    sim::System sys(sim::SystemConfig::baseline());
    Program prog;
    prog.hi = n;
    const int a = prog.addArray("A", sys.allocator().alloc(n * 4),
                                DataType::kU32, n);
    const int b = prog.addArray("B", sys.allocator().alloc(n * 4),
                                DataType::kU32, n);
    Rng rng(9);
    for (std::size_t i = 0; i < n; ++i) {
        sys.memory().write<std::uint32_t>(
            prog.arrays[0].base + i * 4, 0);
        sys.memory().write<std::uint32_t>(
            prog.arrays[1].base + i * 4,
            static_cast<std::uint32_t>(rng.below(n)));
    }
    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.array = a;
    s.index = Expr::indVar();
    s.value = Expr::bin(AluOp::kAdd, Expr::ref(b, Expr::indVar()),
                        Expr::cnst(7));
    prog.body.push_back(s);

    // Host reference on a copy.
    SimMemory refMem;
    Program refProg = prog;
    for (std::size_t i = 0; i < n; ++i) {
        refMem.write<std::uint32_t>(
            prog.arrays[1].base + i * 4,
            sys.memory().read<std::uint32_t>(prog.arrays[1].base +
                                             i * 4));
    }
    interpret(refProg, refMem);

    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        const auto [bg, en] = wl::coreSlice(n, c, sys.cores());
        kernels.push_back(
            makeBaselineKernel(prog, sys.memory(), bg, en));
        sys.setKernel(c, kernels.back().get());
    }
    sys.run();

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sys.memory().read<std::uint32_t>(
                      prog.arrays[0].base + i * 4),
                  refMem.read<std::uint32_t>(prog.arrays[0].base +
                                             i * 4));
    }
}

#include "mem/address_map.hh"

#include <bit>

#include "common/logging.hh"

namespace dx::mem
{

namespace
{

/** Pop @p bits low-order bits from @p value, returning them. */
std::uint64_t
popBits(std::uint64_t &value, unsigned bits)
{
    const std::uint64_t field = value & ((std::uint64_t{1} << bits) - 1);
    value >>= bits;
    return field;
}

unsigned
log2i(std::uint64_t v)
{
    dx_assert(v != 0 && (v & (v - 1)) == 0, "value must be a power of 2");
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

std::string
to_string(MapOrder order)
{
    switch (order) {
      case MapOrder::kChBgCoBaRo: return "ChBgCoBaRo";
      case MapOrder::kChCoBgBaRo: return "ChCoBgBaRo";
      case MapOrder::kCoChBgBaRo: return "CoChBgBaRo";
    }
    return "unknown";
}

DramCoord
AddressMap::decompose(Addr addr) const
{
    std::uint64_t line = addr >> kLineShift;

    const unsigned chBits = log2i(geom_.channels);
    const unsigned bgBits = log2i(geom_.bankGroups);
    const unsigned baBits = log2i(geom_.banksPerGroup);
    const unsigned raBits = log2i(geom_.ranks);
    const unsigned coBits = log2i(geom_.linesPerRow());

    DramCoord c;
    switch (order_) {
      case MapOrder::kChBgCoBaRo:
        c.channel = popBits(line, chBits);
        c.bankGroup = popBits(line, bgBits);
        c.column = popBits(line, coBits);
        c.bank = popBits(line, baBits);
        c.rank = popBits(line, raBits);
        break;
      case MapOrder::kChCoBgBaRo:
        c.channel = popBits(line, chBits);
        c.column = popBits(line, coBits);
        c.bankGroup = popBits(line, bgBits);
        c.bank = popBits(line, baBits);
        c.rank = popBits(line, raBits);
        break;
      case MapOrder::kCoChBgBaRo:
        c.column = popBits(line, coBits);
        c.channel = popBits(line, chBits);
        c.bankGroup = popBits(line, bgBits);
        c.bank = popBits(line, baBits);
        c.rank = popBits(line, raBits);
        break;
    }
    c.row = static_cast<std::uint32_t>(line % geom_.rows);
    return c;
}

Addr
AddressMap::compose(const DramCoord &coord) const
{
    const unsigned chBits = log2i(geom_.channels);
    const unsigned bgBits = log2i(geom_.bankGroups);
    const unsigned baBits = log2i(geom_.banksPerGroup);
    const unsigned raBits = log2i(geom_.ranks);
    const unsigned coBits = log2i(geom_.linesPerRow());

    std::uint64_t line = coord.row;

    // Push fields back, MSB first (reverse of decompose).
    auto push = [&line](std::uint64_t field, unsigned bits) {
        line = (line << bits) | field;
    };

    switch (order_) {
      case MapOrder::kChBgCoBaRo:
        push(coord.rank, raBits);
        push(coord.bank, baBits);
        push(coord.column, coBits);
        push(coord.bankGroup, bgBits);
        push(coord.channel, chBits);
        break;
      case MapOrder::kChCoBgBaRo:
        push(coord.rank, raBits);
        push(coord.bank, baBits);
        push(coord.bankGroup, bgBits);
        push(coord.column, coBits);
        push(coord.channel, chBits);
        break;
      case MapOrder::kCoChBgBaRo:
        push(coord.rank, raBits);
        push(coord.bank, baBits);
        push(coord.bankGroup, bgBits);
        push(coord.channel, chBits);
        push(coord.column, coBits);
        break;
    }
    return line << kLineShift;
}

} // namespace dx::mem

/**
 * @file
 * Cache tests: hit/miss behaviour, LRU, MSHR coalescing, write-allocate,
 * writebacks, inclusive back-invalidation, and the stride prefetcher.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/mem_port.hh"
#include "mem/dram_system.hh"

using namespace dx;
using namespace dx::cache;

namespace
{

struct TestSink : public CacheRespSink
{
    std::vector<std::pair<std::uint64_t, Cycle>> done;
    Cycle *clock = nullptr;

    void
    complete(const std::uint64_t &tag) override
    {
        done.push_back({tag, clock ? *clock : 0});
    }

    bool
    has(std::uint64_t tag) const
    {
        for (const auto &[t, c] : done) {
            if (t == tag)
                return true;
        }
        return false;
    }
};

/** One cache level in front of DRAM. */
struct Rig
{
    mem::DramSystem dram;
    DramPort port;
    Cache cache;
    TestSink sink;
    Cycle clock = 0;

    explicit Rig(Cache::Config cfg = defaultCfg(), bool refresh = false)
        : dram(dramCfg(refresh)), port(dram), cache(cfg, &port)
    {
        sink.clock = &clock;
    }

    static Cache::Config
    defaultCfg()
    {
        Cache::Config cfg;
        cfg.name = "L1";
        cfg.sizeBytes = 32 * 1024;
        cfg.assoc = 8;
        cfg.latency = 4;
        cfg.mshrs = 16;
        return cfg;
    }

    static mem::DramSystem::Config
    dramCfg(bool refresh)
    {
        mem::DramSystem::Config cfg;
        cfg.ctrl.timings.refreshEnabled = refresh;
        return cfg;
    }

    void
    step(Cycle n = 1)
    {
        for (Cycle i = 0; i < n; ++i) {
            ++clock;
            cache.tick();
            dram.tick();
        }
    }

    void
    access(Addr addr, bool write, std::uint64_t tag,
           std::uint16_t pc = 0)
    {
        CacheReq req;
        req.addr = addr;
        req.write = write;
        req.pc = pc;
        req.tag = tag;
        req.sink = &sink;
        ASSERT_TRUE(cache.canAccept());
        cache.request(req);
    }

    void
    runUntil(std::size_t completions, Cycle limit = 100000)
    {
        while (sink.done.size() < completions && clock < limit)
            step();
        ASSERT_GE(sink.done.size(), completions);
    }
};

} // namespace

TEST(Cache, MissThenHitLatency)
{
    Rig rig;
    rig.access(0x1000, false, 1);
    rig.runUntil(1);
    const Cycle missDone = rig.sink.done[0].second;
    EXPECT_GT(missDone, 50u); // went to DRAM

    rig.access(0x1000, false, 2);
    rig.runUntil(2);
    const Cycle hitDone = rig.sink.done[1].second - missDone;
    EXPECT_LE(hitDone, rig.cache.config().latency + 2);

    EXPECT_EQ(rig.cache.stats().demandMisses.value(), 1u);
    EXPECT_EQ(rig.cache.stats().demandHits.value(), 1u);
}

TEST(Cache, SameLineDifferentWordsIsAHit)
{
    Rig rig;
    rig.access(0x2000, false, 1);
    rig.runUntil(1);
    rig.access(0x2004, false, 2);
    rig.access(0x203c, false, 3);
    rig.runUntil(3);
    EXPECT_EQ(rig.cache.stats().demandMisses.value(), 1u);
    EXPECT_EQ(rig.cache.stats().demandHits.value(), 2u);
}

TEST(Cache, MshrCoalescesConcurrentMissesToOneLine)
{
    Rig rig;
    rig.access(0x4000, false, 1);
    rig.access(0x4008, false, 2);
    rig.access(0x4010, false, 3);
    rig.runUntil(3);
    EXPECT_EQ(rig.cache.stats().mshrCoalesced.value(), 2u);
    // Only one DRAM read happened.
    std::uint64_t reads = 0;
    for (unsigned c = 0; c < rig.dram.channels(); ++c)
        reads += rig.dram.channel(c).stats().readsServed.value();
    EXPECT_EQ(reads, 1u);
}

TEST(Cache, LruEvictionAndVictimSelection)
{
    Cache::Config cfg = Rig::defaultCfg();
    cfg.sizeBytes = 8 * kLineBytes; // 2 sets x 4 ways
    cfg.assoc = 4;
    Rig rig(cfg);

    // Fill one set (stride = 2 lines for set 0) with 4 lines, touch the
    // first again, then bring a 5th: the LRU (second) line must go.
    const Addr stride = 2 * kLineBytes;
    for (int i = 0; i < 4; ++i)
        rig.access(Addr(i) * stride, false, 10 + i);
    rig.runUntil(4);
    rig.access(0, false, 20); // touch line 0: now line 1 is LRU
    rig.runUntil(5);
    rig.access(4 * stride, false, 21);
    rig.runUntil(6);

    EXPECT_TRUE(rig.cache.containsLine(0));
    EXPECT_FALSE(rig.cache.containsLine(stride));
    EXPECT_EQ(rig.cache.stats().evictions.value(), 1u);
}

TEST(Cache, WriteAllocateMarksDirtyAndWritesBack)
{
    Cache::Config cfg = Rig::defaultCfg();
    cfg.sizeBytes = 4 * kLineBytes; // 1 set x 4 ways
    cfg.assoc = 4;
    Rig rig(cfg);

    rig.access(0, true, 1); // store miss -> fetch + dirty
    rig.runUntil(1);
    // Evict it by filling the set with 4 more lines.
    for (int i = 1; i <= 4; ++i)
        rig.access(Addr(i) * kLineBytes, false, 1 + i);
    rig.runUntil(5);

    EXPECT_EQ(rig.cache.stats().writebacks.value(), 1u);
    // Wait for the DRAM write to drain (cache first, then controller).
    for (int i = 0;
         i < 5000 && (rig.cache.busy() || !rig.dram.idle()); ++i) {
        rig.step();
    }
    std::uint64_t writes = 0;
    for (unsigned c = 0; c < rig.dram.channels(); ++c)
        writes += rig.dram.channel(c).stats().writesServed.value();
    EXPECT_EQ(writes, 1u);
}

TEST(Cache, FullLineWriteAllocatesWithoutFetch)
{
    Rig rig;
    CacheReq req;
    req.addr = 0x8000;
    req.write = true;
    req.fullLine = true;
    req.origin = mem::Origin::kWriteback;
    req.tag = 1;
    req.sink = &rig.sink;
    rig.cache.request(req);
    rig.step(10);

    EXPECT_TRUE(rig.sink.has(1));
    EXPECT_TRUE(rig.cache.containsLine(0x8000));
    std::uint64_t reads = 0;
    for (unsigned c = 0; c < rig.dram.channels(); ++c)
        reads += rig.dram.channel(c).stats().readsServed.value();
    EXPECT_EQ(reads, 0u);
}

TEST(Cache, BackpressureWhenMshrsExhausted)
{
    Cache::Config cfg = Rig::defaultCfg();
    cfg.mshrs = 2;
    cfg.queueSize = 8;
    Rig rig(cfg);

    for (int i = 0; i < 6; ++i)
        rig.access(Addr(i) * 4096, false, i);
    rig.step(8);
    EXPECT_GT(rig.cache.stats().stallMshrFull.value(), 0u);
    rig.runUntil(6);
    EXPECT_EQ(rig.sink.done.size(), 6u);
}

TEST(Cache, InvalidateLineReportsDirtiness)
{
    Rig rig;
    rig.access(0x100, true, 1);
    rig.access(0x2000, false, 2);
    rig.runUntil(2);
    EXPECT_TRUE(rig.cache.invalidateLine(0x100));   // dirty
    EXPECT_FALSE(rig.cache.invalidateLine(0x2000)); // clean
    EXPECT_FALSE(rig.cache.containsLine(0x100));
}

TEST(Cache, InclusiveRootBackInvalidatesChildren)
{
    // Child L1 in front of an inclusive 1-set LLC.
    mem::DramSystem::Config dcfg;
    dcfg.ctrl.timings.refreshEnabled = false;
    mem::DramSystem dram(dcfg);
    DramPort port(dram);

    Cache::Config llcCfg;
    llcCfg.name = "LLC";
    llcCfg.sizeBytes = 4 * kLineBytes;
    llcCfg.assoc = 4;
    llcCfg.latency = 2;
    llcCfg.mshrs = 8;
    llcCfg.inclusiveRoot = true;
    Cache llc(llcCfg, &port);

    Cache::Config l1Cfg = Rig::defaultCfg();
    Cache l1(l1Cfg, &llc);
    llc.addChild(&l1);

    TestSink sink;
    Cycle clock = 0;
    sink.clock = &clock;

    auto step = [&](Cycle n) {
        for (Cycle i = 0; i < n; ++i) {
            ++clock;
            l1.tick();
            llc.tick();
            dram.tick();
        }
    };

    // Load 5 distinct lines mapping to the single LLC set: the first
    // must be back-invalidated from L1 when the LLC evicts it.
    for (int i = 0; i < 5; ++i) {
        CacheReq req;
        req.addr = Addr(i) * kLineBytes;
        req.tag = static_cast<std::uint64_t>(i);
        req.sink = &sink;
        l1.request(req);
        step(400);
    }

    EXPECT_FALSE(l1.containsLine(0));
    EXPECT_FALSE(llc.containsLine(0));
    EXPECT_GT(llc.stats().backInvalidates.value(), 0u);
}

TEST(StridePrefetcher, DetectsStreamAndQueuesAhead)
{
    StridePrefetcher pf;
    CacheReq req;
    req.pc = 7;
    for (int i = 0; i < 8; ++i) {
        req.addr = Addr(i) * 64;
        pf.observe(req, true);
    }
    // Drain the queue: every candidate is line aligned, and the deepest
    // one reaches past the end of the observed stream.
    Addr line = 0;
    Addr deepest = 0;
    bool any = false;
    while (pf.nextPrefetch(line)) {
        any = true;
        EXPECT_EQ(line % kLineBytes, 0u);
        deepest = std::max(deepest, line);
    }
    ASSERT_TRUE(any);
    EXPECT_GT(deepest, req.addr);
}

TEST(StridePrefetcher, IgnoresRandomAccesses)
{
    StridePrefetcher pf;
    CacheReq req;
    req.pc = 9;
    Addr addrs[] = {0x1000, 0x9340, 0x0200, 0x7777, 0x3210, 0xbeef0};
    for (Addr a : addrs) {
        req.addr = a;
        pf.observe(req, true);
    }
    Addr line;
    EXPECT_FALSE(pf.nextPrefetch(line));
}

TEST(CacheWithPrefetcher, StreamingLoadsBecomeHits)
{
    Rig rig;
    rig.cache.setPrefetcher(std::make_unique<StridePrefetcher>());

    // Two passes over a stream; by the tail of the first pass the
    // prefetcher should be covering misses.
    std::uint64_t tag = 0;
    for (int i = 0; i < 256; ++i) {
        rig.access(Addr(i) * 8, false, tag++, /*pc=*/3);
        rig.runUntil(tag);
    }
    const auto &s = rig.cache.stats();
    EXPECT_GT(s.prefetchesIssued.value(), 4u);
    EXPECT_GT(s.prefetchesUseful.value(), 4u);
    // 256 8-byte loads touch 32 lines; well over half the lines should
    // arrive via prefetch after training.
    EXPECT_LT(s.demandMisses.value(), 20u);
}

TEST(RangeRouter, RoutesByAddressRange)
{
    struct StubPort : public CachePort
    {
        int count = 0;
        bool canAccept() const override { return true; }
        void request(const CacheReq &) override { ++count; }
    };

    StubPort dramStub, spdStub;
    RangeRouter router(dramStub);
    router.addRange(0x10000, 0x1000, &spdStub);

    CacheReq req;
    req.addr = 0x10040;
    router.request(req);
    req.addr = 0x20000;
    router.request(req);
    req.addr = 0x10fff;
    router.request(req);

    EXPECT_EQ(spdStub.count, 2);
    EXPECT_EQ(dramStub.count, 1);
}

#include "workloads/ume.hh"

#include <bit>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::AluOp;
using runtime::DataType;

namespace
{

void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

constexpr unsigned kNone = runtime::Dx100Runtime::kNone;

} // namespace

// =====================================================================
// GZZ / GZP: A[B[i]] += val[i] if D[i] >= F
// =====================================================================

UmeGradient::UmeGradient(Variant v, Scale s)
    : variant_(v), n_(s.of(1 << 20))
{
    // Zone- and point-centred maps differ in spread (average index
    // distance) and seed; paper reports ~85K average distance at 2M.
    const auto spread = static_cast<std::uint32_t>(
        variant_ == Variant::kZone ? n_ / 24 : n_ / 12);
    map_ = makeMeshMap(static_cast<std::uint32_t>(n_), spread,
                       variant_ == Variant::kZone ? 31 : 37);
}

void
UmeGradient::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    a_ = alloc.alloc(n_ * 8);
    b_ = alloc.alloc(n_ * 4);
    d_ = alloc.alloc(n_ * 8);
    val_ = alloc.alloc(n_ * 8);

    Rng rng(variant_ == Variant::kZone ? 5150 : 5151);
    for (std::size_t i = 0; i < n_; ++i) {
        mem.write<std::uint32_t>(b_ + i * 4, map_[i]);
        mem.write<double>(d_ + i * 8, rng.real());
        // Integer-valued doubles keep the scattered accumulation
        // exact under any add order (f64 adds of small ints are
        // associative).
        mem.write<double>(val_ + i * 8,
                          static_cast<double>(rng.below(16) + 1));
        mem.write<double>(a_ + i * 8,
                          static_cast<double>(rng.below(4)));
    }

    registerAll(sys, a_, n_ * 8);
    registerAll(sys, b_, n_ * 4);
    registerAll(sys, d_, n_ * 8);
    registerAll(sys, val_, n_ * 8);

    // The gradient accumulators were zeroed by the cores this step.
    sys.warmLlc(a_, n_ * 8);
}

namespace
{

class UmeBaseKernel : public LoopKernel
{
  public:
    UmeBaseKernel(SimMemory &mem, Addr a, Addr b, Addr d, Addr val,
                  double thr, std::size_t bg, std::size_t en)
        : LoopKernel(bg, en), mem_(mem), a_(a), b_(b), d_(d),
          val_(val), thr_(thr)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const double d = mem_.read<double>(d_ + i * 8);
        const SeqNum ld = e.load(d_ + i * 8, 8, pc::kAux,
                                 std::bit_cast<std::uint64_t>(d));
        const SeqNum cmp = e.fpOp(3, ld); // compare + branch resolve
        e.intOp(1, cmp);
        if (d >= thr_) {
            const auto idx = mem_.read<std::uint32_t>(b_ + i * 4);
            const SeqNum li = e.load(b_ + i * 4, 4, pc::kIndex, idx);
            const SeqNum lv = e.load(val_ + i * 8, 8, pc::kValue);
            const SeqNum calc = e.intOp(1, li);
            const Addr target = a_ + Addr{idx} * 8;
            mem_.write<double>(target,
                               mem_.read<double>(target) +
                                   mem_.read<double>(val_ + i * 8));
            e.rmw(target, 8, pc::kTarget, calc, lv);
        }
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, d_, val_;
    double thr_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
UmeGradient::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<UmeBaseKernel>(sys.memory(), a_, b_,
                                               d_, val_, threshold_,
                                               begin, end);
    }

    auto *rt = sys.runtimeFor(core);
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct Bufs
    {
        unsigned idx[2];
        unsigned val[2];
        unsigned cond[2];
    };
    auto bufs = std::make_shared<Bufs>();
    for (int k = 0; k < 2; ++k) {
        bufs->idx[k] = rt->allocTile();
        bufs->val[k] = rt->allocTile();
        bufs->cond[k] = rt->allocTile();
    }

    const Addr a = a_, b = b_, d = d_, val = val_;
    const std::uint64_t thr = std::bit_cast<std::uint64_t>(threshold_);
    auto emitTile = [rt, coreId, bufs, a, b, d, val, thr](
                        cpu::OpEmitter &e, unsigned buf,
                        std::size_t tb, std::uint32_t cnt) {
        // cond = (D[i] >= F)
        rt->sld(e, coreId, DataType::kF64, d, bufs->cond[buf], tb, cnt);
        rt->alus(e, coreId, DataType::kF64, AluOp::kGe,
                 bufs->cond[buf], bufs->cond[buf], thr);
        rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb, cnt);
        rt->sld(e, coreId, DataType::kF64, val, bufs->val[buf], tb,
                cnt);
        return rt->irmw(e, coreId, DataType::kF64, AluOp::kAdd, a,
                        bufs->idx[buf], bufs->val[buf],
                        bufs->cond[buf]);
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                           emitTile);
}

bool
UmeGradient::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    // Recompute from scratch: expected A = init + conditional adds.
    Rng rng(variant_ == Variant::kZone ? 5150 : 5151);
    std::vector<double> expect(n_);
    std::vector<double> dval(n_), vval(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        dval[i] = rng.real();
        vval[i] = static_cast<double>(rng.below(16) + 1);
        expect[i] = static_cast<double>(rng.below(4));
    }
    for (std::size_t i = 0; i < n_; ++i) {
        if (dval[i] >= threshold_)
            expect[map_[i]] += vval[i];
    }
    for (std::size_t i = 0; i < n_; ++i) {
        if (mem.read<double>(a_ + i * 8) != expect[i])
            return false;
    }
    return true;
}

// =====================================================================
// GZZI / GZPI: out[z] = sum_j A[B[C[j]]] if D[j] >= F,
//              j in H[K[i]] .. H[K[i]+1]
// =====================================================================

UmeGradientIndirect::UmeGradientIndirect(Variant v, Scale s)
    : variant_(v), outer_(s.of(1 << 17))
{
    const std::uint64_t seed = variant_ == Variant::kZone ? 61 : 67;
    ranges_ = makeMeshRanges(static_cast<std::uint32_t>(outer_), 4, 8,
                             seed);
    const std::uint32_t inner = ranges_.innerTotal;
    cmap_ = makeMeshMap(inner, inner / 16, seed + 1);
    bmap_ = makeMeshMap(inner, inner / 24, seed + 2);
}

void
UmeGradientIndirect::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const std::uint32_t inner = ranges_.innerTotal;

    a_ = alloc.alloc(Addr{inner} * 8);
    b_ = alloc.alloc(Addr{inner} * 4);
    c_ = alloc.alloc(Addr{inner} * 4);
    d_ = alloc.alloc(Addr{inner} * 8);
    lo_ = alloc.alloc((outer_ + 1) * 4); //!< H array
    hi_ = alloc.alloc(outer_ * 4);       //!< K array (shuffled ids)
    out_ = alloc.alloc(outer_ * 8);

    Rng rng(variant_ == Variant::kZone ? 808 : 809);
    for (std::uint32_t j = 0; j < inner; ++j) {
        mem.write<double>(a_ + Addr{j} * 8, rng.real());
        mem.write<std::uint32_t>(b_ + Addr{j} * 4, bmap_[j]);
        mem.write<std::uint32_t>(c_ + Addr{j} * 4, cmap_[j]);
        mem.write<double>(d_ + Addr{j} * 8, rng.real());
    }
    for (std::size_t i = 0; i < outer_; ++i)
        mem.write<std::uint32_t>(lo_ + i * 4, ranges_.lo[i]);
    mem.write<std::uint32_t>(lo_ + outer_ * 4, ranges_.hi.back());

    // K: a shuffled traversal order over the outer entities.
    std::vector<std::uint32_t> karr(outer_);
    for (std::size_t i = 0; i < outer_; ++i)
        karr[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = outer_ - 1; i > 0; --i)
        std::swap(karr[i], karr[rng.below(i + 1)]);
    for (std::size_t i = 0; i < outer_; ++i)
        mem.write<std::uint32_t>(hi_ + i * 4, karr[i]);

    registerAll(sys, a_, Addr{inner} * 8);
    registerAll(sys, b_, Addr{inner} * 4);
    registerAll(sys, c_, Addr{inner} * 4);
    registerAll(sys, d_, Addr{inner} * 8);
    registerAll(sys, lo_, (outer_ + 1) * 4);
    registerAll(sys, hi_, outer_ * 4);

    // The gathered field and corner mask were produced by the
    // preceding phase.
    sys.warmLlc(a_, Addr{inner} * 8);
    sys.warmLlc(d_, Addr{inner} * 8);
}

namespace
{

class UmeIndirectBaseKernel : public LoopKernel
{
  public:
    UmeIndirectBaseKernel(SimMemory &mem, Addr a, Addr b, Addr c,
                          Addr d, Addr h, Addr k, Addr out, double thr,
                          std::size_t bg, std::size_t en)
        : LoopKernel(bg, en), mem_(mem), a_(a), b_(b), c_(c), d_(d),
          h_(h), k_(k), out_(out), thr_(thr)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto z = mem_.read<std::uint32_t>(k_ + i * 4);
        const SeqNum lk = e.load(k_ + i * 4, 4, pc::kAux, z);
        const auto jb = mem_.read<std::uint32_t>(h_ + Addr{z} * 4);
        const auto je = mem_.read<std::uint32_t>(h_ + Addr{z} * 4 + 4);
        const SeqNum llo =
            e.load(h_ + Addr{z} * 4, 4, pc::kAux, jb, lk);
        const SeqNum lhi =
            e.load(h_ + Addr{z} * 4 + 4, 4, pc::kAux, je, lk);

        SeqNum sum = e.fpOp(1, llo, lhi);
        double acc = 0.0;
        for (std::uint32_t j = jb; j < je; ++j) {
            const double dv = mem_.read<double>(d_ + Addr{j} * 8);
            const SeqNum ld = e.load(d_ + Addr{j} * 8, 8, pc::kValue,
                                     std::bit_cast<std::uint64_t>(dv));
            e.fpOp(3, ld); // compare
            if (dv < thr_)
                continue;
            const auto cv = mem_.read<std::uint32_t>(c_ + Addr{j} * 4);
            const SeqNum lc =
                e.load(c_ + Addr{j} * 4, 4, pc::kIndex, cv);
            const SeqNum calc1 = e.intOp(1, lc);
            const auto bv =
                mem_.read<std::uint32_t>(b_ + Addr{cv} * 4);
            const SeqNum lb =
                e.load(b_ + Addr{cv} * 4, 4, pc::kTarget, bv, calc1);
            const SeqNum calc2 = e.intOp(1, lb);
            const double av = mem_.read<double>(a_ + Addr{bv} * 8);
            const SeqNum la = e.load(a_ + Addr{bv} * 8, 8, pc::kSpd,
                                     std::bit_cast<std::uint64_t>(av),
                                     calc2);
            sum = e.fpOp(4, la, sum);
            acc += av;
        }
        mem_.write<double>(out_ + i * 8, acc);
        e.store(out_ + i * 8, 8, pc::kOut, sum);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, c_, d_, h_, k_, out_;
    double thr_;
};

/**
 * DX100 variant: ILD the range bounds through K, fuse ranges with RNG,
 * gather D (condition), C, B[C] and A[B[C]] with conditioned chained
 * ILDs, then reduce per-outer sums on the core from the scratchpad.
 */
class UmeIndirectDxKernel : public cpu::Kernel
{
  public:
    UmeIndirectDxKernel(runtime::Dx100Runtime &rt, int coreId,
                        SimMemory &mem, Addr a, Addr b, Addr c, Addr d,
                        Addr h, Addr k, Addr out, double thr,
                        std::size_t bg, std::size_t en)
        : rt_(rt), coreId_(coreId), mem_(mem), a_(a), b_(b), c_(c),
          d_(d), h_(h), k_(k), out_(out), thr_(thr), pos_(bg),
          end_(en)
    {
        tK_ = rt_.allocTile();
        tLo_ = rt_.allocTile();
        tHi_ = rt_.allocTile();
        tO_ = rt_.allocTile();
        tJ_ = rt_.allocTile();
        tCond_ = rt_.allocTile();
        tDat_ = rt_.allocTile();
    }

    bool more() const override { return pos_ < end_; }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        if (chunkLeft_ == 0) {
            // New outer chunk: load K, bounds lo/hi via indirection.
            chunkBegin_ = pos_;
            chunkCount_ = static_cast<std::uint32_t>(
                std::min<std::size_t>(rt_.tileElems() / 2,
                                      end_ - pos_));
            rt_.sld(e, coreId_, DataType::kU32, k_, tK_, chunkBegin_,
                    chunkCount_);
            rt_.ild(e, coreId_, DataType::kU32, h_, tLo_, tK_);
            rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tK_, tK_,
                     1);
            rt_.ild(e, coreId_, DataType::kU32, h_, tHi_, tK_);
            chunkConsumed_ = 0;
            chunkLeft_ = chunkCount_;
        }

        // One RNG batch over the remaining ranges of this chunk.
        std::uint32_t consumed = 0;
        rt_.rng(e, coreId_, tO_, tJ_, tLo_, tHi_, chunkConsumed_,
                &consumed);
        dx_assert(consumed > 0, "range longer than a tile");

        // cond = (D[j] >= F); then gather C, B[C], A[B[C]].
        rt_.ild(e, coreId_, DataType::kF64, d_, tCond_, tJ_);
        rt_.alus(e, coreId_, DataType::kF64, AluOp::kGe, tCond_,
                 tCond_, std::bit_cast<std::uint64_t>(thr_));
        rt_.ild(e, coreId_, DataType::kU32, c_, tDat_, tJ_, tCond_);
        rt_.ild(e, coreId_, DataType::kU32, b_, tDat_, tDat_, tCond_);
        const std::uint64_t tok = rt_.ild(e, coreId_, DataType::kF64,
                                          a_, tDat_, tDat_, tCond_);
        rt_.wait(e, tok);

        // Core-side reduction per outer entity.
        const std::uint32_t outN = rt_.tileSize(tDat_);
        SeqNum sum = kNoSeq;
        double acc = 0.0;
        std::uint64_t curOuter = ~std::uint64_t{0};
        auto flush = [&](cpu::OpEmitter &em) {
            if (curOuter == ~std::uint64_t{0})
                return;
            const Addr outAddr =
                out_ + (chunkBegin_ + curOuter) * 8;
            mem_.write<double>(outAddr, acc);
            em.store(outAddr, 8, pc::kOut, sum);
            em.intOp();
            acc = 0.0;
            sum = kNoSeq;
        };
        for (std::uint32_t x = 0; x < outN; ++x) {
            const std::uint64_t o = rt_.spdValue(tO_, x);
            if (o != curOuter) {
                flush(e);
                curOuter = o;
            }
            const SeqNum lo2 =
                e.load(rt_.spdAddr(tO_, x), 8, pc::kSpd, o);
            if (rt_.spdValue(tCond_, x)) {
                const std::uint64_t av = rt_.spdValue(tDat_, x);
                const SeqNum la = e.load(rt_.spdAddr(tDat_, x), 8,
                                         pc::kSpd, av, lo2);
                sum = e.fpOp(4, la, sum);
                acc += std::bit_cast<double>(av);
            }
        }
        flush(e);

        chunkConsumed_ += consumed;
        chunkLeft_ -= consumed;
        pos_ += consumed;
    }

  private:
    runtime::Dx100Runtime &rt_;
    int coreId_;
    SimMemory &mem_;
    Addr a_, b_, c_, d_, h_, k_, out_;
    double thr_;
    std::size_t pos_, end_;
    std::size_t chunkBegin_ = 0;
    std::uint32_t chunkCount_ = 0;
    std::uint32_t chunkConsumed_ = 0;
    std::uint32_t chunkLeft_ = 0;
    unsigned tK_, tLo_, tHi_, tO_, tJ_, tCond_, tDat_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
UmeGradientIndirect::makeKernel(sim::System &sys, unsigned core,
                                bool dx100)
{
    const auto [begin, end] = coreSlice(outer_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<UmeIndirectBaseKernel>(
            sys.memory(), a_, b_, c_, d_, lo_, hi_, out_, threshold_,
            begin, end);
    }
    return std::make_unique<UmeIndirectDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), sys.memory(),
        a_, b_, c_, d_, lo_, hi_, out_, threshold_, begin, end);
}

bool
UmeGradientIndirect::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::size_t i = 0; i < outer_; ++i) {
        const auto z = mem.read<std::uint32_t>(hi_ + i * 4);
        double acc = 0.0;
        for (std::uint32_t j = ranges_.lo[z]; j < ranges_.hi[z]; ++j) {
            if (mem.read<double>(d_ + Addr{j} * 8) >= threshold_) {
                const auto cv =
                    mem.read<std::uint32_t>(c_ + Addr{j} * 4);
                const auto bv =
                    mem.read<std::uint32_t>(b_ + Addr{cv} * 4);
                acc += mem.read<double>(a_ + Addr{bv} * 8);
            }
        }
        if (mem.read<double>(out_ + i * 8) != acc)
            return false;
    }
    return true;
}

} // namespace dx::wl

/**
 * @file
 * Declarative experiment matrix: a named set of workloads crossed with
 * a tagged set of system configurations. Benches declare their grid
 * (plus an optional sparse limit per workload) and a formatter over
 * the finished MatrixResult instead of open-coding nested loops; the
 * cells execute on the parallel runner and land in declaration order.
 *
 * Fig. 9/10/11 share one matrix object (RunMatrix::paperMain()), so
 * their cache sharing holds by construction rather than by the three
 * benches happening to spell the same cache keys.
 */

#ifndef DX_SIM_RUN_MATRIX_HH
#define DX_SIM_RUN_MATRIX_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace dx::sim
{

/** A row of the matrix: a named workload factory. */
struct WorkloadSpec
{
    std::string name;
    std::string suite;
    wl::WorkloadFactory make;
    /**
     * Micro workloads with hard-coded sizes ignore Scale and are run
     * fresh every time (cacheable = false); the paper workloads are
     * keyed on (name, tag, scale) in the on-disk cache.
     */
    bool cacheable = true;
};

/** A column of the matrix: a tagged system configuration. */
struct ConfigSpec
{
    std::string tag;
    SystemConfig cfg;
    /**
     * Multiplier on ExpOptions::scale for this column (Fig. 14
     * doubles the dataset along with the core count).
     */
    double scaleMult = 1.0;
};

/** Outcome of one (workload, config) cell. */
struct CellResult
{
    RunStats stats;          //!< valid only when ok
    bool ok = false;
    bool fromCache = false;
    std::string error;       //!< failure description when !ok
};

class MatrixResult
{
  public:
    struct Cell
    {
        std::size_t workload; //!< index into workloads()
        std::size_t config;   //!< index into configs()
        CellResult result;
    };

    /** Cell lookup; dx_fatal if the grid has no such cell. */
    const CellResult &cell(const std::string &workload,
                           const std::string &tag) const;

    /** Cell lookup; nullptr if absent. */
    const CellResult *find(const std::string &workload,
                           const std::string &tag) const;

    /** Cells in declaration order (workload-major). */
    const std::vector<Cell> &cells() const { return cells_; }

    const std::vector<WorkloadSpec> &workloads() const
    {
        return workloads_;
    }
    const std::vector<ConfigSpec> &configs() const { return configs_; }

    std::size_t failures() const;

    /** Machine-readable dump of every cell (BENCH_*.json payload). */
    std::string toJson(const std::string &benchName,
                       const ExpOptions &opt) const;

  private:
    friend class RunMatrix;
    std::vector<WorkloadSpec> workloads_;
    std::vector<ConfigSpec> configs_;
    std::vector<Cell> cells_;
};

class RunMatrix
{
  public:
    explicit RunMatrix(std::string name);

    RunMatrix &add(const wl::WorkloadEntry &entry);
    RunMatrix &add(WorkloadSpec spec);
    RunMatrix &addWorkloads(const std::vector<wl::WorkloadEntry> &es);
    RunMatrix &addConfig(std::string tag, const SystemConfig &cfg,
                         double scaleMult = 1.0);

    /**
     * Restrict @p workload to the given config tags (sparse grid).
     * Workloads without a limit run under every config.
     */
    RunMatrix &limit(const std::string &workload,
                     std::vector<std::string> tags);

    const std::string &name() const { return name_; }
    const std::vector<WorkloadSpec> &workloads() const
    {
        return workloads_;
    }
    const std::vector<ConfigSpec> &configs() const { return configs_; }

    /**
     * Execute every (workload, config) cell on opt.effectiveJobs()
     * workers. Cached cells are reloaded instead of re-simulated; the
     * cache is re-checked inside the job right before simulating, so
     * an entry published meanwhile by a concurrent bench is picked
     * up. A failed cell is reported (tag + error) and the rest of the
     * matrix continues.
     */
    MatrixResult run(const ExpOptions &opt) const;

    /** The Fig. 9/10/11 grid: 12 paper workloads x baseline/dx100. */
    static RunMatrix paperMain();

  private:
    bool cellEnabled(const WorkloadSpec &w, const ConfigSpec &c) const;

    std::string name_;
    std::vector<WorkloadSpec> workloads_;
    std::vector<ConfigSpec> configs_;
    std::map<std::string, std::set<std::string>> limits_;
};

/** Write result.toJson to BENCH_<benchName>.json when opt.json. */
void maybeWriteJson(const MatrixResult &result,
                    const std::string &benchName,
                    const ExpOptions &opt);

} // namespace dx::sim

#endif // DX_SIM_RUN_MATRIX_HH

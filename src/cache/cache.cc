#include "cache/cache.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "sim/stat_registry.hh"

namespace dx::cache
{

Cache::Cache(const Config &cfg, CachePort *downstream)
    : Component(cfg.name), cfg_(cfg)
{
    dx_assert(downstream, "cache needs a downstream port");
    downstream_.bind(*downstream);
    downstreamPopAddr_ = downstream_->popCountAddr();
    const std::uint64_t lines = cfg_.sizeBytes / kLineBytes;
    dx_assert(lines % cfg_.assoc == 0, "size/assoc mismatch");
    numSets_ = static_cast<unsigned>(lines / cfg_.assoc);
    dx_assert((numSets_ & (numSets_ - 1)) == 0,
              "set count must be a power of two");
    sets_.assign(numSets_, std::vector<Way>(cfg_.assoc));
    mshrs_.assign(cfg_.mshrs, Mshr{});
}

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> pf)
{
    prefetcher_ = std::move(pf);
}

unsigned
Cache::setIndex(Addr line) const
{
    return static_cast<unsigned>((line >> kLineShift) & (numSets_ - 1));
}

Cache::Way *
Cache::lookup(Addr line)
{
    auto &set = sets_[setIndex(line)];
    for (auto &way : set) {
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

int
Cache::mshrFor(Addr line) const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (mshrs_[i].valid && mshrs_[i].line == line)
            return static_cast<int>(i);
    }
    return -1;
}

int
Cache::freeMshr() const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (!mshrs_[i].valid)
            return static_cast<int>(i);
    }
    return -1;
}

bool
Cache::canAccept() const
{
    return queue_.size() < cfg_.queueSize;
}

void
Cache::request(const CacheReq &req)
{
    dx_assert(canAccept(), cfg_.name, ": input queue overflow");
    if (queue_.empty()) {
        // The push below becomes the new head: every head-derived memo
        // must go, and a kTimed "nothing until sleepUntil_" verdict
        // tightens to the new head's service time.
        selfValid_ = false;
        memoValid_ = false;
        if (qMemo_ == QMemo::kTimed)
            sleepUntil_ = std::min(sleepUntil_, now_ + cfg_.latency);
        else
            qMemo_ = QMemo::kNone;
    }
    // Non-empty queue: the head (and thus its stall classification and
    // any quiescence verdict) is untouched — the queue is served in
    // order, so an entry behind the head cannot act before it. The
    // memos survive the arrival.
    queue_.push_back({req, now_ + cfg_.latency});
}

bool
Cache::containsLine(Addr line) const
{
    line = lineAlign(line);
    const auto &set = sets_[setIndex(line)];
    for (const auto &way : set) {
        if (way.valid && way.tag == line)
            return true;
    }
    return mshrFor(line) >= 0;
}

bool
Cache::tagsHold(Addr line) const
{
    line = lineAlign(line);
    const auto &set = sets_[setIndex(line)];
    for (const auto &way : set) {
        if (way.valid && way.tag == line)
            return true;
    }
    return false;
}

bool
Cache::invalidateLine(Addr line)
{
    selfValid_ = false;
    qMemo_ = QMemo::kNone;
    memoValid_ = false;
    line = lineAlign(line);
    auto &set = sets_[setIndex(line)];
    for (auto &way : set) {
        if (way.valid && way.tag == line) {
            const bool dirty = way.dirty;
            way = Way{};
            return dirty;
        }
    }
    return false;
}

void
Cache::installLine(Addr line, bool dirty, bool prefetched)
{
    // Installing a line other than the head's cannot break a kForward
    // verdict (the head still misses: evictions only remove lines the
    // head was not hitting anyway — see complete). Any other
    // class, or an install of the head's own line, must reclassify.
    if (selfClass_ != SelfClass::kForward ||
        (!queue_.empty() && lineAlign(queue_.front().req.addr) == line))
        selfValid_ = false;
    qMemo_ = QMemo::kNone;
    memoValid_ = false;
    auto &set = sets_[setIndex(line)];

    // Refill of a line that is already present (e.g. a full-line write
    // raced with a fill): just merge the dirty bit.
    for (auto &way : set) {
        if (way.valid && way.tag == line) {
            way.dirty = way.dirty || dirty;
            way.lastUse = ++useCounter_;
            return;
        }
    }

    Way *victim = nullptr;
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }

    if (victim->valid) {
        ++stats_.evictions;
        bool victimDirty = victim->dirty;
        if (cfg_.inclusiveRoot) {
            for (Cache *child : children_) {
                if (child->invalidateLine(victim->tag))
                    victimDirty = true;
                ++stats_.backInvalidates;
            }
        }
        if (victimDirty) {
            writebacks_.push_back(victim->tag);
            ++stats_.writebacks;
        }
    }

    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lastUse = ++useCounter_;
}

bool
Cache::processRequest(const CacheReq &req)
{
    const Addr line = lineAlign(req.addr);
    const bool demand = req.origin == mem::Origin::kCpuDemand;
    const bool dxTraffic = req.origin == mem::Origin::kDx100;

    Way *way = lookup(line);
    if (way) {
        if (demand) {
            ++stats_.demandAccesses;
            ++stats_.demandHits;
            if (way->prefetched) {
                ++stats_.prefetchesUseful;
                way->prefetched = false;
            }
            if (prefetcher_)
                prefetcher_->observe(req, false);
        } else if (dxTraffic) {
            ++stats_.dxHits;
        }
        if (req.write)
            way->dirty = true;
        way->lastUse = ++useCounter_;
        if (req.sink)
            req.sink->complete(req.tag);
        return true;
    }

    // Full-line writes (writebacks from above, bulk stores) allocate
    // without fetching.
    if (req.write && req.fullLine) {
        installLine(line, true, false);
        if (req.sink)
            req.sink->complete(req.tag);
        return true;
    }

    // Miss. Coalesce into an existing MSHR if one is outstanding.
    const int existing = mshrFor(line);
    if (existing >= 0) {
        Mshr &m = mshrs_[static_cast<unsigned>(existing)];
        if (m.targets.size() >= cfg_.targetsPerMshr) {
            ++stats_.stallMshrFull;
            return false;
        }
        if (demand) {
            ++stats_.demandAccesses;
            ++stats_.demandMisses;
            ++stats_.mshrCoalesced;
            if (prefetcher_)
                prefetcher_->observe(req, true);
        } else if (dxTraffic) {
            ++stats_.dxMisses;
        } else if (req.origin == mem::Origin::kPrefetch && !req.sink) {
            // A *local* prefetch racing a live fill: drop it. (A
            // forwarded prefetch from an upper level carries a sink
            // and must be answered, so it coalesces like a demand.)
            return true;
        }
        if (req.sink || req.write)
            m.targets.push_back({req.tag, req.sink, req.write});
        return true;
    }

    const int idx = freeMshr();
    if (idx < 0) {
        ++stats_.stallMshrFull;
        return false;
    }
    CacheReq probe;
    probe.addr = line;
    if (!downstream_->canAcceptReq(probe)) {
        ++stats_.stallDownstream;
        return false;
    }

    if (demand) {
        ++stats_.demandAccesses;
        ++stats_.demandMisses;
        if (prefetcher_)
            prefetcher_->observe(req, true);
    } else if (dxTraffic) {
        ++stats_.dxMisses;
    }

    Mshr &m = mshrs_[static_cast<unsigned>(idx)];
    m.valid = true;
    ++mshrsInUse_;
    m.line = line;
    m.dirtyOnFill = req.write;
    m.prefetch = req.origin == mem::Origin::kPrefetch;
    m.targets.clear();
    if (req.sink || req.write)
        m.targets.push_back({req.tag, req.sink, req.write});

    CacheReq down;
    down.addr = req.addr;
    down.write = false; // fetch; dirtiness handled on fill
    down.origin = req.origin;
    // Forward the static-instruction id and loaded value so the next
    // level's prefetcher can train on the miss stream.
    down.pc = req.pc;
    down.value = req.value;
    down.tag = static_cast<std::uint64_t>(idx);
    down.sink = this;
    downstream_->request(down);
    return true;
}

void
Cache::complete(const std::uint64_t &tag)
{
    dx_assert(tag < mshrs_.size(), cfg_.name, ": bogus fill tag");
    // A fill cannot break a kForward verdict: it frees an MSHR (one
    // stays free), installs a line that by construction is not the
    // head's (a head with an MSHR in flight would have classified as
    // coalesce or target-full), and evicts at most a line the head
    // already missed on. Every other class can genuinely change —
    // a freed MSHR unblocks kMshrFull, a fill can turn kNone's hit
    // into a miss via eviction — so those reclassify.
    if (selfClass_ != SelfClass::kForward)
        selfValid_ = false;
    qMemo_ = QMemo::kNone;
    memoValid_ = false;
    Mshr &m = mshrs_[tag];
    dx_assert(m.valid, cfg_.name, ": fill for idle MSHR");

    installLine(m.line, m.dirtyOnFill, m.prefetch);
    if (m.prefetch)
        ++stats_.prefetchesIssued;

    for (const auto &t : m.targets) {
        if (t.sink)
            t.sink->complete(t.tag);
    }
    m = Mshr{};
    dx_assert(mshrsInUse_ > 0, cfg_.name, ": MSHR count underflow");
    --mshrsInUse_;
}

void
Cache::drainWritebacks()
{
    while (!writebacks_.empty()) {
        CacheReq wb;
        wb.addr = writebacks_.front();
        wb.write = true;
        wb.fullLine = true;
        wb.origin = mem::Origin::kWriteback;
        wb.sink = nullptr;
        if (!downstream_->canAcceptReq(wb))
            return;
        downstream_->request(wb);
        writebacks_.pop_front();
    }
}

void
Cache::issuePrefetches()
{
    if (!prefetcher_)
        return;
    for (unsigned n = 0; n < 2; ++n) {
        Addr line;
        if (!prefetcher_->nextPrefetch(line))
            return;
        if (containsLine(line))
            continue;
        const int idx = freeMshr();
        CacheReq probe;
        probe.addr = lineAlign(line);
        if (idx < 0 || !downstream_->canAcceptReq(probe))
            return;

        Mshr &m = mshrs_[static_cast<unsigned>(idx)];
        m.valid = true;
        ++mshrsInUse_;
        m.line = lineAlign(line);
        m.dirtyOnFill = false;
        m.prefetch = true;
        m.targets.clear();

        CacheReq down;
        down.addr = m.line;
        down.write = false;
        down.origin = mem::Origin::kPrefetch;
        down.tag = static_cast<std::uint64_t>(idx);
        down.sink = this;
        downstream_->request(down);
    }
}

void
Cache::tick()
{
    ++now_;
    memoValid_ = false;
    selfValid_ = false;
    qMemo_ = QMemo::kNone;
    drainWritebacks();

    for (unsigned n = 0; n < cfg_.width && !queue_.empty(); ++n) {
        Pending &p = queue_.front();
        if (p.readyAt > now_)
            break;
        if (!processRequest(p.req))
            break; // structural stall: retry next cycle
        queue_.pop_front();
        ++popCount_; // a waiter upstream may be watching for space
    }

    issuePrefetches();
}

std::string
Cache::debugDump() const
{
    std::ostringstream os;
    os << cfg_.name << ": queue=" << queue_.size()
       << " writebacks=" << writebacks_.size() << " mshrs:";
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        const Mshr &m = mshrs_[i];
        if (!m.valid)
            continue;
        os << " [" << i << " line=0x" << std::hex << m.line << std::dec
           << " targets=" << m.targets.size()
           << (m.prefetch ? " pf" : "")
           << (m.dirtyOnFill ? " dirty" : "") << "]";
    }
    for (const auto &p : queue_) {
        os << " {q addr=0x" << std::hex << p.req.addr << std::dec
           << " w=" << p.req.write << " org="
           << static_cast<int>(p.req.origin) << "}";
    }
    return os.str();
}

bool
Cache::busy() const
{
    return !queue_.empty() || !writebacks_.empty() || mshrsInUse_ > 0;
}

bool
Cache::drained() const
{
    return !busy() && (!prefetcher_ || !prefetcher_->pending());
}

Cache::HeadStall
Cache::headStall() const
{
    const Addr line = lineAlign(queue_.front().req.addr);
    if (!selfValid_) {
        const CacheReq &req = queue_.front().req;
        if (tagsHold(line) || (req.write && req.fullLine)) {
            // Hit, or a full-line write allocating in place.
            selfClass_ = SelfClass::kNone;
        } else if (const int existing = mshrFor(line); existing >= 0) {
            const Mshr &m = mshrs_[static_cast<unsigned>(existing)];
            selfClass_ = m.targets.size() >= cfg_.targetsPerMshr
                             ? SelfClass::kMshrFull
                             : SelfClass::kNone; // coalesce (or drop)
        } else if (mshrsInUse_ >= cfg_.mshrs) {
            selfClass_ = SelfClass::kMshrFull;
        } else {
            selfClass_ = SelfClass::kForward;
        }
        selfValid_ = true;
    }
    switch (selfClass_) {
      case SelfClass::kNone:
        return HeadStall::kNone;
      case SelfClass::kMshrFull:
        return HeadStall::kMshrFull;
      case SelfClass::kForward:
        break;
    }
    CacheReq probe;
    probe.addr = line;
    return downstream_->canAcceptReq(probe) ? HeadStall::kNone
                                                : HeadStall::kDownstream;
}

bool
Cache::quiescentSlow() const
{
    // Memoized verdicts: nothing the slow path reads has changed since
    // it last ran (see the QMemo member comment for the argument).
    if (qMemo_ == QMemo::kTimed && now_ + 1 < sleepUntil_)
        return true;
    if (qMemo_ == QMemo::kBlocked &&
        downstream_->popCount() == blockedPops_) {
        return true;
    }
    qMemo_ = QMemo::kNone;

    if (!writebacks_.empty() ||
        (prefetcher_ && prefetcher_->pending())) {
        return false;
    }
    if (queue_.empty()) {
        qMemo_ = QMemo::kTimed;
        sleepUntil_ = kNeverCycle;
        return true;
    }
    if (queue_.front().readyAt > now_ + 1) {
        qMemo_ = QMemo::kTimed;
        sleepUntil_ = queue_.front().readyAt;
        return true;
    }
    // Due head: quiescent only if the retry would structurally stall,
    // in which case its sole effect is the stall counter skipCycles()
    // accumulates. Nothing the stall depends on (MSHRs, downstream
    // queue space) can change except through external stimulus, which
    // re-evaluates quiescence.
    memoStall_ = headStall();
    memoValid_ = true;
    switch (memoStall_) {
      case HeadStall::kNone:
        return false;
      case HeadStall::kMshrFull:
        // Unblocks only via a fill, which clears the memo.
        qMemo_ = QMemo::kTimed;
        sleepUntil_ = kNeverCycle;
        return true;
      case HeadStall::kDownstream: {
        const std::uint64_t pops = downstreamPopAddr_
                                       ? *downstreamPopAddr_
                                       : downstream_->popCount();
        if (pops != kPortPopsUnknown) {
            qMemo_ = QMemo::kBlocked;
            blockedPops_ = pops;
        }
        return true;
      }
    }
    return true; // unreachable
}

Cycle
Cache::nextEventAtSlow() const
{
    // The input queue is served in order, so only the head can become
    // due; MSHR fills arrive via complete (external stimulus). A
    // due-but-stalled head also unblocks only via external stimulus,
    // and entries behind it are blocked in order.
    if (queue_.empty())
        return kNeverCycle;
    const Cycle readyAt = queue_.front().readyAt;
    return readyAt > now_ + 1 ? readyAt : kNeverCycle;
}

void
Cache::skipCyclesSlow(Cycle n)
{
    if (!queue_.empty() && queue_.front().readyAt <= now_ + 1) {
        // The memo persists across skips: it is cleared by the entry
        // points that can change the classification, not consumed here.
        const HeadStall stall = memoValid_ ? memoStall_ : headStall();
        switch (stall) {
          case HeadStall::kMshrFull:
            stats_.stallMshrFull += n;
            break;
          case HeadStall::kDownstream:
            stats_.stallDownstream += n;
            break;
          case HeadStall::kNone:
            break;
        }
    }
    now_ += n;
}

void
Cache::registerStats(StatRegistry &reg) const
{
    StatRegistry::Group g = reg.group(path());
    g.counter("demandHits", stats_.demandHits);
    g.counter("demandMisses", stats_.demandMisses);
    g.counter("demandAccesses", stats_.demandAccesses);
    g.counter("dxHits", stats_.dxHits);
    g.counter("dxMisses", stats_.dxMisses);
    g.counter("mshrCoalesced", stats_.mshrCoalesced);
    g.counter("writebacks", stats_.writebacks);
    g.counter("evictions", stats_.evictions);
    g.counter("backInvalidates", stats_.backInvalidates);
    g.counter("prefetchesIssued", stats_.prefetchesIssued);
    g.counter("prefetchesUseful", stats_.prefetchesUseful);
    g.counter("stallMshrFull", stats_.stallMshrFull);
    g.counter("stallDownstream", stats_.stallDownstream);
}

} // namespace dx::cache

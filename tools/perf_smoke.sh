#!/usr/bin/env bash
# Perf smoke for the quiescence-aware tick scheduler.
#
# Times each figure bench twice — under the naive per-cycle loop
# (DX_NAIVE_TICK=1) and under the quiescence-aware scheduler — at a
# tiny scale, keeps the min over DX_PERF_REPS repetitions (single-run
# wall clock is noisy on shared CI runners), and then:
#
#   1. fails if the two runs' BENCH_*.json stats differ by a single
#      bit (the scheduler must be invisible in every figure), and
#   2. fails if any bench got slower than DX_PERF_MIN_SPEEDUP x.
#
# Artifacts: BENCH_<fig>_naive.json / BENCH_<fig>_sched.json plus a
# perf_smoke_summary.txt table, all in the repo root.
#
# Tunables (env): DX_PERF_BUILD_DIR (build-perf), DX_PERF_SCALE (0.05),
# DX_PERF_REPS (3), DX_PERF_MIN_SPEEDUP (1.0), DX_PERF_BENCHES.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${DX_PERF_BUILD_DIR:-build-perf}
SCALE=${DX_PERF_SCALE:-0.05}
REPS=${DX_PERF_REPS:-3}
MIN_SPEEDUP=${DX_PERF_MIN_SPEEDUP:-1.0}
# target:jsonName pairs (jsonName is what --json writes as BENCH_<x>.json)
BENCHES=${DX_PERF_BENCHES:-"fig08bc_microbench_allmiss:fig08bc fig09_speedup:fig09"}

targets=""
for b in $BENCHES; do targets="$targets ${b%%:*}"; done

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
# shellcheck disable=SC2086 # word-split the target list on purpose
cmake --build "$BUILD_DIR" -j "$(nproc)" --target $targets

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# run_bench <binary> <jsonName> <mode: naive|sched>
# Prints min elapsed ms; leaves BENCH_<jsonName>_<mode>.json behind.
run_bench() {
    local bin=$1 json=$2 mode=$3 best= t0 t1 dt rep
    for rep in $(seq "$REPS"); do
        t0=$(now_ms)
        if [ "$mode" = naive ]; then
            DX_NAIVE_TICK=1 "$bin" --scale="$SCALE" --no-cache --json \
                > /dev/null
        else
            DX_NAIVE_TICK=0 "$bin" --scale="$SCALE" --no-cache --json \
                > /dev/null
        fi
        t1=$(now_ms)
        dt=$((t1 - t0))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then
            best=$dt
        fi
    done
    mv "BENCH_${json}.json" "BENCH_${json}_${mode}.json"
    echo "$best"
}

fail=0
summary=perf_smoke_summary.txt
printf '%-30s %10s %10s %8s\n' bench naive_ms sched_ms speedup > "$summary"

for b in $BENCHES; do
    target=${b%%:*} json=${b##*:}
    bin="$BUILD_DIR/bench/$target"
    naive_ms=$(run_bench "$bin" "$json" naive)
    sched_ms=$(run_bench "$bin" "$json" sched)

    if ! cmp -s "BENCH_${json}_naive.json" "BENCH_${json}_sched.json"; then
        echo "FAIL: $target stats differ between tick schedulers:" >&2
        diff "BENCH_${json}_naive.json" "BENCH_${json}_sched.json" >&2 || true
        fail=1
    fi

    ratio=$(awk -v n="$naive_ms" -v s="$sched_ms" \
        'BEGIN { printf "%.2f", (s > 0 ? n / s : 0) }')
    printf '%-30s %10s %10s %7sx\n' \
        "$target" "$naive_ms" "$sched_ms" "$ratio" | tee -a "$summary"
    if awk -v r="$ratio" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(r < m) }'; then
        echo "FAIL: $target speedup ${ratio}x < required ${MIN_SPEEDUP}x" >&2
        fail=1
    fi
done

exit "$fail"

/**
 * @file
 * Component: the common base of everything the simulator instantiates.
 *
 * A component has a name, a position in the ownership tree (parent /
 * children, dotted path like "system.core0.l1d"), the tick/quiescence
 * scheduling contract (see DESIGN.md §4c and §5) folded in as virtuals,
 * and two introspection hooks: registerStats() publishes its counters
 * under its path into a StatRegistry, portRefs() reports its request
 * port slots for the connectivity audit.
 *
 * The virtuals exist for generic traversal — stat registration, the
 * topology tests, debugging. The System scheduler keeps calling the
 * contract through concrete types (every migrated class is `final`), so
 * the memoized inline fast paths stay statically dispatched and the
 * naive-vs-scheduled bit-identity and performance are unchanged.
 */

#ifndef DX_SIM_COMPONENT_HH
#define DX_SIM_COMPONENT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dx
{

class StatRegistry;

/** One request-port slot of a component, for the connectivity audit. */
struct PortRef
{
    const char *name;
    bool bound;
};

class Component
{
  public:
    explicit Component(std::string name);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return name_; }
    Component *parent() const { return parent_; }
    const std::vector<Component *> &children() const { return children_; }

    /**
     * Attach @p child beneath this component in the naming tree.
     * Ownership stays with the caller (the topology holds the
     * unique_ptrs); the tree only describes structure.
     */
    void adopt(Component &child);

    /** Rename before adoption (multi-instance disambiguation). */
    void rename(std::string name);

    /** Dotted path from the root, e.g. "system.core0.l1d". */
    std::string path() const;

    // ---- tick/quiescence contract (DESIGN.md §4c) ----------------------
    //
    // Passive components (never ticked — e.g. a prefetcher that acts
    // inside its cache's tick) inherit the no-op defaults; every ticked
    // component overrides the full set.

    /** Advance one local-clock cycle. */
    virtual void tick() {}

    /**
     * tick() this cycle would change nothing but the closed-form
     * per-cycle stats; see each component's override for its memo.
     */
    virtual bool quiescent() const { return true; }

    /**
     * Earliest cycle tick() could act again without external stimulus;
     * kNeverCycle when only external stimulus can wake the component.
     * Only meaningful while quiescent().
     */
    virtual Cycle nextEventAt() const { return kNeverCycle; }

    /**
     * Closed-form advance over @p n cycles the caller has proven
     * quiescent, accumulating exactly the stats the naive per-cycle
     * loop would have.
     */
    virtual void skipCycles(Cycle n) { (void)n; }

    /** This component's clock (kept in sync with the System clock). */
    virtual Cycle localNow() const { return 0; }

    /** Nothing in flight: the termination-side twin of quiescent(). */
    virtual bool drained() const { return true; }

    // ---- introspection -------------------------------------------------

    /** Publish counters/gauges under path() into @p reg. */
    virtual void registerStats(StatRegistry &reg) const { (void)reg; }

    /** This component's request-port slots (name, bound). */
    virtual std::vector<PortRef> portRefs() const { return {}; }

  private:
    std::string name_;
    Component *parent_ = nullptr;
    std::vector<Component *> children_;
};

/**
 * Depth-first pre-order traversal of the component tree rooted at
 * @p root, invoking f(const Component &) on every node.
 */
template <typename F>
void
forEachComponent(const Component &root, F &&f)
{
    f(root);
    for (const Component *c : root.children())
        forEachComponent(*c, f);
}

/** registerStats() over the whole tree (used by System's constructor). */
void registerTreeStats(const Component &root, StatRegistry &reg);

} // namespace dx

#endif // DX_SIM_COMPONENT_HH

/**
 * @file
 * Golden-stats corpus: every paper workload, at reduced scale on the
 * DX100 system, is pinned to a checked-in JSON snapshot produced by
 * the same statsToJson path the figure benches' --json flag uses. Any
 * behavioral change to the simulator — intended or not — shows up
 * here as a readable per-field diff instead of a silent drift in the
 * EXPERIMENTS.md tables.
 *
 * Regenerate after an intended change with tools/regen_golden.sh
 * (which reruns this binary under DX_REGEN_GOLDEN=1) and review the
 * resulting corpus diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

namespace fs = std::filesystem;

constexpr double kGoldenScale = 0.02;

fs::path
goldenDir()
{
    return fs::path(DX_SOURCE_DIR) / "tests" / "golden";
}

bool
regenerating()
{
    const char *env = std::getenv("DX_REGEN_GOLDEN");
    return env && env[0] == '1';
}

/**
 * Parse the flat {"field": value, ...} object statsToJson emits.
 * Values are read with strtod, which round-trips the max_digits10
 * serialization exactly, so a clean run compares bit-identical.
 */
std::optional<RunStats>
parseFlatJson(const std::string &text)
{
    RunStats s;
    std::size_t matched = 0;
    std::size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        const std::size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            return std::nullopt;
        const std::string name = text.substr(pos + 1, end - pos - 1);
        const std::size_t colon = text.find(':', end);
        if (colon == std::string::npos)
            return std::nullopt;
        const double value = std::strtod(text.c_str() + colon + 1,
                                         nullptr);
        if (!s.setField(name, value))
            return std::nullopt;
        ++matched;
        pos = colon;
    }
    return matched == RunStats::fieldCount()
               ? std::optional<RunStats>(s)
               : std::nullopt;
}

std::string
fieldDiff(const RunStats &golden, const RunStats &actual)
{
    std::ostringstream os;
    os.precision(17);
    std::vector<double> b;
    actual.forEachField(
        [&](const char *, auto v) { b.push_back(static_cast<double>(v)); });
    std::size_t i = 0;
    golden.forEachField([&](const char *name, auto v) {
        const double g = static_cast<double>(v);
        if (g != b[i]) {
            os << "  " << name << ": golden=" << g
               << " actual=" << b[i];
            if (g != 0.0)
                os << "  (" << 100.0 * (b[i] - g) / g << "%)";
            os << "\n";
        }
        ++i;
    });
    return os.str();
}

class GoldenStatsTest
    : public ::testing::TestWithParam<const WorkloadEntry *>
{
};

std::vector<const WorkloadEntry *>
allEntries()
{
    std::vector<const WorkloadEntry *> out;
    for (const auto &e : paperWorkloads())
        out.push_back(&e);
    return out;
}

std::string
entryName(const ::testing::TestParamInfo<const WorkloadEntry *> &info)
{
    return info.param->name;
}

} // namespace

TEST_P(GoldenStatsTest, MatchesCorpus)
{
    const WorkloadEntry &entry = *GetParam();
    const fs::path file = goldenDir() / (entry.name + "_dx100.json");

    auto w = entry.make(Scale{kGoldenScale});
    const RunStats actual =
        runWorkloadOnce(*w, SystemConfig::withDx100());
    const std::string actualJson = statsToJson(actual);

    if (regenerating()) {
        fs::create_directories(goldenDir());
        std::ofstream out(file);
        ASSERT_TRUE(out.good()) << "cannot write " << file;
        out << actualJson << "\n";
        GTEST_SKIP() << "regenerated " << file;
    }

    std::ifstream in(file);
    ASSERT_TRUE(in.good())
        << "missing golden file " << file
        << " — run tools/regen_golden.sh to create the corpus";
    std::stringstream buf;
    buf << in.rdbuf();

    const std::optional<RunStats> golden = parseFlatJson(buf.str());
    ASSERT_TRUE(golden.has_value())
        << "unparsable golden file " << file;

    EXPECT_TRUE(*golden == actual)
        << entry.name << " diverged from the golden corpus:\n"
        << fieldDiff(*golden, actual)
        << "If this change is intended, regenerate with "
           "tools/regen_golden.sh and commit the corpus diff.";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenStatsTest,
                         ::testing::ValuesIn(allEntries()),
                         entryName);

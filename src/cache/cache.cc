#include "cache/cache.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace dx::cache
{

Cache::Cache(const Config &cfg, CachePort *downstream)
    : cfg_(cfg), downstream_(downstream)
{
    dx_assert(downstream_, "cache needs a downstream port");
    const std::uint64_t lines = cfg_.sizeBytes / kLineBytes;
    dx_assert(lines % cfg_.assoc == 0, "size/assoc mismatch");
    numSets_ = static_cast<unsigned>(lines / cfg_.assoc);
    dx_assert((numSets_ & (numSets_ - 1)) == 0,
              "set count must be a power of two");
    sets_.assign(numSets_, std::vector<Way>(cfg_.assoc));
    mshrs_.assign(cfg_.mshrs, Mshr{});
}

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> pf)
{
    prefetcher_ = std::move(pf);
}

unsigned
Cache::setIndex(Addr line) const
{
    return static_cast<unsigned>((line >> kLineShift) & (numSets_ - 1));
}

Cache::Way *
Cache::lookup(Addr line)
{
    auto &set = sets_[setIndex(line)];
    for (auto &way : set) {
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

int
Cache::mshrFor(Addr line) const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (mshrs_[i].valid && mshrs_[i].line == line)
            return static_cast<int>(i);
    }
    return -1;
}

int
Cache::freeMshr() const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (!mshrs_[i].valid)
            return static_cast<int>(i);
    }
    return -1;
}

bool
Cache::portCanAccept() const
{
    return queue_.size() < cfg_.queueSize;
}

void
Cache::portRequest(const CacheReq &req)
{
    dx_assert(portCanAccept(), cfg_.name, ": input queue overflow");
    queue_.push_back({req, now_ + cfg_.latency});
}

bool
Cache::containsLine(Addr line) const
{
    line = lineAlign(line);
    const auto &set = sets_[setIndex(line)];
    for (const auto &way : set) {
        if (way.valid && way.tag == line)
            return true;
    }
    return mshrFor(line) >= 0;
}

bool
Cache::tagsHold(Addr line) const
{
    line = lineAlign(line);
    const auto &set = sets_[setIndex(line)];
    for (const auto &way : set) {
        if (way.valid && way.tag == line)
            return true;
    }
    return false;
}

bool
Cache::invalidateLine(Addr line)
{
    line = lineAlign(line);
    auto &set = sets_[setIndex(line)];
    for (auto &way : set) {
        if (way.valid && way.tag == line) {
            const bool dirty = way.dirty;
            way = Way{};
            return dirty;
        }
    }
    return false;
}

void
Cache::installLine(Addr line, bool dirty, bool prefetched)
{
    auto &set = sets_[setIndex(line)];

    // Refill of a line that is already present (e.g. a full-line write
    // raced with a fill): just merge the dirty bit.
    for (auto &way : set) {
        if (way.valid && way.tag == line) {
            way.dirty = way.dirty || dirty;
            way.lastUse = ++useCounter_;
            return;
        }
    }

    Way *victim = nullptr;
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }

    if (victim->valid) {
        ++stats_.evictions;
        bool victimDirty = victim->dirty;
        if (cfg_.inclusiveRoot) {
            for (Cache *child : children_) {
                if (child->invalidateLine(victim->tag))
                    victimDirty = true;
                ++stats_.backInvalidates;
            }
        }
        if (victimDirty) {
            writebacks_.push_back(victim->tag);
            ++stats_.writebacks;
        }
    }

    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lastUse = ++useCounter_;
}

bool
Cache::processRequest(const CacheReq &req)
{
    const Addr line = lineAlign(req.addr);
    const bool demand = req.origin == mem::Origin::kCpuDemand;
    const bool dxTraffic = req.origin == mem::Origin::kDx100;

    Way *way = lookup(line);
    if (way) {
        if (demand) {
            ++stats_.demandAccesses;
            ++stats_.demandHits;
            if (way->prefetched) {
                ++stats_.prefetchesUseful;
                way->prefetched = false;
            }
            if (prefetcher_)
                prefetcher_->observe(req, false);
        } else if (dxTraffic) {
            ++stats_.dxHits;
        }
        if (req.write)
            way->dirty = true;
        way->lastUse = ++useCounter_;
        if (req.sink)
            req.sink->cacheResponse(req.tag);
        return true;
    }

    // Full-line writes (writebacks from above, bulk stores) allocate
    // without fetching.
    if (req.write && req.fullLine) {
        installLine(line, true, false);
        if (req.sink)
            req.sink->cacheResponse(req.tag);
        return true;
    }

    // Miss. Coalesce into an existing MSHR if one is outstanding.
    const int existing = mshrFor(line);
    if (existing >= 0) {
        Mshr &m = mshrs_[static_cast<unsigned>(existing)];
        if (m.targets.size() >= cfg_.targetsPerMshr) {
            ++stats_.stallMshrFull;
            return false;
        }
        if (demand) {
            ++stats_.demandAccesses;
            ++stats_.demandMisses;
            ++stats_.mshrCoalesced;
            if (prefetcher_)
                prefetcher_->observe(req, true);
        } else if (dxTraffic) {
            ++stats_.dxMisses;
        } else if (req.origin == mem::Origin::kPrefetch && !req.sink) {
            // A *local* prefetch racing a live fill: drop it. (A
            // forwarded prefetch from an upper level carries a sink
            // and must be answered, so it coalesces like a demand.)
            return true;
        }
        if (req.sink || req.write)
            m.targets.push_back({req.tag, req.sink, req.write});
        return true;
    }

    const int idx = freeMshr();
    if (idx < 0) {
        ++stats_.stallMshrFull;
        return false;
    }
    CacheReq probe;
    probe.addr = line;
    if (!downstream_->portCanAcceptReq(probe)) {
        ++stats_.stallDownstream;
        return false;
    }

    if (demand) {
        ++stats_.demandAccesses;
        ++stats_.demandMisses;
        if (prefetcher_)
            prefetcher_->observe(req, true);
    } else if (dxTraffic) {
        ++stats_.dxMisses;
    }

    Mshr &m = mshrs_[static_cast<unsigned>(idx)];
    m.valid = true;
    m.line = line;
    m.dirtyOnFill = req.write;
    m.prefetch = req.origin == mem::Origin::kPrefetch;
    m.targets.clear();
    if (req.sink || req.write)
        m.targets.push_back({req.tag, req.sink, req.write});

    CacheReq down;
    down.addr = req.addr;
    down.write = false; // fetch; dirtiness handled on fill
    down.origin = req.origin;
    // Forward the static-instruction id and loaded value so the next
    // level's prefetcher can train on the miss stream.
    down.pc = req.pc;
    down.value = req.value;
    down.tag = static_cast<std::uint64_t>(idx);
    down.sink = this;
    downstream_->portRequest(down);
    return true;
}

void
Cache::cacheResponse(std::uint64_t tag)
{
    dx_assert(tag < mshrs_.size(), cfg_.name, ": bogus fill tag");
    Mshr &m = mshrs_[tag];
    dx_assert(m.valid, cfg_.name, ": fill for idle MSHR");

    installLine(m.line, m.dirtyOnFill, m.prefetch);
    if (m.prefetch)
        ++stats_.prefetchesIssued;

    for (const auto &t : m.targets) {
        if (t.sink)
            t.sink->cacheResponse(t.tag);
    }
    m = Mshr{};
}

void
Cache::drainWritebacks()
{
    while (!writebacks_.empty()) {
        CacheReq wb;
        wb.addr = writebacks_.front();
        wb.write = true;
        wb.fullLine = true;
        wb.origin = mem::Origin::kWriteback;
        wb.sink = nullptr;
        if (!downstream_->portCanAcceptReq(wb))
            return;
        downstream_->portRequest(wb);
        writebacks_.pop_front();
    }
}

void
Cache::issuePrefetches()
{
    if (!prefetcher_)
        return;
    for (unsigned n = 0; n < 2; ++n) {
        Addr line;
        if (!prefetcher_->nextPrefetch(line))
            return;
        if (containsLine(line))
            continue;
        const int idx = freeMshr();
        CacheReq probe;
        probe.addr = lineAlign(line);
        if (idx < 0 || !downstream_->portCanAcceptReq(probe))
            return;

        Mshr &m = mshrs_[static_cast<unsigned>(idx)];
        m.valid = true;
        m.line = lineAlign(line);
        m.dirtyOnFill = false;
        m.prefetch = true;
        m.targets.clear();

        CacheReq down;
        down.addr = m.line;
        down.write = false;
        down.origin = mem::Origin::kPrefetch;
        down.tag = static_cast<std::uint64_t>(idx);
        down.sink = this;
        downstream_->portRequest(down);
    }
}

void
Cache::tick()
{
    ++now_;
    drainWritebacks();

    for (unsigned n = 0; n < cfg_.width && !queue_.empty(); ++n) {
        Pending &p = queue_.front();
        if (p.readyAt > now_)
            break;
        if (!processRequest(p.req))
            break; // structural stall: retry next cycle
        queue_.pop_front();
    }

    issuePrefetches();
}

std::string
Cache::debugDump() const
{
    std::ostringstream os;
    os << cfg_.name << ": queue=" << queue_.size()
       << " writebacks=" << writebacks_.size() << " mshrs:";
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        const Mshr &m = mshrs_[i];
        if (!m.valid)
            continue;
        os << " [" << i << " line=0x" << std::hex << m.line << std::dec
           << " targets=" << m.targets.size()
           << (m.prefetch ? " pf" : "")
           << (m.dirtyOnFill ? " dirty" : "") << "]";
    }
    for (const auto &p : queue_) {
        os << " {q addr=0x" << std::hex << p.req.addr << std::dec
           << " w=" << p.req.write << " org="
           << static_cast<int>(p.req.origin) << "}";
    }
    return os.str();
}

bool
Cache::busy() const
{
    if (!queue_.empty() || !writebacks_.empty())
        return true;
    for (const auto &m : mshrs_) {
        if (m.valid)
            return true;
    }
    return false;
}

} // namespace dx::cache

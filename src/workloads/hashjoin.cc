#include "workloads/hashjoin.hh"

#include <bit>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::AluOp;
using runtime::DataType;

namespace
{

void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

} // namespace

// =====================================================================
// PRH
// =====================================================================

RadixPartition::RadixPartition(Scale s) : n_(s.of(1 << 22))
{
    keys_ = makeTupleKeys(static_cast<std::uint32_t>(n_), 333);
}

void
RadixPartition::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const unsigned cores = sys.cores();
    const std::uint32_t parts = 1u << kRadixBits;
    const std::uint32_t mask = (parts - 1) << kShift;

    c_ = alloc.alloc(n_ * 4);
    out_ = alloc.alloc(n_ * 8); //!< 8-byte tuples (key + payload)
    dests_ = alloc.alloc(n_ * 4);
    for (std::size_t i = 0; i < n_; ++i)
        mem.write<std::uint32_t>(c_ + i * 4, keys_[i]);

    // Per-core histograms -> global partition layout: partition p is
    // contiguous, with core c's sub-range inside it.
    std::vector<std::vector<std::uint32_t>> hist(
        cores, std::vector<std::uint32_t>(parts, 0));
    for (unsigned c = 0; c < cores; ++c) {
        const auto [b, e] = coreSlice(n_, c, cores);
        for (std::size_t i = b; i < e; ++i)
            ++hist[c][(keys_[i] & mask) >> kShift];
    }
    coreBase_.assign(cores, std::vector<std::uint32_t>(parts, 0));
    std::uint32_t cursor = 0;
    for (std::uint32_t p = 0; p < parts; ++p) {
        for (unsigned c = 0; c < cores; ++c) {
            coreBase_[c][p] = cursor;
            cursor += hist[c][p];
        }
    }

    registerAll(sys, c_, n_ * 4);
    registerAll(sys, out_, n_ * 8);
    registerAll(sys, dests_, n_ * 4);

    // Earlier passes of the multi-pass radix join wrote the output.
    sys.warmLlc(out_, n_ * 8);
}

namespace
{

/** Shared cursor logic for both PRH variants. */
class PrhKernelBase : public LoopKernel
{
  public:
    PrhKernelBase(SimMemory &mem, Addr c, std::uint32_t mask,
                  std::vector<std::uint32_t> cursors, std::size_t bg,
                  std::size_t en)
        : LoopKernel(bg, en), mem_(mem), c_(c), mask_(mask),
          cursors_(std::move(cursors))
    {}

  protected:
    /** Emits key load + partition function + cursor update; returns
     *  the destination slot and the dependency for the final store. */
    std::pair<std::uint32_t, SeqNum>
    emitCursor(cpu::OpEmitter &e, std::size_t i)
    {
        const auto key = mem_.read<std::uint32_t>(c_ + i * 4);
        const SeqNum lk = e.load(c_ + i * 4, 4, pc::kIndex, key);
        const SeqNum fAnd = e.intOp(1, lk);
        const SeqNum fShr = e.intOp(1, fAnd);
        const std::uint32_t p =
            (key & mask_) >> RadixPartition::kShift;
        // Cursor array is hot in cache; model as a dependent ALU pair
        // (load+inc+store collapse to register traffic after warmup).
        const SeqNum cur = e.intOp(1, fShr);
        const SeqNum inc = e.intOp(1, cur);
        const std::uint32_t dest = cursors_[p]++;
        return {dest, inc};
    }

    SimMemory &mem_;
    Addr c_;
    std::uint32_t mask_;
    std::vector<std::uint32_t> cursors_;
};

class PrhBaseKernel : public PrhKernelBase
{
  public:
    PrhBaseKernel(SimMemory &mem, Addr c, Addr out, std::uint32_t mask,
                  std::vector<std::uint32_t> cursors, std::size_t bg,
                  std::size_t en)
        : PrhKernelBase(mem, c, mask, std::move(cursors), bg, en),
          out_(out)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto [dest, dep] = emitCursor(e, i);
        const auto key = mem_.read<std::uint32_t>(c_ + i * 4);
        mem_.write<std::uint64_t>(out_ + Addr{dest} * 8, key);
        e.store(out_ + Addr{dest} * 8, 8, pc::kTarget, dep);
        e.intOp();
    }

  private:
    Addr out_;
};

/**
 * DX100 PRH: the core streams destination slots into dests[]; DX100
 * then executes the scattered store as SLD(dests) + SLD(C) + IST(out).
 */
class PrhDxKernel : public cpu::Kernel
{
  public:
    PrhDxKernel(runtime::Dx100Runtime &rt, int coreId, SimMemory &mem,
                Addr c, Addr out, Addr dests, std::uint32_t mask,
                std::vector<std::uint32_t> cursors, std::size_t bg,
                std::size_t en)
        : rt_(rt), cursorPart_(mem, c, mask, std::move(cursors), bg,
                               en),
          mem_(mem), dests_(dests)
    {
        for (int k = 0; k < 2; ++k) {
            idxT_[k] = rt_.allocTile();
            valT_[k] = rt_.allocTile();
        }
        tiled_ = std::make_unique<TiledDxKernel>(
            rt_, bg, en, rt_.tileElems(),
            [this, coreId, c, out](cpu::OpEmitter &e, unsigned buf,
                                   std::size_t tb, std::uint32_t cnt) {
                for (std::uint32_t k = 0; k < cnt; ++k)
                    cursorPart_.emitOne(e, tb + k, dests_, mem_);
                rt_.sld(e, coreId, DataType::kU32, dests_, idxT_[buf],
                        tb, cnt);
                rt_.sld(e, coreId, DataType::kU32, c, valT_[buf], tb,
                        cnt);
                return rt_.ist(e, coreId, DataType::kU64, out,
                               idxT_[buf], valT_[buf]);
            });
    }

    bool more() const override { return tiled_->more(); }
    void emitChunk(cpu::OpEmitter &e) override { tiled_->emitChunk(e); }

  private:
    /** Adapter exposing the protected cursor emitter. */
    struct CursorPart : public PrhKernelBase
    {
        using PrhKernelBase::PrhKernelBase;

        void
        emitIteration(cpu::OpEmitter &, std::size_t) override
        {
            dx_panic("not driven as a kernel");
        }

        void
        emitOne(cpu::OpEmitter &e, std::size_t i, Addr dests,
                SimMemory &mem)
        {
            const auto [dest, dep] = emitCursor(e, i);
            mem.write<std::uint32_t>(dests + i * 4, dest);
            e.store(dests + i * 4, 4, pc::kAux, dep);
        }
    };

    runtime::Dx100Runtime &rt_;
    CursorPart cursorPart_;
    SimMemory &mem_;
    Addr dests_;
    unsigned idxT_[2], valT_[2];
    std::unique_ptr<TiledDxKernel> tiled_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
RadixPartition::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    const std::uint32_t parts = 1u << kRadixBits;
    const std::uint32_t mask = (parts - 1) << kShift;
    if (!dx100) {
        return std::make_unique<PrhBaseKernel>(sys.memory(), c_, out_,
                                               mask, coreBase_[core],
                                               begin, end);
    }
    return std::make_unique<PrhDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), sys.memory(),
        c_, out_, dests_, mask, coreBase_[core], begin, end);
}

bool
RadixPartition::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    const std::uint32_t parts = 1u << kRadixBits;
    const std::uint32_t mask = (parts - 1) << kShift;
    const unsigned cores = sys.cores();

    auto cursors = coreBase_;
    for (unsigned c = 0; c < cores; ++c) {
        const auto [b, e] = coreSlice(n_, c, cores);
        for (std::size_t i = b; i < e; ++i) {
            const std::uint32_t p = (keys_[i] & mask) >> kShift;
            const std::uint32_t dest = cursors[c][p]++;
            if (mem.read<std::uint64_t>(out_ + Addr{dest} * 8) !=
                keys_[i]) {
                return false;
            }
        }
    }
    return true;
}

// =====================================================================
// PRO
// =====================================================================

BucketChainProbe::BucketChainProbe(Scale s)
    : nBuild_(s.of(1 << 21)), nProbe_(s.of(1 << 20))
{
    buckets_ = std::bit_ceil(nBuild_ * 2);
    buildKeys_ = makeTupleKeys(static_cast<std::uint32_t>(nBuild_),
                               444);
    Rng rng(445);
    probeKeys_.resize(nProbe_);
    for (auto &k : probeKeys_) {
        // Foreign-key join: probe keys reference the build relation.
        k = buildKeys_[rng.below(nBuild_)];
    }

    // Host-side chain build (loop-carried; see header comment).
    head_.assign(buckets_, 0);
    next_.assign(nBuild_, 0);
    std::vector<unsigned> chainLen(buckets_, 0);
    for (std::size_t i = 0; i < nBuild_; ++i) {
        const std::uint32_t h = hashOf(buildKeys_[i]);
        next_[i] = head_[h];
        head_[h] = static_cast<std::uint32_t>(i) + 1;
        maxChain_ = std::max(maxChain_, ++chainLen[h]);
    }
    dx_assert(maxChain_ <= 16, "pathological chain length");
}

std::uint32_t
BucketChainProbe::hashOf(std::uint32_t key) const
{
    return key & static_cast<std::uint32_t>(buckets_ - 1);
}

void
BucketChainProbe::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    cProbe_ = alloc.alloc(nProbe_ * 4);
    headA_ = alloc.alloc(buckets_ * 4);
    nextA_ = alloc.alloc(nBuild_ * 4);
    keysA_ = alloc.alloc(nBuild_ * 4);
    out_ = alloc.alloc(nProbe_ * 4);

    for (std::size_t i = 0; i < nProbe_; ++i)
        mem.write<std::uint32_t>(cProbe_ + i * 4, probeKeys_[i]);
    for (std::size_t b = 0; b < buckets_; ++b)
        mem.write<std::uint32_t>(headA_ + b * 4, head_[b]);
    for (std::size_t i = 0; i < nBuild_; ++i) {
        mem.write<std::uint32_t>(nextA_ + i * 4, next_[i]);
        mem.write<std::uint32_t>(keysA_ + i * 4, buildKeys_[i]);
    }

    registerAll(sys, cProbe_, nProbe_ * 4);
    registerAll(sys, headA_, buckets_ * 4);
    registerAll(sys, nextA_, nBuild_ * 4);
    registerAll(sys, keysA_, nBuild_ * 4);
    registerAll(sys, out_, nProbe_ * 4);

    // The build phase just wrote the hash table through the cores.
    sys.warmLlc(headA_, buckets_ * 4);
}

namespace
{

class ProBaseKernel : public LoopKernel
{
  public:
    ProBaseKernel(SimMemory &mem, Addr c, Addr head, Addr next,
                  Addr keys, Addr out, std::uint64_t bucketMask,
                  std::size_t bg, std::size_t en)
        : LoopKernel(bg, en), mem_(mem), c_(c), head_(head),
          next_(next), keys_(keys), out_(out), bucketMask_(bucketMask)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto key = mem_.read<std::uint32_t>(c_ + i * 4);
        const SeqNum lk = e.load(c_ + i * 4, 4, pc::kIndex, key);
        const SeqNum hOp = e.intOp(1, lk);
        const std::uint32_t h =
            key & static_cast<std::uint32_t>(bucketMask_);

        std::uint32_t cur =
            mem_.read<std::uint32_t>(head_ + Addr{h} * 4);
        SeqNum lc =
            e.load(head_ + Addr{h} * 4, 4, pc::kTarget, cur, hOp);
        std::uint32_t matches = 0;
        while (cur != 0) {
            const Addr slot = Addr{cur - 1} * 4;
            const auto bk =
                mem_.read<std::uint32_t>(keys_ + slot);
            const SeqNum lkey = e.load(keys_ + slot, 4, pc::kSpd, bk,
                                       lc);
            e.intOp(1, lkey); // compare
            if (bk == key)
                ++matches;
            cur = mem_.read<std::uint32_t>(next_ + slot);
            lc = e.load(next_ + slot, 4, pc::kValue, cur, lc);
        }
        mem_.write<std::uint32_t>(out_ + i * 4, matches);
        e.store(out_ + i * 4, 4, pc::kOut, lc);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr c_, head_, next_, keys_, out_;
    std::uint64_t bucketMask_;
};

/** DX100 PRO: bulk chain traversal with unrolled conditional ILDs. */
class ProDxKernel : public cpu::Kernel
{
  public:
    ProDxKernel(runtime::Dx100Runtime &rt, int coreId, Addr c,
                Addr head, Addr next, Addr keys, Addr out,
                std::uint64_t bucketMask, unsigned maxChain,
                std::size_t bg, std::size_t en)
        : rt_(rt)
    {
        tC_ = rt_.allocTile();
        tIdx_ = rt_.allocTile();
        tCur_ = rt_.allocTile();
        tAlive_ = rt_.allocTile();
        tKey_ = rt_.allocTile();
        tEq_ = rt_.allocTile();
        tAcc_ = rt_.allocTile();

        tiled_ = std::make_unique<TiledDxKernel>(
            rt_, bg, en, rt_.tileElems(),
            [this, coreId, c, head, next, keys, out, bucketMask,
             maxChain](cpu::OpEmitter &e, unsigned, std::size_t tb,
                       std::uint32_t cnt) {
                rt_.sld(e, coreId, DataType::kU32, c, tC_, tb, cnt);
                // h = key & (buckets-1); cur = head[h] (idx+1, 0=end)
                rt_.alus(e, coreId, DataType::kU32, AluOp::kAnd,
                         tCur_, tC_, bucketMask);
                rt_.ild(e, coreId, DataType::kU32, head, tCur_,
                        tCur_);
                // acc = 0
                rt_.alus(e, coreId, DataType::kU32, AluOp::kMul,
                         tAcc_, tC_, 0);
                for (unsigned r = 0; r < maxChain; ++r) {
                    // The runtime mirror knows the live lanes: stop
                    // unrolling once every chain has terminated.
                    bool anyAlive = false;
                    for (std::uint32_t k = 0; k < cnt; ++k) {
                        if (rt_.spdValue(tCur_, k) != 0) {
                            anyAlive = true;
                            break;
                        }
                    }
                    if (!anyAlive)
                        break;
                    rt_.alus(e, coreId, DataType::kU32, AluOp::kGt,
                             tAlive_, tCur_, 0);
                    rt_.alus(e, coreId, DataType::kU32, AluOp::kSub,
                             tIdx_, tCur_, 1, tAlive_);
                    rt_.ild(e, coreId, DataType::kU32, keys, tKey_,
                            tIdx_, tAlive_);
                    rt_.aluv(e, coreId, DataType::kU32, AluOp::kEq,
                             tEq_, tKey_, tC_, tAlive_);
                    rt_.aluv(e, coreId, DataType::kU32, AluOp::kAdd,
                             tAcc_, tAcc_, tEq_);
                    rt_.ild(e, coreId, DataType::kU32, next, tCur_,
                            tIdx_, tAlive_);
                }
                return rt_.sst(e, coreId, DataType::kU32, out, tAcc_,
                               tb, cnt);
            },
            TiledDxKernel::ConsumeTileFn{}, /*buffers=*/1);
    }

    bool more() const override { return tiled_->more(); }
    void emitChunk(cpu::OpEmitter &e) override { tiled_->emitChunk(e); }

  private:
    runtime::Dx100Runtime &rt_;
    unsigned tC_, tIdx_, tCur_, tAlive_, tKey_, tEq_, tAcc_;
    std::unique_ptr<TiledDxKernel> tiled_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
BucketChainProbe::makeKernel(sim::System &sys, unsigned core,
                             bool dx100)
{
    const auto [begin, end] = coreSlice(nProbe_, core, sys.cores());
    const std::uint64_t mask = buckets_ - 1;
    if (!dx100) {
        return std::make_unique<ProBaseKernel>(sys.memory(), cProbe_,
                                               headA_, nextA_, keysA_,
                                               out_, mask, begin, end);
    }
    return std::make_unique<ProDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), cProbe_, headA_,
        nextA_, keysA_, out_, mask, maxChain_, begin, end);
}

bool
BucketChainProbe::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::size_t i = 0; i < nProbe_; ++i) {
        std::uint32_t expect = 0;
        std::uint32_t cur = head_[hashOf(probeKeys_[i])];
        while (cur != 0) {
            if (buildKeys_[cur - 1] == probeKeys_[i])
                ++expect;
            cur = next_[cur - 1];
        }
        if (mem.read<std::uint32_t>(out_ + i * 4) != expect)
            return false;
    }
    return true;
}

} // namespace dx::wl

/**
 * @file
 * Host-side DX100 programming API (paper §4.1).
 *
 * Mirrors the paper's library: instruction encoding, memory-mapped
 * doorbell stores, tile/register allocation, PTE transfer, and a wait
 * primitive. A kernel calls these from emitChunk(); each API call
 * (a) executes the instruction's semantics on the runtime's functional
 * mirror (eager functional execution, DESIGN.md §4.2),
 * (b) registers the timing payload with the accelerator sideband, and
 * (c) emits the three 64-bit doorbell micro-ops (plus any register
 * writes) into the calling core's op stream.
 */

#ifndef DX_RUNTIME_DX100_API_HH
#define DX_RUNTIME_DX100_API_HH

#include <cstdint>
#include <vector>

#include "common/sim_memory.hh"
#include "cpu/microop.hh"
#include "dx100/dx100.hh"
#include "dx100/functional.hh"

namespace dx::runtime
{

using dx100::AluOp;
using dx100::DataType;

class Dx100Runtime
{
  public:
    Dx100Runtime(dx100::Dx100 &dev, SimMemory &mem);

    // ---- resource allocation -----------------------------------------

    /** Allocate a scratchpad tile (panics when exhausted). */
    unsigned allocTile();
    void freeTile(unsigned tile);

    /** Allocate a scalar register. */
    unsigned allocReg();
    void freeReg(unsigned reg);

    /** Transfer PTEs for an array region to the accelerator TLB. */
    void registerRegion(Addr base, Addr size);

    // ---- instructions ---------------------------------------------------
    // Each returns a wait token. @p e is the calling core's emitter and
    // @p core its id (doorbell ownership).

    std::uint64_t sld(cpu::OpEmitter &e, int core, DataType t,
                      Addr base, unsigned td, std::uint64_t start,
                      std::uint32_t count, std::int32_t stride = 1,
                      unsigned tc = kNone);

    std::uint64_t sst(cpu::OpEmitter &e, int core, DataType t,
                      Addr base, unsigned ts, std::uint64_t start,
                      std::uint32_t count, std::int32_t stride = 1,
                      unsigned tc = kNone);

    std::uint64_t ild(cpu::OpEmitter &e, int core, DataType t,
                      Addr base, unsigned td, unsigned ts1,
                      unsigned tc = kNone);

    std::uint64_t ist(cpu::OpEmitter &e, int core, DataType t,
                      Addr base, unsigned ts1, unsigned ts2,
                      unsigned tc = kNone);

    std::uint64_t irmw(cpu::OpEmitter &e, int core, DataType t,
                       AluOp op, Addr base, unsigned ts1, unsigned ts2,
                       unsigned tc = kNone);

    std::uint64_t aluv(cpu::OpEmitter &e, int core, DataType t,
                       AluOp op, unsigned td, unsigned ts1,
                       unsigned ts2, unsigned tc = kNone);

    /** Tile op scalar: the scalar is written to a register first. */
    std::uint64_t alus(cpu::OpEmitter &e, int core, DataType t,
                       AluOp op, unsigned td, unsigned ts1,
                       std::uint64_t scalar, unsigned tc = kNone);

    /**
     * Fuse range loops [lo[i], hi[i]) into (outer td1, inner td2)
     * starting at input range @p startRange. The number of input
     * ranges consumed is returned through @p consumed (the runtime
     * mirror computes it so callers can chunk).
     */
    std::uint64_t rng(cpu::OpEmitter &e, int core, unsigned td1,
                      unsigned td2, unsigned ts1, unsigned ts2,
                      std::uint32_t startRange, std::uint32_t *consumed,
                      unsigned tc = kNone);

    /** Spin until @p token 's instruction has retired. */
    void wait(cpu::OpEmitter &e, std::uint64_t token);

    // ---- scratchpad access ----------------------------------------------

    /** Functional value of tile element i (from the mirror). */
    std::uint64_t spdValue(unsigned tile, unsigned i) const;

    /** Number of valid elements in a tile. */
    std::uint32_t tileSize(unsigned tile) const;

    /** Simulated address of tile element i (for core loads). */
    Addr spdAddr(unsigned tile, unsigned i) const;

    /** Write a value into a tile via the mirror + doorbell-free path
     *  (used only by tests; cores do not write tiles directly). */
    void pokeTile(unsigned tile, unsigned i, std::uint64_t v);
    void setTileSize(unsigned tile, std::uint32_t n);

    dx100::Functional &mirror() { return mirror_; }
    dx100::Dx100 &device() { return dev_; }
    unsigned tileElems() const { return dev_.config().tileElems; }

    static constexpr unsigned kNone = dx100::kNoOperand;

  private:
    /** Execute on the mirror, register the payload, emit doorbells. */
    std::uint64_t issue(cpu::OpEmitter &e, int core,
                        const dx100::Instruction &instr);

    dx100::ExecPayload buildPayload(const dx100::Instruction &instr);

    dx100::Dx100 &dev_;
    dx100::Functional mirror_;
    std::vector<bool> tileFree_;
    std::vector<bool> regFree_;
};

} // namespace dx::runtime

#endif // DX_RUNTIME_DX100_API_HH

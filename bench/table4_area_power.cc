/**
 * @file
 * Reproduces paper Table 4 (DX100 area/power at 28 nm) and the §6.5
 * scaling discussion (14 nm total ~1.5 mm^2, 3.7% processor overhead
 * when shared by four cores). Runs no simulations, but accepts the
 * common bench options so `--json` emits BENCH_table4.json alongside
 * the figure benches' trajectories.
 */

#include <cstdio>
#include <fstream>

#include "model/area_power.hh"
#include "sim/experiment.hh"

using namespace dx::model;
using namespace dx::sim;

namespace
{

void
writeJson(const char *file)
{
    std::ofstream out(file);
    if (!out)
        return;
    out << "{\n  \"bench\": \"table4\",\n  \"components\": [\n";
    bool first = true;
    for (const auto &c : AreaPowerModel::components()) {
        out << (first ? "" : ",\n") << "    {\"module\": \"" << c.name
            << "\", \"areaMm2_28\": " << c.areaMm2atlas28
            << ", \"powerMw_28\": " << c.powerMw28 << "}";
        first = false;
    }
    out << "\n  ],\n"
        << "  \"totalArea28\": " << AreaPowerModel::totalArea28()
        << ",\n"
        << "  \"totalPower28\": " << AreaPowerModel::totalPower28()
        << ",\n"
        << "  \"totalArea14\": " << AreaPowerModel::totalArea14()
        << ",\n"
        << "  \"processorOverhead4\": "
        << AreaPowerModel::processorOverhead(4) << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);

    std::printf("Table 4 - DX100 area and power (28 nm)\n");
    std::printf("%-18s %12s %12s\n", "Module", "Area (mm^2)",
                "Power (mW)");
    for (const auto &c : AreaPowerModel::components()) {
        std::printf("%-18s %12.3f %12.2f\n", c.name.c_str(),
                    c.areaMm2atlas28, c.powerMw28);
    }
    std::printf("%-18s %12.3f %12.2f   (paper: 4.061 / 777.17)\n",
                "Total", AreaPowerModel::totalArea28(),
                AreaPowerModel::totalPower28());

    std::printf("\nScaled to 14 nm (Stillmaker & Baas factors):\n");
    std::printf("  total area       %6.2f mm^2   (paper: ~1.5)\n",
                AreaPowerModel::totalArea14());
    std::printf("  LLC slice equiv  %6.2f mm^2   (paper: ~2.3 per "
                "2MB)\n",
                AreaPowerModel::kLlcSliceArea14);
    std::printf("  4-core overhead  %6.2f %%     (paper: 3.7%%)\n",
                AreaPowerModel::processorOverhead(4) * 100.0);

    if (opt.json)
        writeJson("BENCH_table4.json");
    return 0;
}

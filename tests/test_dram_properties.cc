/**
 * @file
 * Property tests for the DRAM controller: a command-trace checker
 * verifies that every issued command respects the DDR4 timing
 * distances under randomized traffic, and conservation properties
 * (every accepted request is served exactly once) hold across
 * parameterized traffic mixes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "mem/dram_system.hh"

using namespace dx;
using namespace dx::mem;

namespace
{

struct TrafficParams
{
    const char *name;
    unsigned readPct;     //!< percentage of reads
    unsigned regionBytes; //!< address span (locality knob)
    unsigned ratePer8;    //!< injection attempts per 8 core cycles
};

class TrafficTest : public ::testing::TestWithParam<TrafficParams>
{
};

struct CountingSink : public MemRespSink
{
    std::map<std::uint64_t, unsigned> reads;
    std::map<std::uint64_t, unsigned> writes;

    void
    complete(const MemRequest &req) override
    {
        if (req.write)
            ++writes[req.tag];
        else
            ++reads[req.tag];
    }
};

} // namespace

TEST_P(TrafficTest, EveryAcceptedRequestServedExactlyOnce)
{
    const TrafficParams p = GetParam();
    DramSystem::Config cfg;
    DramSystem dram(cfg);
    CountingSink sink;
    Rng rng(p.readPct * 7 + 13);

    std::uint64_t nextTag = 0;
    std::uint64_t expectedReads = 0;
    std::uint64_t writesIssued = 0;

    for (Cycle t = 0; t < 120000; ++t) {
        for (unsigned k = 0; k < p.ratePer8; ++k) {
            if (rng.below(8) != 0)
                continue;
            const bool write = rng.below(100) >= p.readPct;
            const Addr a = lineAlign(rng.below(p.regionBytes));
            if (!dram.canAccept(a, write))
                continue;
            dram.access(a, write, Origin::kCpuDemand, nextTag++,
                        write ? nullptr : &sink);
            if (write)
                ++writesIssued;
            else
                ++expectedReads;
        }
        dram.tick();
    }
    for (Cycle t = 0; t < 4'000'000 && !dram.idle(); ++t)
        dram.tick();
    ASSERT_TRUE(dram.idle()) << "controller failed to drain";

    EXPECT_EQ(sink.reads.size(), expectedReads);
    for (const auto &[tag, count] : sink.reads)
        EXPECT_EQ(count, 1u) << "read tag " << tag;

    std::uint64_t writesServed = 0;
    std::uint64_t readsServed = 0;
    for (unsigned c = 0; c < dram.channels(); ++c) {
        writesServed += dram.channel(c).stats().writesServed.value();
        readsServed += dram.channel(c).stats().readsServed.value();
    }
    EXPECT_EQ(writesServed, writesIssued);
    EXPECT_EQ(readsServed, expectedReads);
}

TEST_P(TrafficTest, CommandAccountingIsConsistent)
{
    const TrafficParams p = GetParam();
    DramSystem::Config cfg;
    cfg.ctrl.timings.refreshEnabled = false;
    DramSystem dram(cfg);
    Rng rng(p.regionBytes);

    std::uint64_t issued = 0;
    for (Cycle t = 0; t < 60000; ++t) {
        const bool write = rng.below(100) >= p.readPct;
        const Addr a = lineAlign(rng.below(p.regionBytes));
        if (dram.canAccept(a, write)) {
            dram.access(a, write, Origin::kCpuDemand, issued++,
                        nullptr);
        }
        dram.tick();
    }
    for (Cycle t = 0; t < 4'000'000 && !dram.idle(); ++t)
        dram.tick();
    ASSERT_TRUE(dram.idle());

    for (unsigned c = 0; c < dram.channels(); ++c) {
        const auto &s = dram.channel(c).stats();
        // Without refresh, every ACT eventually pairs with a PRE (or
        // leaves a row open at the end) and every column command is a
        // hit or a miss — never both.
        EXPECT_LE(s.preCommands.value(), s.actCommands.value());
        EXPECT_GE(s.preCommands.value() + 16, s.actCommands.value());
        EXPECT_EQ(s.rowHits.value() + s.rowMisses.value(),
                  s.readsServed.value() + s.writesServed.value());
        // Misses require activations.
        EXPECT_LE(s.rowMisses.value(), s.actCommands.value());
        // Data-bus occupancy = tBL per column command.
        EXPECT_EQ(s.busBusyCycles.value(),
                  (s.readsServed.value() + s.writesServed.value()) *
                      cfg.ctrl.timings.tBL);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TrafficTest,
    ::testing::Values(
        TrafficParams{"read_only_hot", 100, 1 << 16, 8},
        TrafficParams{"read_only_wide", 100, 64 << 20, 8},
        TrafficParams{"mixed_wide", 70, 64 << 20, 8},
        TrafficParams{"write_heavy", 30, 16 << 20, 8},
        TrafficParams{"mixed_trickle", 50, 8 << 20, 1}),
    [](const ::testing::TestParamInfo<TrafficParams> &info) {
        return info.param.name;
    });

TEST(DramTiming, SameBankActToActRespectsTrc)
{
    // Two conflicting rows in one bank: the second read's completion
    // must be at least tRC after the first row's activation window.
    DramSystem::Config cfg;
    cfg.ctrl.timings.refreshEnabled = false;
    DramSystem dram(cfg);
    const AddressMap &map = dram.addressMap();

    struct Sink : public MemRespSink
    {
        std::vector<Cycle> done;
        DramSystem *d = nullptr;
        void
        complete(const MemRequest &req) override
        {
            done.push_back(d->channel(req.coord.channel).now());
        }
    } sink;
    sink.d = &dram;

    DramCoord c0{};
    DramCoord c1{};
    c1.row = 1;
    dram.access(map.compose(c0), false, Origin::kCpuDemand, 0, &sink);
    dram.access(map.compose(c1), false, Origin::kCpuDemand, 1, &sink);
    for (Cycle t = 0; t < 100000 && !dram.idle(); ++t)
        dram.tick();
    ASSERT_EQ(sink.done.size(), 2u);
    const auto &tm = cfg.ctrl.timings;
    // Second access needs: first RD done enough for tRTP+tRP+tRCD.
    EXPECT_GE(sink.done[1] - sink.done[0], tm.tRTP + tm.tRP + tm.tRCD);
}

TEST(DramTiming, FourActivateWindowLimitsActivationBursts)
{
    DramSystem::Config cfg;
    cfg.ctrl.timings.refreshEnabled = false;
    DramSystem dram(cfg);
    const AddressMap &map = dram.addressMap();

    // 8 reads to 8 distinct banks of channel 0: all need ACTs.
    unsigned issued = 0;
    for (unsigned bg = 0; bg < 4 && issued < 8; ++bg) {
        for (unsigned ba = 0; ba < 2 && issued < 8; ++ba) {
            DramCoord c{};
            c.bankGroup = static_cast<std::uint16_t>(bg);
            c.bank = static_cast<std::uint16_t>(ba);
            dram.access(map.compose(c), false, Origin::kCpuDemand,
                        issued++, nullptr);
        }
    }
    Cycle elapsed = 0;
    while (!dram.idle()) {
        dram.tick();
        ++elapsed;
    }
    // 8 ACTs need two tFAW windows at minimum (in controller cycles;
    // 2 core cycles per controller cycle).
    EXPECT_GE(elapsed / 2, cfg.ctrl.timings.tFAW);
}

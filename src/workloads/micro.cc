#include "workloads/micro.hh"

#include <sstream>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::DataType;

namespace
{

/** Register an array region with every DX100 instance. */
void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

/** Deterministic fill value for A[i]. */
std::uint32_t
fillValue(std::size_t i)
{
    return static_cast<std::uint32_t>(i * 2654435761u + 12345u);
}

} // namespace

// =====================================================================
// GatherMicro: C[i] = A[B[i]]
// =====================================================================

GatherMicro::GatherMicro(Mode mode, std::size_t n,
                         std::optional<DramPatternParams> pattern)
    : mode_(mode), n_(n), pattern_(std::move(pattern))
{
}

std::string
GatherMicro::name() const
{
    std::ostringstream os;
    os << (mode_ == Mode::kSpd ? "gather-spd" : "gather-full");
    if (pattern_) {
        os << "-rbh" << pattern_->rbhPercent
           << (pattern_->channelInterleave ? "-chi" : "")
           << (pattern_->bankGroupInterleave ? "-bgi" : "");
    }
    return os.str();
}

void
GatherMicro::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    std::vector<std::uint32_t> indices;
    if (pattern_) {
        indices = makeDramPattern(static_cast<std::uint32_t>(n_),
                                  *pattern_, sys.dram().addressMap(),
                                  1);
        std::uint32_t maxIdx = 0;
        for (auto v : indices)
            maxIdx = std::max(maxIdx, v);
        domain_ = maxIdx + 16;
    } else {
        indices.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            indices[i] = static_cast<std::uint32_t>(i);
        domain_ = n_;
    }

    a_ = alloc.alloc(domain_ * 4);
    b_ = alloc.alloc(n_ * 4);
    c_ = alloc.alloc(n_ * 4);

    for (std::size_t i = 0; i < domain_; ++i)
        mem.write<std::uint32_t>(a_ + i * 4, fillValue(i));
    for (std::size_t i = 0; i < n_; ++i)
        mem.write<std::uint32_t>(b_ + i * 4, indices[i]);

    registerAll(sys, a_, domain_ * 4);
    registerAll(sys, b_, n_ * 4);
    registerAll(sys, c_, n_ * 4);

    // The all-hit scenario warms all caches (paper §6.1); the all-miss
    // patterns must start cold.
    if (!pattern_) {
        sys.warmLlc(a_, domain_ * 4);
        sys.warmLlc(b_, n_ * 4);
        sys.warmLlc(c_, n_ * 4);
    }
}

namespace
{

class GatherBaseKernel : public LoopKernel
{
  public:
    GatherBaseKernel(SimMemory &mem, Addr a, Addr b, Addr c,
                     std::size_t begin, std::size_t end)
        : LoopKernel(begin, end), mem_(mem), a_(a), b_(b), c_(c)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto idx = mem_.read<std::uint32_t>(b_ + i * 4);
        const SeqNum ld = e.load(b_ + i * 4, 4, pc::kIndex, idx);
        const SeqNum calc = e.intOp(1, ld);
        const auto v = mem_.read<std::uint32_t>(a_ + Addr{idx} * 4);
        const SeqNum ld2 =
            e.load(a_ + Addr{idx} * 4, 4, pc::kTarget, v, calc);
        mem_.write<std::uint32_t>(c_ + i * 4, v);
        e.store(c_ + i * 4, 4, pc::kOut, ld2);
        e.intOp(); // loop increment + branch
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, c_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
GatherMicro::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<GatherBaseKernel>(sys.memory(), a_, b_,
                                                  c_, begin, end);
    }

    auto *rt = sys.runtimeFor(core);
    dx_assert(rt, "gather DX100 kernel needs a runtime");
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct Bufs
    {
        unsigned idx[2];
        unsigned dat[2];
    };
    auto bufs = std::make_shared<Bufs>();
    for (int k = 0; k < 2; ++k) {
        bufs->idx[k] = rt->allocTile();
        bufs->dat[k] = rt->allocTile();
    }

    const Addr a = a_, b = b_, c = c_;
    if (mode_ == Mode::kFull) {
        auto emitTile = [rt, coreId, bufs, a, b, c](
                            cpu::OpEmitter &e, unsigned buf,
                            std::size_t tb, std::uint32_t cnt) {
            rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb,
                    cnt);
            rt->ild(e, coreId, DataType::kU32, a, bufs->dat[buf],
                    bufs->idx[buf]);
            return rt->sst(e, coreId, DataType::kU32, c,
                           bufs->dat[buf], tb, cnt);
        };
        return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                               emitTile);
    }

    // Gather-SPD: only the gather is offloaded; the core streams the
    // packed data out of the scratchpad and stores it itself.
    SimMemory *mem = &sys.memory();
    auto emitTile = [rt, coreId, bufs, a, b](cpu::OpEmitter &e,
                                             unsigned buf,
                                             std::size_t tb,
                                             std::uint32_t cnt) {
        rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb, cnt);
        return rt->ild(e, coreId, DataType::kU32, a, bufs->dat[buf],
                       bufs->idx[buf]);
    };
    auto consume = [rt, bufs, c, mem](cpu::OpEmitter &e, unsigned buf,
                                      std::size_t tb,
                                      std::uint32_t cnt) {
        for (std::uint32_t k = 0; k < cnt; ++k) {
            const std::uint64_t v = rt->spdValue(bufs->dat[buf], k);
            const SeqNum ld =
                e.load(rt->spdAddr(bufs->dat[buf], k), 8, pc::kSpd, v);
            mem->write<std::uint32_t>(
                c + (tb + k) * 4, static_cast<std::uint32_t>(v));
            e.store(c + (tb + k) * 4, 4, pc::kOut, ld);
            e.intOp();
        }
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T, emitTile,
                                           consume);
}

bool
GatherMicro::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::size_t i = 0; i < n_; ++i) {
        const auto idx = mem.read<std::uint32_t>(b_ + i * 4);
        const auto expect = mem.read<std::uint32_t>(a_ + Addr{idx} * 4);
        if (mem.read<std::uint32_t>(c_ + i * 4) != expect)
            return false;
    }
    return true;
}

// =====================================================================
// RmwMicro: A[B[i]] += C[i]
// =====================================================================

RmwMicro::RmwMicro(std::size_t n, bool atomicBaseline)
    : n_(n), atomic_(atomicBaseline)
{
}

std::string
RmwMicro::name() const
{
    return atomic_ ? "rmw-atomic" : "rmw-noatom";
}

void
RmwMicro::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    domain_ = n_;

    a_ = alloc.alloc(domain_ * 4);
    b_ = alloc.alloc(n_ * 4);
    c_ = alloc.alloc(n_ * 4);
    for (std::size_t i = 0; i < domain_; ++i)
        mem.write<std::uint32_t>(a_ + i * 4, fillValue(i) & 0xffff);
    for (std::size_t i = 0; i < n_; ++i) {
        mem.write<std::uint32_t>(b_ + i * 4,
                                 static_cast<std::uint32_t>(i));
        mem.write<std::uint32_t>(c_ + i * 4,
                                 static_cast<std::uint32_t>(i % 7 + 1));
    }
    registerAll(sys, a_, domain_ * 4);
    registerAll(sys, b_, n_ * 4);
    registerAll(sys, c_, n_ * 4);
    sys.warmLlc(a_, domain_ * 4);
    sys.warmLlc(b_, n_ * 4);
    sys.warmLlc(c_, n_ * 4);
}

namespace
{

class RmwBaseKernel : public LoopKernel
{
  public:
    RmwBaseKernel(SimMemory &mem, Addr a, Addr b, Addr c,
                  std::size_t begin, std::size_t end, bool atomic)
        : LoopKernel(begin, end), mem_(mem), a_(a), b_(b), c_(c),
          atomic_(atomic)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto idx = mem_.read<std::uint32_t>(b_ + i * 4);
        const auto val = mem_.read<std::uint32_t>(c_ + i * 4);
        const SeqNum li = e.load(b_ + i * 4, 4, pc::kIndex, idx);
        const SeqNum lv = e.load(c_ + i * 4, 4, pc::kValue, val);
        const SeqNum calc = e.intOp(1, li);

        const Addr target = a_ + Addr{idx} * 4;
        const auto old = mem_.read<std::uint32_t>(target);
        mem_.write<std::uint32_t>(target, old + val);

        if (atomic_) {
            e.rmw(target, 4, pc::kTarget, calc, lv);
        } else {
            const SeqNum lt =
                e.load(target, 4, pc::kTarget, old, calc);
            const SeqNum add = e.intOp(1, lt, lv);
            e.store(target, 4, pc::kTarget, add);
        }
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, c_;
    bool atomic_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
RmwMicro::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<RmwBaseKernel>(sys.memory(), a_, b_, c_,
                                               begin, end, atomic_);
    }

    auto *rt = sys.runtimeFor(core);
    dx_assert(rt, "rmw DX100 kernel needs a runtime");
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct Bufs
    {
        unsigned idx[2];
        unsigned val[2];
    };
    auto bufs = std::make_shared<Bufs>();
    for (int k = 0; k < 2; ++k) {
        bufs->idx[k] = rt->allocTile();
        bufs->val[k] = rt->allocTile();
    }

    const Addr a = a_, b = b_, c = c_;
    auto emitTile = [rt, coreId, bufs, a, b, c](cpu::OpEmitter &e,
                                                unsigned buf,
                                                std::size_t tb,
                                                std::uint32_t cnt) {
        rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb, cnt);
        rt->sld(e, coreId, DataType::kU32, c, bufs->val[buf], tb, cnt);
        return rt->irmw(e, coreId, DataType::kU32, runtime::AluOp::kAdd,
                        a, bufs->idx[buf], bufs->val[buf]);
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                           emitTile);
}

bool
RmwMicro::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    // Replay: expected A = initial fill + sum of C over matching B.
    std::vector<std::uint32_t> expect(domain_);
    for (std::size_t i = 0; i < domain_; ++i)
        expect[i] = fillValue(i) & 0xffff;
    for (std::size_t i = 0; i < n_; ++i) {
        const auto idx = mem.read<std::uint32_t>(b_ + i * 4);
        expect[idx] += mem.read<std::uint32_t>(c_ + i * 4);
    }
    for (std::size_t i = 0; i < domain_; ++i) {
        if (mem.read<std::uint32_t>(a_ + i * 4) != expect[i])
            return false;
    }
    return true;
}

// =====================================================================
// ScatterMicro: A[B[i]] = C[i], B a permutation
// =====================================================================

ScatterMicro::ScatterMicro(std::size_t n, bool streaming)
    : n_(n), streaming_(streaming)
{
}

std::string
ScatterMicro::name() const
{
    return "scatter";
}

void
ScatterMicro::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    a_ = alloc.alloc(n_ * 4);
    b_ = alloc.alloc(n_ * 4);
    c_ = alloc.alloc(n_ * 4);

    // Unique scatter targets: streaming (all-hit scenario) or a
    // Fisher-Yates permutation.
    Rng rng(99);
    std::vector<std::uint32_t> perm(n_);
    for (std::size_t i = 0; i < n_; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    if (!streaming_) {
        for (std::size_t i = n_ - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);
    }

    for (std::size_t i = 0; i < n_; ++i) {
        mem.write<std::uint32_t>(b_ + i * 4, perm[i]);
        mem.write<std::uint32_t>(c_ + i * 4, fillValue(i));
    }
    registerAll(sys, a_, n_ * 4);
    registerAll(sys, b_, n_ * 4);
    registerAll(sys, c_, n_ * 4);
    if (streaming_) {
        sys.warmLlc(a_, n_ * 4);
        sys.warmLlc(b_, n_ * 4);
        sys.warmLlc(c_, n_ * 4);
    }
}

namespace
{

class ScatterBaseKernel : public LoopKernel
{
  public:
    ScatterBaseKernel(SimMemory &mem, Addr a, Addr b, Addr c,
                      std::size_t begin, std::size_t end)
        : LoopKernel(begin, end), mem_(mem), a_(a), b_(b), c_(c)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto idx = mem_.read<std::uint32_t>(b_ + i * 4);
        const auto val = mem_.read<std::uint32_t>(c_ + i * 4);
        const SeqNum li = e.load(b_ + i * 4, 4, pc::kIndex, idx);
        const SeqNum lv = e.load(c_ + i * 4, 4, pc::kValue, val);
        const SeqNum calc = e.intOp(1, li);
        mem_.write<std::uint32_t>(a_ + Addr{idx} * 4, val);
        e.store(a_ + Addr{idx} * 4, 4, pc::kTarget, calc, lv);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, c_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
ScatterMicro::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<ScatterBaseKernel>(sys.memory(), a_, b_,
                                                   c_, begin, end);
    }

    auto *rt = sys.runtimeFor(core);
    dx_assert(rt, "scatter DX100 kernel needs a runtime");
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct Bufs
    {
        unsigned idx[2];
        unsigned val[2];
    };
    auto bufs = std::make_shared<Bufs>();
    for (int k = 0; k < 2; ++k) {
        bufs->idx[k] = rt->allocTile();
        bufs->val[k] = rt->allocTile();
    }

    const Addr a = a_, b = b_, c = c_;
    auto emitTile = [rt, coreId, bufs, a, b, c](cpu::OpEmitter &e,
                                                unsigned buf,
                                                std::size_t tb,
                                                std::uint32_t cnt) {
        rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb, cnt);
        rt->sld(e, coreId, DataType::kU32, c, bufs->val[buf], tb, cnt);
        return rt->ist(e, coreId, DataType::kU32, a, bufs->idx[buf],
                       bufs->val[buf]);
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                           emitTile);
}

bool
ScatterMicro::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::size_t i = 0; i < n_; ++i) {
        const auto idx = mem.read<std::uint32_t>(b_ + i * 4);
        if (mem.read<std::uint32_t>(a_ + Addr{idx} * 4) !=
            mem.read<std::uint32_t>(c_ + i * 4)) {
            return false;
        }
    }
    return true;
}

} // namespace dx::wl

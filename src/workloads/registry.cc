#include "workloads/workload.hh"

#include "workloads/gap.hh"
#include "workloads/hashjoin.hh"
#include "workloads/nas.hh"
#include "workloads/spatter.hh"
#include "workloads/ume.hh"

namespace dx::wl
{

const std::vector<WorkloadEntry> &
paperWorkloads()
{
    static const std::vector<WorkloadEntry> entries = {
        {"IS", "NAS",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<IntegerSort>(s);
         }},
        {"CG", "NAS",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<ConjugateGradient>(s);
         }},
        {"BFS", "GAP",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<BfsBottomUp>(s);
         }},
        {"BC", "GAP",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<BetweennessCentrality>(s);
         }},
        {"PR", "GAP",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<PageRank>(s);
         }},
        {"PRH", "HashJoin",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<RadixPartition>(s);
         }},
        {"PRO", "HashJoin",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<BucketChainProbe>(s);
         }},
        {"GZZ", "UME",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<UmeGradient>(
                 UmeGradient::Variant::kZone, s);
         }},
        {"GZZI", "UME",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<UmeGradientIndirect>(
                 UmeGradientIndirect::Variant::kZone, s);
         }},
        {"GZP", "UME",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<UmeGradient>(
                 UmeGradient::Variant::kPoint, s);
         }},
        {"GZPI", "UME",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<UmeGradientIndirect>(
                 UmeGradientIndirect::Variant::kPoint, s);
         }},
        {"XRAGE", "Spatter",
         [](Scale s) -> std::unique_ptr<Workload> {
             return std::make_unique<SpatterXrage>(s);
         }},
    };
    return entries;
}

const WorkloadEntry *
findWorkload(const std::string &name)
{
    for (const auto &e : paperWorkloads()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

} // namespace dx::wl

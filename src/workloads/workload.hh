/**
 * @file
 * Workload framework.
 *
 * A Workload owns its input data (generated deterministically into the
 * system's SimMemory), builds per-core kernels in baseline or DX100
 * form, and verifies the run's output against a host-computed
 * reference. The same Workload subclass drives both system
 * configurations so the access patterns differ only in *how* they are
 * executed.
 */

#ifndef DX_WORKLOADS_WORKLOAD_HH
#define DX_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/microop.hh"
#include "sim/system.hh"

namespace dx::wl
{

/** Controls workload size so benches can trade fidelity for runtime. */
struct Scale
{
    double factor = 1.0; //!< 1.0 = default "small" sizes

    std::size_t
    of(std::size_t base) const
    {
        const auto v = static_cast<std::size_t>(
            static_cast<double>(base) * factor);
        return v < 16 ? 16 : v;
    }
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate and fill input data; register regions with DX100. */
    virtual void init(sim::System &sys) = 0;

    /** Build the kernel for one core (baseline or DX100 variant). */
    virtual std::unique_ptr<cpu::Kernel>
    makeKernel(sim::System &sys, unsigned core, bool dx100) = 0;

    /** Check the run's output; returns true when correct. */
    virtual bool verify(sim::System &sys) = 0;
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>(Scale)>;

/** The 12 paper workloads in presentation order. */
struct WorkloadEntry
{
    std::string name;
    std::string suite;
    WorkloadFactory make;
};

const std::vector<WorkloadEntry> &paperWorkloads();

/** Find a workload by name (nullptr if unknown). */
const WorkloadEntry *findWorkload(const std::string &name);

// ---------------------------------------------------------------------
// Helpers shared by kernels.
// ---------------------------------------------------------------------

/** [begin, end) slice of n items owned by core c of k. */
inline std::pair<std::size_t, std::size_t>
coreSlice(std::size_t n, unsigned c, unsigned k)
{
    const std::size_t per = (n + k - 1) / k;
    const std::size_t b = std::min<std::size_t>(n, per * c);
    const std::size_t e = std::min<std::size_t>(n, b + per);
    return {b, e};
}

} // namespace dx::wl

#endif // DX_WORKLOADS_WORKLOAD_HH

/**
 * @file
 * Remaining unit coverage: SimMemory sparsity and typed access, the
 * bump allocator, Scale / coreSlice partitioning, the RNG's
 * determinism and distribution sanity, stream-scalar edge cases, and
 * the area/power model identities.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "common/sim_memory.hh"
#include "model/area_power.hh"
#include "workloads/workload.hh"

using namespace dx;

TEST(SimMemory, SparseFramesAndZeroFill)
{
    SimMemory mem;
    EXPECT_EQ(mem.framesAllocated(), 0u);
    EXPECT_EQ(mem.read<std::uint64_t>(0x123456789), 0u); // read never
    EXPECT_EQ(mem.framesAllocated(), 0u);                // materializes

    mem.write<std::uint32_t>(0x123456789, 42);
    EXPECT_EQ(mem.framesAllocated(), 1u);
    EXPECT_EQ(mem.read<std::uint32_t>(0x123456789), 42u);
}

TEST(SimMemory, CrossFrameAccesses)
{
    SimMemory mem;
    const Addr boundary = SimMemory::kFrameBytes;
    mem.write<std::uint64_t>(boundary - 4, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read<std::uint64_t>(boundary - 4),
              0x1122334455667788ULL);
    EXPECT_EQ(mem.framesAllocated(), 2u);

    std::uint8_t buf[256];
    mem.readBytes(boundary - 128, buf, 256);
    mem.writeBytes(boundary - 128, buf, 256);
}

TEST(SimMemory, ZeroRange)
{
    SimMemory mem;
    mem.write<std::uint64_t>(0x1000, ~0ULL);
    mem.write<std::uint64_t>(0x1008, ~0ULL);
    mem.zero(0x1004, 8);
    EXPECT_EQ(mem.read<std::uint32_t>(0x1000), 0xffffffffu);
    EXPECT_EQ(mem.read<std::uint32_t>(0x1004), 0u);
    EXPECT_EQ(mem.read<std::uint32_t>(0x1008), 0u);
    EXPECT_EQ(mem.read<std::uint32_t>(0x100c), 0xffffffffu);
}

TEST(SimAllocator, AlignsToHugePages)
{
    SimAllocator alloc;
    const Addr a = alloc.alloc(100);
    const Addr b = alloc.alloc(100);
    EXPECT_EQ(a % SimAllocator::kHugePage, 0u);
    EXPECT_EQ(b % SimAllocator::kHugePage, 0u);
    EXPECT_GE(b, a + 100);

    const Addr c = alloc.alloc(64, 64);
    EXPECT_EQ(c % 64, 0u);
}

TEST(ArrayRef, TypedAccessors)
{
    SimMemory mem;
    SimAllocator alloc;
    auto arr = ArrayRef<double>::make(mem, alloc, 16);
    arr.set(3, 2.5);
    EXPECT_EQ(arr.at(3), 2.5);
    EXPECT_EQ(arr.addrOf(3), arr.base() + 24);
    EXPECT_EQ(arr.bytes(), 128u);
}

TEST(CoreSlice, PartitionsExactlyAndInOrder)
{
    for (std::size_t n : {0u, 1u, 7u, 100u, 4096u}) {
        std::size_t covered = 0;
        std::size_t prevEnd = 0;
        for (unsigned c = 0; c < 4; ++c) {
            const auto [b, e] = wl::coreSlice(n, c, 4);
            EXPECT_EQ(b, prevEnd);
            EXPECT_LE(b, e);
            covered += e - b;
            prevEnd = e;
        }
        EXPECT_EQ(covered, n);
        EXPECT_EQ(prevEnd, n);
    }
}

TEST(Scale, FloorsAtSixteen)
{
    EXPECT_EQ(wl::Scale{1.0}.of(1024), 1024u);
    EXPECT_EQ(wl::Scale{0.5}.of(1024), 512u);
    EXPECT_EQ(wl::Scale{0.0001}.of(1024), 16u);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(99), b(99), c(100);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);

    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(7);
    std::map<std::uint64_t, unsigned> hist;
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[r.below(8)];
    for (std::uint64_t k = 0; k < 8; ++k) {
        EXPECT_GT(hist[k], n / 8 - n / 40) << "bucket " << k;
        EXPECT_LT(hist[k], n / 8 + n / 40) << "bucket " << k;
    }
}

TEST(AreaPower, TotalsMatchComponentSums)
{
    using M = model::AreaPowerModel;
    double area = 0, power = 0;
    for (const auto &c : M::components()) {
        area += c.areaMm2atlas28;
        power += c.powerMw28;
    }
    EXPECT_DOUBLE_EQ(M::totalArea28(), area);
    EXPECT_DOUBLE_EQ(M::totalPower28(), power);
    // Paper: 4.061 mm^2 / 777.17 mW (their per-component rounding).
    EXPECT_NEAR(M::totalArea28(), 4.061, 0.01);
    EXPECT_NEAR(M::totalPower28(), 777.17, 0.5);
    EXPECT_NEAR(M::totalArea14(), 1.5, 0.01);
    EXPECT_NEAR(M::processorOverhead(4), 0.037, 0.002);
}

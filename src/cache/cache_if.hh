/**
 * @file
 * Cache-domain instantiations of the unified port layer (sim/port.hh).
 *
 * CachePort and CacheRespSink are thin aliases of RequestPort /
 * Completion — the protocol (admission, pop-count watching, typed
 * completions) is documented once on the templates.
 */

#ifndef DX_CACHE_CACHE_IF_HH
#define DX_CACHE_CACHE_IF_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/request.hh"
#include "sim/port.hh"

namespace dx::cache
{

using dx::kPortPopsUnknown;

/** Receives line-granularity completions from a cache or port. */
using CacheRespSink = Completion<std::uint64_t>;

/** One request into a cache level (or a memory-side port). */
struct CacheReq
{
    Addr addr = 0;            //!< raw byte address
    bool write = false;
    bool fullLine = false;    //!< whole-line write: no fetch-on-miss
    mem::Origin origin = mem::Origin::kCpuDemand;
    std::uint16_t pc = 0;     //!< static instruction id (prefetch training)
    std::uint64_t value = 0;  //!< loaded value (indirect-prefetch training)
    std::uint64_t tag = 0;    //!< requester-defined cookie
    CacheRespSink *sink = nullptr;
};

/** Anything a cache can send misses to (a lower cache, DRAM, DX100). */
using CachePort = RequestPort<CacheReq>;

} // namespace dx::cache

#endif // DX_CACHE_CACHE_IF_HH

/**
 * @file
 * Data-generator invariants: CSR well-formedness, mesh map spread,
 * range structure consistency, xRAGE pattern statistics, tuple key
 * determinism, and the controlled-DRAM-pattern guarantees (uniqueness
 * and the achieved row-buffer-hit fraction).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/data.hh"

using namespace dx;
using namespace dx::wl;

TEST(Generators, UniformGraphIsWellFormedCsr)
{
    const CsrGraph g = makeUniformGraph(4096, 15, 1);
    ASSERT_EQ(g.rowPtr.size(), 4097u);
    EXPECT_EQ(g.rowPtr.front(), 0u);
    for (std::size_t v = 0; v < 4096; ++v)
        EXPECT_LE(g.rowPtr[v], g.rowPtr[v + 1]);
    EXPECT_EQ(g.col.size(), g.edges());
    for (const auto c : g.col)
        EXPECT_LT(c, g.nodes);
    // Average degree within the generator's [deg/2, 3deg/2] band.
    const double avg = static_cast<double>(g.edges()) / g.nodes;
    EXPECT_GT(avg, 7.0);
    EXPECT_LT(avg, 23.0);
}

TEST(Generators, GraphGenerationIsDeterministic)
{
    const CsrGraph a = makeUniformGraph(1024, 15, 7);
    const CsrGraph b = makeUniformGraph(1024, 15, 7);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.col, b.col);
    const CsrGraph c = makeUniformGraph(1024, 15, 8);
    EXPECT_NE(a.col, c.col);
}

TEST(Generators, SparseMatrixShapes)
{
    const CsrMatrix m = makeSparseMatrix(512, 8192, 15, 3);
    EXPECT_EQ(m.rowPtr.size(), 513u);
    EXPECT_EQ(m.colIdx.size(), m.values.size());
    for (const auto c : m.colIdx)
        EXPECT_LT(c, m.cols);
    for (const auto v : m.values) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Generators, MeshMapHasRequestedSpread)
{
    const std::uint32_t n = 1 << 18;
    const std::uint32_t spread = n / 24;
    const auto map = makeMeshMap(n, spread, 9);
    ASSERT_EQ(map.size(), n);

    double distSum = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_LT(map[i], n);
        std::int64_t d = static_cast<std::int64_t>(i) -
                         static_cast<std::int64_t>(map[i]);
        distSum += std::abs(static_cast<double>(d));
    }
    // The paper measures ~85K average |i - B[i]| at 2M elements
    // (~n/24); the generator targets spread/2 plus a wraparound tail
    // (indices near the edges wrap modulo n, adding ~n/2 distances
    // for a ~spread/n fraction of elements).
    const double avg = distSum / n;
    EXPECT_GT(avg, spread * 0.3);
    EXPECT_LT(avg, spread * 1.2);
}

TEST(Generators, MeshRangesPartitionTheInnerDomain)
{
    const MeshRanges r = makeMeshRanges(10000, 4, 8, 5);
    ASSERT_EQ(r.lo.size(), 10000u);
    std::uint32_t pos = 0;
    for (std::size_t i = 0; i < r.lo.size(); ++i) {
        EXPECT_EQ(r.lo[i], pos);
        EXPECT_GE(r.hi[i] - r.lo[i], 4u);
        EXPECT_LE(r.hi[i] - r.lo[i], 8u);
        pos = r.hi[i];
    }
    EXPECT_EQ(r.innerTotal, pos);
}

TEST(Generators, XragePatternStaysInDomainWithBlockStructure)
{
    const std::uint32_t n = 1 << 18;
    const std::uint32_t domain = 1 << 22;
    const auto p = makeXragePattern(n, domain, 11);
    ASSERT_EQ(p.size(), n);

    std::uint64_t smallDeltas = 0;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_LT(p[i], domain);
        if (i > 0) {
            const std::int64_t d =
                static_cast<std::int64_t>(p[i]) -
                static_cast<std::int64_t>(p[i - 1]);
            if (std::abs(static_cast<double>(d)) <= 256)
                ++smallDeltas;
        }
    }
    // Block structure: most consecutive deltas are small, but a
    // non-trivial fraction are large jumps.
    const double frac = static_cast<double>(smallDeltas) / n;
    EXPECT_GT(frac, 0.80);
    EXPECT_LT(frac, 0.999);
}

TEST(Generators, TupleKeysDeterministic)
{
    EXPECT_EQ(makeTupleKeys(1000, 1), makeTupleKeys(1000, 1));
    EXPECT_NE(makeTupleKeys(1000, 1), makeTupleKeys(1000, 2));
}

namespace
{

class DramPatternTest
    : public ::testing::TestWithParam<DramPatternParams>
{
};

} // namespace

TEST_P(DramPatternTest, IndicesAreUniqueAndBankBalanced)
{
    const mem::AddressMap map{mem::DramGeometry{},
                              mem::MapOrder::kChBgCoBaRo};
    const std::uint32_t n = 32768;
    const auto pat = makeDramPattern(n, GetParam(), map, 1);
    ASSERT_EQ(pat.size(), n);

    std::set<std::uint32_t> seen(pat.begin(), pat.end());
    EXPECT_EQ(seen.size(), n) << "indices must be unique";

    // Every bank receives exactly n/32 accesses.
    std::map<unsigned, unsigned> perBank;
    for (const auto idx : pat) {
        const auto c = map.decompose(Addr{idx} * 4);
        ++perBank[c.flatBank(map.geometry())];
    }
    EXPECT_EQ(perBank.size(), 32u);
    for (const auto &[bank, count] : perBank)
        EXPECT_EQ(count, n / 32) << "bank " << bank;
}

TEST_P(DramPatternTest, AchievesRequestedRowHitFraction)
{
    const mem::AddressMap map{mem::DramGeometry{},
                              mem::MapOrder::kChBgCoBaRo};
    const std::uint32_t n = 32768;
    const DramPatternParams p = GetParam();
    const auto pat = makeDramPattern(n, p, map, 1);

    // Replay with an open-page oracle: consecutive accesses to a bank
    // hit iff the row matches the last one.
    std::map<unsigned, std::uint32_t> openRow;
    std::uint64_t hits = 0, total = 0;
    for (const auto idx : pat) {
        const auto c = map.decompose(Addr{idx} * 4);
        const unsigned b = c.flatBank(map.geometry());
        auto it = openRow.find(b);
        if (it != openRow.end()) {
            ++total;
            hits += it->second == c.row ? 1 : 0;
        }
        openRow[b] = c.row;
    }
    const double achieved =
        total ? static_cast<double>(hits) / total : 0.0;
    EXPECT_NEAR(achieved, p.rbhPercent / 100.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, DramPatternTest,
    ::testing::Values(DramPatternParams{0, false, false, 16},
                      DramPatternParams{25, false, false, 16},
                      DramPatternParams{50, false, false, 16},
                      DramPatternParams{75, true, false, 16},
                      DramPatternParams{100, true, true, 16}),
    [](const ::testing::TestParamInfo<DramPatternParams> &info) {
        return "rbh" + std::to_string(info.param.rbhPercent) +
               (info.param.channelInterleave ? "_chi" : "") +
               (info.param.bankGroupInterleave ? "_bgi" : "");
    });

/**
 * @file
 * Micro-op definition and the kernel (op-stream) interface.
 *
 * Workload kernels execute *functionally* at op-generation time: they
 * read and write SimMemory eagerly and emit a dependency-annotated
 * micro-op stream that the timing core then executes. This keeps the
 * timing model pure while indirect addresses remain exact (see
 * DESIGN.md).
 */

#ifndef DX_CPU_MICROOP_HH
#define DX_CPU_MICROOP_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace dx::cpu
{

enum class OpKind : std::uint8_t
{
    kIntAlu,    //!< integer ALU op (address calc, loop overhead)
    kFpAlu,     //!< floating-point op
    kLoad,      //!< cacheable load
    kStore,     //!< cacheable store (drains post-commit)
    kRmw,       //!< locked read-modify-write: issues at ROB head, fences
    kMmioStore, //!< uncacheable store to a device (DX100 doorbell)
    kDxWait,    //!< spin-wait until a device token reports ready
    kFence,     //!< completes when all older memory ops are done
};

/** Maximum register-dependency fan-in of one micro-op. */
constexpr unsigned kMaxDeps = 3;

struct MicroOp
{
    OpKind kind = OpKind::kIntAlu;
    std::uint8_t size = 0;       //!< access bytes for memory ops
    std::uint8_t latency = 1;    //!< execution latency for ALU ops
    std::uint16_t pc = 0;        //!< static instruction id (prefetchers)
    Addr addr = 0;               //!< target address for memory/MMIO ops
    std::uint64_t value = 0;     //!< loaded value / MMIO data / wait token
    std::array<SeqNum, kMaxDeps> deps{kNoSeq, kNoSeq, kNoSeq};
};

/**
 * Receives micro-ops from a kernel; returns the sequence number that
 * later ops can name as a dependency.
 */
class OpEmitter
{
  public:
    virtual ~OpEmitter() = default;
    virtual SeqNum emit(const MicroOp &op) = 0;

    // -- convenience builders ------------------------------------------

    SeqNum
    intOp(std::uint8_t latency = 1, SeqNum d0 = kNoSeq,
          SeqNum d1 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kIntAlu;
        op.latency = latency;
        op.deps = {d0, d1, kNoSeq};
        return emit(op);
    }

    SeqNum
    fpOp(std::uint8_t latency = 4, SeqNum d0 = kNoSeq,
         SeqNum d1 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kFpAlu;
        op.latency = latency;
        op.deps = {d0, d1, kNoSeq};
        return emit(op);
    }

    SeqNum
    load(Addr addr, std::uint8_t size, std::uint16_t pc,
         std::uint64_t value = 0, SeqNum d0 = kNoSeq, SeqNum d1 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kLoad;
        op.addr = addr;
        op.size = size;
        op.pc = pc;
        op.value = value;
        op.deps = {d0, d1, kNoSeq};
        return emit(op);
    }

    SeqNum
    store(Addr addr, std::uint8_t size, std::uint16_t pc,
          SeqNum d0 = kNoSeq, SeqNum d1 = kNoSeq, SeqNum d2 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kStore;
        op.addr = addr;
        op.size = size;
        op.pc = pc;
        op.deps = {d0, d1, d2};
        return emit(op);
    }

    SeqNum
    rmw(Addr addr, std::uint8_t size, std::uint16_t pc,
        SeqNum d0 = kNoSeq, SeqNum d1 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kRmw;
        op.addr = addr;
        op.size = size;
        op.pc = pc;
        op.deps = {d0, d1, kNoSeq};
        return emit(op);
    }

    SeqNum
    mmioStore(Addr addr, std::uint64_t data, SeqNum d0 = kNoSeq)
    {
        MicroOp op;
        op.kind = OpKind::kMmioStore;
        op.addr = addr;
        op.size = 8;
        op.value = data;
        op.deps = {d0, kNoSeq, kNoSeq};
        return emit(op);
    }

    SeqNum
    dxWait(std::uint64_t token)
    {
        MicroOp op;
        op.kind = OpKind::kDxWait;
        op.value = token;
        return emit(op);
    }

    SeqNum
    fence()
    {
        MicroOp op;
        op.kind = OpKind::kFence;
        return emit(op);
    }
};

/**
 * A resumable stream of work for one core. emitChunk() is called when
 * the core's op buffer runs low; it should emit roughly one loop
 * iteration's worth of micro-ops per call.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** More micro-ops remain to be emitted? */
    virtual bool more() const = 0;

    /** Emit the next unit of work (at least one op when more()). */
    virtual void emitChunk(OpEmitter &emitter) = 0;
};

} // namespace dx::cpu

#endif // DX_CPU_MICROOP_HH

/**
 * @file
 * DDR4 timing parameters, expressed in memory-controller clock cycles.
 *
 * The evaluated configuration (paper Table 3) is DDR4-3200 with
 * tCK = 625 ps: tRP/tRCD = 12.5 ns, tCCD_S/L = 2.5/5.0 ns, tRTP = 7.5 ns,
 * tRAS = 32.5 ns. Parameters not listed in the paper use standard
 * DDR4-3200AA values.
 */

#ifndef DX_MEM_DRAM_TIMINGS_HH
#define DX_MEM_DRAM_TIMINGS_HH

#include <cstdint>

namespace dx::mem
{

struct DramTimings
{
    // Row commands.
    unsigned tRCD = 20;   //!< ACT -> column command, 12.5 ns
    unsigned tRP = 20;    //!< PRE -> ACT, 12.5 ns
    unsigned tRAS = 52;   //!< ACT -> PRE, 32.5 ns
    unsigned tRTP = 12;   //!< RD -> PRE, 7.5 ns
    unsigned tWR = 24;    //!< end of write data -> PRE, 15 ns

    // Column commands.
    unsigned tCL = 22;    //!< RD -> first data beat
    unsigned tCWL = 16;   //!< WR -> first data beat
    unsigned tBL = 4;     //!< burst length 8 at DDR = 4 controller cycles
    unsigned tCCD_S = 4;  //!< col -> col, different bank group, 2.5 ns
    unsigned tCCD_L = 8;  //!< col -> col, same bank group, 5.0 ns

    // Activation spacing.
    unsigned tRRD_S = 4;  //!< ACT -> ACT, different bank group
    unsigned tRRD_L = 8;  //!< ACT -> ACT, same bank group
    unsigned tFAW = 26;   //!< four-activate window, 16 ns

    // Bus turnaround.
    unsigned tWTR_S = 4;  //!< write data -> RD, different bank group
    unsigned tWTR_L = 12; //!< write data -> RD, same bank group
    unsigned tRTW = 12;   //!< RD -> WR gap (CL - CWL + BL + 2)

    // Refresh.
    unsigned tREFI = 12480; //!< refresh interval, 7.8 us
    unsigned tRFC = 560;    //!< refresh cycle time, 350 ns (8 Gb)
    bool refreshEnabled = true;

    /** ACT -> ACT same bank. */
    unsigned tRC() const { return tRAS + tRP; }
};

} // namespace dx::mem

#endif // DX_MEM_DRAM_TIMINGS_HH

/**
 * @file
 * Memory controller tests: latency, row-buffer behaviour, bank-group
 * spacing, write drain, refresh, and FR-FCFS reordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "mem/dram_system.hh"

using namespace dx;
using namespace dx::mem;

namespace
{

struct Collector : public MemRespSink
{
    struct Done
    {
        std::uint64_t tag;
        Cycle at;
        bool write;
    };

    std::vector<Done> done;
    DramSystem *dram = nullptr;

    void
    complete(const MemRequest &req) override
    {
        done.push_back({req.tag,
                        dram->channel(req.coord.channel).now(),
                        req.write});
    }
};

DramSystem::Config
testConfig(bool refresh = false)
{
    DramSystem::Config cfg;
    cfg.ctrl.timings.refreshEnabled = refresh;
    return cfg;
}

void
run(DramSystem &dram, Cycle coreCycles)
{
    for (Cycle i = 0; i < coreCycles; ++i)
        dram.tick();
}

void
runUntilIdle(DramSystem &dram, Cycle maxCore = 2'000'000)
{
    for (Cycle i = 0; i < maxCore && !dram.idle(); ++i)
        dram.tick();
    ASSERT_TRUE(dram.idle());
}

} // namespace

TEST(Controller, SingleReadLatencyIsActPlusCasPlusBurst)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    dram.access(0, false, Origin::kCpuDemand, 1, &sink);
    runUntilIdle(dram);

    ASSERT_EQ(sink.done.size(), 1u);
    const auto &t = dram.channel(0).config().timings;
    // Closed bank: ACT at cycle ~1, RD at +tRCD, data at +tCL+tBL.
    const Cycle expect = 1 + t.tRCD + t.tCL + t.tBL;
    EXPECT_NEAR(static_cast<double>(sink.done[0].at),
                static_cast<double>(expect), 2.0);
}

TEST(Controller, RowHitFollowsFasterThanRowMiss)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    // Two lines in the same row (stride channels*bankGroups lines), then
    // one in a different row of the same bank.
    const AddressMap &map = dram.addressMap();
    const DramCoord c0 = map.decompose(0);
    DramCoord hit = c0;
    hit.column = c0.column + 1;
    DramCoord miss = c0;
    miss.row = c0.row + 1;

    dram.access(map.compose(c0), false, Origin::kCpuDemand, 0, &sink);
    dram.access(map.compose(hit), false, Origin::kCpuDemand, 1, &sink);
    dram.access(map.compose(miss), false, Origin::kCpuDemand, 2, &sink);
    runUntilIdle(dram);

    ASSERT_EQ(sink.done.size(), 3u);
    const auto &s = dram.channel(c0.channel).stats();
    EXPECT_EQ(s.rowHits.value(), 1u);
    EXPECT_EQ(s.rowMisses.value(), 2u);
    EXPECT_EQ(s.rowConflicts.value(), 1u);

    // The same-row access completes tCCD_L after the opener; the
    // conflicting row needs PRE + ACT + CAS.
    const Cycle hitGap = sink.done[1].at - sink.done[0].at;
    const Cycle missGap = sink.done[2].at - sink.done[1].at;
    EXPECT_LT(hitGap, missGap);
}

TEST(Controller, FrfcfsReordersRowHitsAheadOfOlderConflicts)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    const AddressMap &map = dram.addressMap();
    const DramCoord base = map.decompose(0);

    // Open row R (tag 0), then a conflicting row (tag 1), then another
    // access to R (tag 2). FR-FCFS should serve 0, 2, then 1.
    DramCoord conflict = base;
    conflict.row = base.row + 5;
    DramCoord hit = base;
    hit.column = base.column + 3;

    dram.access(map.compose(base), false, Origin::kCpuDemand, 0, &sink);
    // Let the ACT for row R land before the conflict arrives.
    run(dram, 8);
    dram.access(map.compose(conflict), false, Origin::kCpuDemand, 1,
                &sink);
    dram.access(map.compose(hit), false, Origin::kCpuDemand, 2, &sink);
    runUntilIdle(dram);

    ASSERT_EQ(sink.done.size(), 3u);
    EXPECT_EQ(sink.done[0].tag, 0u);
    EXPECT_EQ(sink.done[1].tag, 2u);
    EXPECT_EQ(sink.done[2].tag, 1u);
}

TEST(Controller, BankGroupInterleavingBeatsSameBankGroupStreams)
{
    // Issue 64 reads to open rows: once to columns spread across bank
    // groups, once confined to a single bank group. The interleaved set
    // must finish faster (tCCD_S vs tCCD_L).
    auto elapsed = [](bool interleave) {
        DramSystem dram(testConfig());
        Collector sink;
        sink.dram = &dram;
        const AddressMap &map = dram.addressMap();

        unsigned issued = 0;
        Cycle core = 0;
        while (issued < 64 || !dram.idle()) {
            while (issued < 64) {
                DramCoord c{};
                c.channel = 0;
                c.bankGroup = interleave ? (issued % 4) : 0;
                c.bank = 0;
                c.row = 0;
                c.column = issued / (interleave ? 4 : 1);
                const Addr a = map.compose(c);
                if (!dram.canAccept(a, false))
                    break;
                dram.access(a, false, Origin::kCpuDemand, issued, &sink);
                ++issued;
            }
            dram.tick();
            ++core;
        }
        return core;
    };

    const Cycle inter = elapsed(true);
    const Cycle same = elapsed(false);
    EXPECT_LT(inter, same);
    // Same-bank-group streams are limited by tCCD_L = 2 * tCCD_S.
    EXPECT_GT(static_cast<double>(same) / inter, 1.5);
}

TEST(Controller, WritesDrainAndComplete)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    for (unsigned i = 0; i < 24; ++i) {
        dram.access(Addr{i} * kLineBytes, true, Origin::kWriteback, i,
                    &sink);
    }
    runUntilIdle(dram);
    EXPECT_EQ(sink.done.size(), 24u);
    std::uint64_t writes = 0;
    for (unsigned c = 0; c < dram.channels(); ++c)
        writes += dram.channel(c).stats().writesServed.value();
    EXPECT_EQ(writes, 24u);
}

TEST(Controller, ReadsPreferredOverWritesBelowWatermark)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    // A few writes (below the high watermark) plus a read: the read
    // should complete before any write is drained.
    for (unsigned i = 0; i < 4; ++i) {
        dram.access(Addr{i} * 4096, true, Origin::kWriteback, 100 + i,
                    &sink);
    }
    dram.access(Addr{1} << 20, false, Origin::kCpuDemand, 0, &sink);
    runUntilIdle(dram);

    ASSERT_FALSE(sink.done.empty());
    // Find the read; ensure it is among the first completions on its
    // channel.
    bool readSeen = false;
    for (const auto &d : sink.done) {
        if (d.tag == 0) {
            readSeen = true;
            break;
        }
        // Writes that completed before the read must be on the other
        // channel.
        EXPECT_NE(dram.channelOf(Addr{d.tag - 100} * 4096),
                  dram.channelOf(Addr{1} << 20));
    }
    EXPECT_TRUE(readSeen);
}

TEST(Controller, RefreshClosesRowsPeriodically)
{
    DramSystem dram(testConfig(true));
    Collector sink;
    sink.dram = &dram;

    // Run past one tREFI with no traffic; a REF must have been issued.
    const auto &t = dram.channel(0).config().timings;
    run(dram, (t.tREFI + t.tRFC + 100) * 2);
    EXPECT_GE(dram.channel(0).stats().refCommands.value(), 1u);

    // Requests issued after refresh still complete.
    dram.access(0, false, Origin::kCpuDemand, 1, &sink);
    runUntilIdle(dram);
    EXPECT_EQ(sink.done.size(), 1u);
}

TEST(Controller, BackpressureReportsQueueFull)
{
    DramSystem dram(testConfig());
    // Fill channel 0's read queue (32 entries).
    unsigned enqueued = 0;
    for (unsigned i = 0; enqueued < 32; ++i) {
        const Addr a = Addr{i} * kLineBytes;
        if (dram.channelOf(a) != 0)
            continue;
        ASSERT_TRUE(dram.canAccept(a, false));
        dram.access(a, false, Origin::kCpuDemand, i, nullptr);
        ++enqueued;
    }
    // Next request to channel 0 must be refused.
    Addr a = 0;
    EXPECT_FALSE(dram.canAccept(a, false));
    EXPECT_EQ(dram.channel(0).readSlotsFree(), 0u);
}

TEST(Controller, StreamingReachesHighBusUtilization)
{
    // Sequential lines with the default interleaved mapping should keep
    // the data bus busy most of the time once the queues are primed.
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;

    Addr next = 0;
    const Addr total = 4000;
    Addr issued = 0;
    while (issued < total || !dram.idle()) {
        while (issued < total && dram.canAccept(next, false)) {
            dram.access(next, false, Origin::kCpuDemand, issued, &sink);
            next += kLineBytes;
            ++issued;
        }
        dram.tick();
    }

    EXPECT_GT(dram.busUtilization(), 0.85);
    EXPECT_GT(dram.rowHitRate(), 0.9);
}

TEST(Controller, RandomRowsYieldLowRowHitRate)
{
    DramSystem dram(testConfig());
    Collector sink;
    sink.dram = &dram;
    dx::Rng rng(99);

    Addr issued = 0;
    const Addr total = 4000;
    while (issued < total || !dram.idle()) {
        while (issued < total) {
            const Addr a =
                lineAlign(rng.below(dram.geometry().capacity()));
            if (!dram.canAccept(a, false))
                break;
            dram.access(a, false, Origin::kCpuDemand, issued, &sink);
            ++issued;
        }
        dram.tick();
    }

    EXPECT_LT(dram.rowHitRate(), 0.4);
    EXPECT_LT(dram.busUtilization(), 0.7);
}

/**
 * @file
 * UME (Unstructured Mesh Explorations) gradient kernels (paper §5):
 * GZZ, GZP (conditional single-loop RMW through a mesh indirection
 * map) and GZZI, GZPI (conditional two-level gather over indirect
 * range loops).
 */

#ifndef DX_WORKLOADS_UME_HH
#define DX_WORKLOADS_UME_HH

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

/** GZZ / GZP: A[B[i]] += val[i] if D[i] >= F (f64 gradients). */
class UmeGradient : public Workload
{
  public:
    enum class Variant
    {
        kZone,  //!< GZZ: zone-centred map
        kPoint, //!< GZP: point-centred map (different spread)
    };

    UmeGradient(Variant v, Scale s);

    std::string name() const override
    {
        return variant_ == Variant::kZone ? "GZZ" : "GZP";
    }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    Variant variant_;
    std::size_t n_;
    std::vector<std::uint32_t> map_;
    Addr a_ = 0, b_ = 0, d_ = 0, val_ = 0;
    double threshold_ = 0.3;
};

/** GZZI / GZPI: sum of A[B[C[j]]] if D[j] >= F, j in indirect ranges. */
class UmeGradientIndirect : public Workload
{
  public:
    enum class Variant
    {
        kZone,  //!< GZZI
        kPoint, //!< GZPI
    };

    UmeGradientIndirect(Variant v, Scale s);

    std::string name() const override
    {
        return variant_ == Variant::kZone ? "GZZI" : "GZPI";
    }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    Variant variant_;
    std::size_t outer_;
    MeshRanges ranges_;
    std::vector<std::uint32_t> cmap_; //!< C: corner -> point
    std::vector<std::uint32_t> bmap_; //!< B: point -> data slot
    Addr a_ = 0, b_ = 0, c_ = 0, d_ = 0, lo_ = 0, hi_ = 0, out_ = 0;
    double threshold_ = 0.3;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_UME_HH

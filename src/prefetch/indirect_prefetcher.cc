#include "prefetch/indirect_prefetcher.hh"

#include <cstdlib>

#include "sim/stat_registry.hh"

namespace dx::prefetch
{

IndirectPrefetcher::IndirectPrefetcher(const Config &cfg,
                                       const SimMemory *mem)
    : Component("dmp"), cfg_(cfg), mem_(mem),
      streams_(cfg.streamTableSize), patterns_(cfg.patternTableSize)
{
}

IndirectPrefetcher::Stream &
IndirectPrefetcher::streamFor(std::uint16_t pc)
{
    return streams_[pc % cfg_.streamTableSize];
}

void
IndirectPrefetcher::push(Addr line)
{
    if (queue_.size() < cfg_.queueMax)
        queue_.push_back(lineAlign(line));
}

void
IndirectPrefetcher::observe(const cache::CacheReq &req, bool miss)
{
    if (req.origin != mem::Origin::kCpuDemand)
        return;

    // 1. Differential matching: correlate this miss address with the
    //    values of recent strided index loads. RMW targets are writes
    //    that read, so they participate too.
    if (miss)
        matchMiss(req.addr);

    if (req.write || req.pc == 0)
        return;

    // 2. Stream detection over the index load's addresses.
    Stream &s = streamFor(req.pc);
    if (!s.valid || s.pc != req.pc) {
        s = Stream{};
        s.valid = true;
        s.pc = req.pc;
        s.lastAddr = req.addr;
        return;
    }
    const std::int64_t delta = static_cast<std::int64_t>(req.addr) -
                               static_cast<std::int64_t>(s.lastAddr);
    s.lastAddr = req.addr;
    if (delta == 0)
        return;
    if (delta == s.stride) {
        if (s.confidence < cfg_.confidenceThreshold + 2)
            ++s.confidence;
    } else {
        if (--s.confidence <= 0) {
            s.stride = delta;
            s.confidence = 1;
        }
        return;
    }

    if (s.confidence < cfg_.confidenceThreshold)
        return;
    const std::int64_t absStride = std::abs(s.stride);
    if (absStride != 4 && absStride != 8)
        return; // not an index-element stream

    // Remember this confirmed index load for matching and triggering.
    Recent r;
    r.pc = req.pc;
    r.value = req.value;
    r.addr = req.addr;
    r.stride = s.stride;
    r.bytes = static_cast<unsigned>(absStride);
    recent_.push_back(r);
    while (recent_.size() > cfg_.recentValues)
        recent_.pop_front();

    // Stream-prefetch the index array itself.
    for (unsigned k = 1; k <= cfg_.streamDegree; ++k) {
        push(static_cast<Addr>(
            static_cast<std::int64_t>(req.addr) +
            s.stride * static_cast<std::int64_t>(8 + k)));
        ++stats_.streamPrefetches;
    }

    triggerIndirect(r);
}

void
IndirectPrefetcher::matchMiss(Addr missAddr)
{
    for (const Recent &r : recent_) {
        for (unsigned scale : {4u, 8u}) {
            const std::int64_t base =
                static_cast<std::int64_t>(missAddr) -
                static_cast<std::int64_t>(r.value * scale);
            if (base < 0)
                continue;
            // Confirm or allocate a pattern (indexPc, scale, base).
            Pattern *free = nullptr;
            Pattern *weakest = &patterns_[0];
            bool handled = false;
            for (auto &p : patterns_) {
                if (p.valid && p.indexPc == r.pc && p.scale == scale &&
                    p.base == base) {
                    if (p.confidence < cfg_.confidenceThreshold + 2)
                        ++p.confidence;
                    if (p.confidence == cfg_.confidenceThreshold)
                        ++stats_.patternsLearned;
                    handled = true;
                    break;
                }
                if (!p.valid)
                    free = &p;
                else if (p.confidence < weakest->confidence)
                    weakest = &p;
            }
            if (handled)
                continue;
            Pattern *slot = free ? free : weakest;
            if (!free && slot->confidence > 0) {
                --slot->confidence;
                continue;
            }
            slot->valid = true;
            slot->indexPc = r.pc;
            slot->base = base;
            slot->scale = scale;
            slot->confidence = 1;
        }
    }
}

void
IndirectPrefetcher::triggerIndirect(const Recent &r)
{
    for (const auto &p : patterns_) {
        if (!p.valid || p.indexPc != r.pc ||
            p.confidence < cfg_.confidenceThreshold) {
            continue;
        }
        // Future index value, d elements ahead of the demand stream.
        const Addr futureAddr = static_cast<Addr>(
            static_cast<std::int64_t>(r.addr) +
            r.stride * static_cast<std::int64_t>(cfg_.distance));
        const std::uint64_t v =
            r.bytes == 4 ? mem_->read<std::uint32_t>(futureAddr)
                         : mem_->read<std::uint64_t>(futureAddr);
        push(static_cast<Addr>(p.base + v * p.scale));
        ++stats_.indirectPrefetches;
    }
}

bool
IndirectPrefetcher::nextPrefetch(Addr &line)
{
    if (queue_.empty())
        return false;
    line = queue_.front();
    queue_.pop_front();
    return true;
}

void
IndirectPrefetcher::registerStats(StatRegistry &reg) const
{
    auto g = reg.group(path());
    g.value("patternsLearned", stats_.patternsLearned);
    g.value("indirectPrefetches", stats_.indirectPrefetches);
    g.value("streamPrefetches", stats_.streamPrefetches);
}

} // namespace dx::prefetch

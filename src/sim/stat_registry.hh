/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register named counters and derived gauges under their
 * dotted component path ("system.core0.committedOps",
 * "system.dram.ch0.rowHits"). The registry stores typed references to
 * the live objects, so reads always observe current values:
 *
 *  - counter / value entries reference a Counter or std::uint64_t and
 *    read back exactly (intValue());
 *  - derived entries wrap a std::function and reproduce the exact
 *    arithmetic of the component's own accessor, which is what lets
 *    System::collectStats() become a pure projection of the registry
 *    with bit-identical RunStats output.
 *
 * Paths are unique (registration fatals on a duplicate) and the whole
 * registry renders as nested JSON — split on '.' — for the
 * DX_STATS_JSON=<path> dump every bench supports.
 */

#ifndef DX_SIM_STAT_REGISTRY_HH
#define DX_SIM_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace dx
{

class StatRegistry
{
  public:
    /**
     * Registration handle scoped to one path prefix; sub() descends.
     * Components create one with group(path()) and add leaf names.
     */
    class Group
    {
      public:
        /** A monotonic event counter (read back exactly). */
        void
        counter(const char *name, const Counter &c)
        {
            reg_->addCounter(join(name), &c);
        }

        /** A raw integral stat (read back exactly). */
        void
        value(const char *name, const std::uint64_t &v)
        {
            reg_->addUint(join(name), &v);
        }

        /** A derived integral stat (computed on read). */
        void
        value(const char *name, std::function<std::uint64_t()> f)
        {
            reg_->addUintFn(join(name), std::move(f));
        }

        /** A derived floating-point stat (computed on read). */
        void
        gauge(const char *name, std::function<double()> f)
        {
            reg_->addGauge(join(name), std::move(f));
        }

        Group sub(const char *name) const { return {reg_, join(name)}; }

      private:
        friend class StatRegistry;
        Group(StatRegistry *reg, std::string prefix)
            : reg_(reg), prefix_(std::move(prefix))
        {
        }

        std::string
        join(const char *name) const
        {
            return prefix_.empty() ? std::string(name)
                                   : prefix_ + "." + name;
        }

        StatRegistry *reg_;
        std::string prefix_;
    };

    Group group(const std::string &prefix) { return {this, prefix}; }

    bool has(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /** Every registered path, in registration order. */
    std::vector<std::string> paths() const;

    /**
     * Exact integral read of a counter/value entry; fatal for derived
     * floating-point entries or unknown paths (the RunStats projection
     * must never silently round-trip through double).
     */
    std::uint64_t intValue(const std::string &path) const;

    /** Numeric read of any entry (integrals widen to double). */
    double value(const std::string &path) const;

    /** Render the registry as nested JSON (split paths on '.'). */
    std::string toJson() const;

    /**
     * Write toJson() to @p file via a unique temp file and an atomic
     * rename, so concurrent writers (parallel bench jobs sharing one
     * DX_STATS_JSON target) never interleave; the last completed run
     * wins.
     */
    void writeJsonFile(const std::string &file) const;

  private:
    struct Entry
    {
        enum class Kind : std::uint8_t
        {
            kCounter,
            kUint,
            kUintFn,
            kGauge,
        };

        Kind kind;
        const Counter *counter = nullptr;
        const std::uint64_t *uintPtr = nullptr;
        std::function<std::uint64_t()> uintFn;
        std::function<double()> gauge;
    };

    void addCounter(std::string path, const Counter *c);
    void addUint(std::string path, const std::uint64_t *v);
    void addUintFn(std::string path, std::function<std::uint64_t()> f);
    void addGauge(std::string path, std::function<double()> f);
    void addEntry(std::string path, Entry e);
    const Entry &find(const std::string &path) const;

    std::vector<std::pair<std::string, Entry>> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace dx

#endif // DX_SIM_STAT_REGISTRY_HH

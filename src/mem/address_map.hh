/**
 * @file
 * Physical address to DRAM coordinate mapping.
 *
 * A line address is decomposed, LSB to MSB, into a configurable order of
 * {channel, bank group, bank, column, rank, row} fields. The default
 * order (kChBgCoBaRo) interleaves consecutive cache lines first across
 * channels, then across bank groups, so streaming accesses enjoy both
 * channel parallelism and tCCD_S column spacing, while 128 consecutive
 * per-bank-group lines share one DRAM row.
 */

#ifndef DX_MEM_ADDRESS_MAP_HH
#define DX_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dx::mem
{

/** Geometry of the DRAM system. */
struct DramGeometry
{
    unsigned channels = 2;
    unsigned ranks = 1;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowBytes = 8192;   //!< row-buffer size per bank
    unsigned rows = 1u << 16;

    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }
    unsigned banksPerChannel() const { return ranks * banksPerRank(); }
    unsigned totalBanks() const { return channels * banksPerChannel(); }
    unsigned linesPerRow() const { return rowBytes / kLineBytes; }

    /** Total capacity in bytes. */
    std::uint64_t
    capacity() const
    {
        return std::uint64_t{channels} * ranks * banksPerRank() * rows *
               rowBytes;
    }
};

/** Field interleaving order, LSB first. */
enum class MapOrder
{
    kChBgCoBaRo, //!< ch, bg, column, bank, row (default, interleaved)
    kChCoBgBaRo, //!< ch, column, bg, bank (row-major inside a bank group)
    kCoChBgBaRo, //!< column lowest: whole rows contiguous per channel
};

std::string to_string(MapOrder order);

/** Coordinates of one cache line inside the DRAM system. */
struct DramCoord
{
    std::uint16_t channel = 0;
    std::uint16_t rank = 0;
    std::uint16_t bankGroup = 0;
    std::uint16_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0; //!< line-granularity column within the row

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bankGroup == o.bankGroup && bank == o.bank &&
               row == o.row && column == o.column;
    }

    /** Flat bank id within a channel: rank x bankGroup x bank. */
    unsigned
    bankInChannel(const DramGeometry &g) const
    {
        return (rank * g.bankGroups + bankGroup) * g.banksPerGroup + bank;
    }

    /** Flat bank id across the whole system. */
    unsigned
    flatBank(const DramGeometry &g) const
    {
        return channel * g.banksPerChannel() + bankInChannel(g);
    }
};

class AddressMap
{
  public:
    AddressMap() : AddressMap(DramGeometry{}, MapOrder::kChBgCoBaRo) {}

    AddressMap(const DramGeometry &geom, MapOrder order)
        : geom_(geom), order_(order)
    {}

    /** Decompose a byte address (its line) into DRAM coordinates. */
    DramCoord decompose(Addr addr) const;

    /** Recompose coordinates into the line base address (inverse). */
    Addr compose(const DramCoord &coord) const;

    const DramGeometry &geometry() const { return geom_; }
    MapOrder order() const { return order_; }

  private:
    DramGeometry geom_;
    MapOrder order_;
};

} // namespace dx::mem

#endif // DX_MEM_ADDRESS_MAP_HH

/**
 * @file
 * A cycle-level set-associative write-back cache with MSHRs.
 *
 * Used for the private L1D/L2 and the shared LLC. Misses allocate MSHRs
 * (coalescing secondary accesses as targets) and forward downstream
 * through a CachePort. The LLC acts as the inclusive root: evictions
 * back-invalidate the private levels, which also gives DX100 an exact
 * one-bit "is this line cached anywhere?" snoop (the H bit of §3.6).
 */

#ifndef DX_CACHE_CACHE_HH
#define DX_CACHE_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_if.hh"
#include "cache/prefetcher.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dx::cache
{

class Cache : public CachePort, public CacheRespSink
{
  public:
    struct Config
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        unsigned assoc = 8;
        unsigned latency = 4;        //!< lookup latency in core cycles
        unsigned mshrs = 16;
        unsigned targetsPerMshr = 8;
        unsigned queueSize = 16;     //!< input queue entries
        unsigned width = 2;          //!< lookups per cycle
        bool inclusiveRoot = false;  //!< back-invalidate children on evict
    };

    struct Stats
    {
        Counter demandHits;    //!< CPU demand only
        Counter demandMisses;  //!< CPU demand only
        Counter demandAccesses;
        Counter dxHits;        //!< DX100-originated traffic
        Counter dxMisses;
        Counter mshrCoalesced;
        Counter writebacks;
        Counter evictions;
        Counter backInvalidates;
        Counter prefetchesIssued;
        Counter prefetchesUseful; //!< demand hit on a prefetched line
        Counter stallMshrFull;
        Counter stallDownstream;
    };

    Cache(const Config &cfg, CachePort *downstream);

    /** Attach a prefetcher (optional). */
    void setPrefetcher(std::unique_ptr<Prefetcher> pf);

    /** Register an upper-level cache for inclusive back-invalidation. */
    void addChild(Cache *child) { children_.push_back(child); }

    // CachePort (upstream-facing).
    bool portCanAccept() const override;
    void portRequest(const CacheReq &req) override;

    // CacheRespSink (downstream fill responses).
    void cacheResponse(std::uint64_t tag) override;

    /** Advance one core cycle. */
    void tick();

    /** True if any request, MSHR or writeback is in flight. */
    bool busy() const;

    /** Snoop: line present (or being filled) at this level? */
    bool containsLine(Addr line) const;

    /** Tag-store residency only (no in-flight fills). */
    bool tagsHold(Addr line) const;

    /** Drop a line if present; returns true if it was dirty. */
    bool invalidateLine(Addr line);

    /**
     * Pre-install a clean line (cache warm-up for regions that are
     * architecturally resident when the region of interest begins).
     */
    void warmInsert(Addr line) { installLine(lineAlign(line), false,
                                             false); }

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }
    Prefetcher *prefetcher() { return prefetcher_.get(); }

    /** Render in-flight state (queues, MSHRs) for debugging. */
    std::string debugDump() const;

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        std::uint64_t lastUse = 0;
    };

    struct Target
    {
        std::uint64_t tag;
        CacheRespSink *sink;
        bool write;
    };

    struct Mshr
    {
        bool valid = false;
        Addr line = 0;
        bool dirtyOnFill = false;
        bool prefetch = false;
        std::vector<Target> targets;
    };

    struct Pending
    {
        CacheReq req;
        Cycle readyAt;
    };

    unsigned setIndex(Addr line) const;
    Way *lookup(Addr line);
    int mshrFor(Addr line) const;
    int freeMshr() const;

    /** Install a line, evicting the victim; may queue a writeback. */
    void installLine(Addr line, bool dirty, bool prefetched);

    /** Process one queued request; false => stall, leave at head. */
    bool processRequest(const CacheReq &req);

    void issuePrefetches();
    void drainWritebacks();

    const Config cfg_;
    CachePort *const downstream_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<Cache *> children_;

    unsigned numSets_;
    std::vector<std::vector<Way>> sets_;
    std::vector<Mshr> mshrs_;
    std::deque<Pending> queue_;
    std::deque<Addr> writebacks_; //!< dirty victim lines awaiting drain

    Cycle now_ = 0;
    std::uint64_t useCounter_ = 0;
    Stats stats_;
};

} // namespace dx::cache

#endif // DX_CACHE_CACHE_HH

/**
 * @file
 * Cycle-level out-of-order core model.
 *
 * Models the structures that bound memory-level parallelism in the
 * paper's baseline (Table 3): issue width, ROB, load and store queues,
 * cache MSHRs (via the attached hierarchy), the dependence chains between
 * index loads / address arithmetic / indirect accesses, and x86-style
 * locked RMW semantics (issue at ROB head with drained store buffer,
 * fencing younger memory ops). Fetch/decode details and branch
 * prediction are intentionally not modeled; every committed micro-op
 * counts as one instruction.
 */

#ifndef DX_CPU_CORE_HH
#define DX_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/cache_if.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/microop.hh"
#include "cpu/mmio.hh"
#include "sim/component.hh"

namespace dx::cpu
{

class Core final : public Component,
                   public cache::CacheRespSink,
                   public OpEmitter
{
  public:
    struct Config
    {
        unsigned width = 8;        //!< dispatch/commit width
        unsigned robSize = 224;
        unsigned lqSize = 72;
        unsigned sqSize = 56;
        unsigned loadPorts = 2;    //!< loads issued to L1 per cycle
        unsigned storeDrain = 1;   //!< post-commit stores to L1 per cycle
        unsigned mmioLatency = 40; //!< core->device one-way, cycles
        unsigned pollInterval = 60;  //!< wait-loop poll period
        unsigned pollInstrCost = 3;  //!< spin-loop instructions per poll
    };

    struct Stats
    {
        Counter committedOps;
        Counter committedLoads;
        Counter committedStores;
        Counter committedRmws;
        Counter waitCycles;      //!< cycles stalled in kDxWait at head
        Counter robStallCycles;  //!< dispatch blocked: ROB full
        Counter lqStallCycles;
        Counter sqStallCycles;
        std::uint64_t lqOccupancyAccum = 0;
        std::uint64_t robOccupancyAccum = 0;
        std::uint64_t cycles = 0;
    };

    Core(const Config &cfg, int id, cache::CachePort *l1);

    /** Attach the kernel supplying this core's op stream. */
    void
    setKernel(Kernel *kernel)
    {
        kernel_ = kernel;
        sleepValid_ = false;
        blockedValid_ = false;
        skipMemoValid_ = false;
        evMemoValid_ = false;
    }

    /** Attach the MMIO device (DX100 instance) visible to this core. */
    void setMmioDevice(MmioDevice *dev) { mmio_ = dev; }

    /** Advance one core cycle. */
    void tick() override;

    /**
     * Quiescence contract (see DESIGN.md): tick() this cycle would
     * change nothing but the closed-form per-cycle stats (cycles,
     * occupancy integrals, the current stall counter, kDxWait
     * waitCycles) — no wheel completion, nothing issuable, nothing
     * dispatchable, no store/MMIO drain, no head retirement.
     *
     * Inline fast path: the scheduler probes every core every cycle,
     * so the sleep-stable memo must cost one load at the call site.
     */
    bool
    quiescent() const override
    {
        if (sleepValid_)
            return true;
        // L1-gated memo: valid while the L1 pop counter is unmoved
        // (one load via the cached address — see popCountAddr).
        if (blockedValid_ && l1PopAddr_ && *l1PopAddr_ == blockedPops_)
            return true;
        return quiescentSlow();
    }

    /**
     * Earliest cycle tick() could act again without external stimulus:
     * the next MMIO delivery or kDxWait poll; kNeverCycle when only a
     * cache response can wake us. Only meaningful while quiescent().
     * The result is absolute and reads only core-private state, so it
     * is memoized against the same entry points as the sleep memo.
     */
    Cycle
    nextEventAt() const override
    {
        return evMemoValid_ ? evMemo_ : nextEventAtSlow();
    }

    /**
     * Closed-form advance over @p n cycles the caller has proven
     * quiescent, accumulating exactly the stats the naive per-cycle
     * loop would have.
     */
    void skipCycles(Cycle n) override;

    /** This core's clock (kept in sync with the System clock). */
    Cycle localNow() const override { return now_; }

    /** Kernel exhausted and every buffer drained. */
    bool done() const;

    /** Component drain is the same predicate as done(). */
    bool drained() const override { return done(); }

    // Component introspection.
    void registerStats(StatRegistry &reg) const override;

    std::vector<PortRef>
    portRefs() const override
    {
        return {{l1_.name(), l1_.bound()}};
    }

    // OpEmitter: queue an op into the front-end buffer.
    SeqNum emit(const MicroOp &op) override;

    // CacheRespSink: load/store/RMW completions from L1.
    void complete(const std::uint64_t &tag) override;

    const Stats &stats() const { return stats_; }
    int id() const { return id_; }

  private:
    enum class EntryState : std::uint8_t
    {
        kWaiting,   //!< dependencies outstanding
        kReady,     //!< in the ready queue
        kIssued,    //!< executing
        kComplete,  //!< result available
    };

    struct RobEntry
    {
        MicroOp op;
        EntryState state = EntryState::kWaiting;
        unsigned depsLeft = 0;
        std::vector<SeqNum> dependents;
        bool headBlocked = false; //!< kRmw/kDxWait: wait for ROB head
    };

    // Pipeline stages, called in tick().
    void refillOpBuffer();
    void dispatch();
    void issue();
    void commit();
    void drainStores();
    void drainMmio();

    /**
     * Why dispatch() would stall on the front-end head this cycle
     * (kNone = it would dispatch, or the buffer is empty). Shared by
     * quiescent() and skipCycles() so the skipped stall counters match
     * the naive loop's bit-for-bit.
     */
    enum class DispatchStall : std::uint8_t
    {
        kNone,
        kRob,
        kLq,
        kSq,
    };
    DispatchStall dispatchStall() const;

    /**
     * Cross-cycle memo that the core is quiescent *and* the verdict
     * is sleep-stable: it depends only on core-private state, not on
     * L1 input-queue space (which changes without this core seeing a
     * call). Only the ready-queue-front and store-drain no-op cases
     * consult the L1, so the memo is set only when both queues are
     * empty. Cleared by tick(), complete() and setKernel() — the
     * only entry points that mutate core state. While set, quiescent()
     * is a single load.
     */
    mutable bool sleepValid_ = false;

    /**
     * Companion memo for the quiescent-but-L1-gated shapes (ready-
     * queue front load, or store drain, blocked on a full L1 input
     * queue): the verdict holds as long as the L1 reports no queue
     * departures — arrivals never free space, and everything else the
     * verdict reads is core-private. Cleared together with
     * sleepValid_; never set when the L1 cannot track departures.
     */
    mutable bool blockedValid_ = false;
    mutable std::uint64_t blockedPops_ = 0;
    //! L1 pop counter, resolved once at wiring (null if untracked).
    const std::uint64_t *l1PopAddr_ = nullptr;

    /**
     * The per-cycle stall counters a skipped cycle must accrue (head
     * kDxWait flag, dispatch stall class), memoized across skips: the
     * inputs are core-private and frozen between the same entry points
     * that clear sleepValid_, so they are cleared together.
     */
    mutable bool skipMemoValid_ = false;
    mutable bool skipWait_ = false;
    mutable DispatchStall skipStall_ = DispatchStall::kNone;

    /**
     * Memo for nextEventAt(): its inputs (MMIO buffer head, ROB head
     * poll deadline) are core-private and absolute, so the value holds
     * across skips until the entry points that clear the sleep memo
     * run. Cleared together with sleepValid_.
     */
    mutable bool evMemoValid_ = false;
    mutable Cycle evMemo_ = 0;

    // Out-of-line halves of the quiescence API (header fast paths
    // handle the long-lived memoized shapes).
    bool quiescentSlow() const;
    Cycle nextEventAtSlow() const;

    RobEntry &entry(SeqNum seq);
    const RobEntry &entry(SeqNum seq) const;
    bool inRob(SeqNum seq) const;
    bool depSatisfied(SeqNum dep) const;
    void markComplete(SeqNum seq);
    void wakeDependents(RobEntry &e);
    bool issueMemOp(RobEntry &e, SeqNum seq);
    bool fencePending(SeqNum seq) const;

    const Config cfg_;
    const int id_;
    PortSlot<cache::CacheReq> l1_{"l1"};
    Kernel *kernel_ = nullptr;
    MmioDevice *mmio_ = nullptr;

    Cycle now_ = 0;

    // Front-end buffer between the kernel and dispatch.
    std::deque<MicroOp> opBuffer_;
    SeqNum nextSeq_ = 1;     //!< seq of the next op to be *emitted*
    SeqNum bufferHeadSeq_ = 1; //!< seq of opBuffer_.front()

    // ROB ring: seq of the oldest in-flight op is robHead_.
    std::vector<RobEntry> rob_;
    SeqNum robHead_ = 1;
    SeqNum robTail_ = 1; //!< seq the next dispatched op will get
    unsigned lqUsed_ = 0;
    unsigned sqUsed_ = 0;

    std::deque<SeqNum> readyQueue_;
    std::vector<SeqNum> fenceBlocked_; //!< mem ops held by an older fence

    // Execution completion wheel for fixed-latency ALU ops.
    std::vector<std::vector<SeqNum>> wheel_;
    unsigned wheelPos_ = 0;
    unsigned wheelPending_ = 0; //!< entries across all wheel slots

    // In-flight fencing ops (kRmw/kFence), oldest first.
    std::deque<SeqNum> fencing_;

    // Post-commit L1 store writes awaiting completion (SQ slots held).
    unsigned inflightStoreWrites_ = 0;

    // Post-commit store drain: stores awaiting L1 acceptance. The SQ
    // slot is released when the L1 write completes.
    std::deque<MicroOp> storeBuffer_;
    // Post-commit MMIO stores: delivered in order after mmioLatency.
    std::deque<std::pair<Cycle, MicroOp>> mmioBuffer_;

    Cycle nextPollAt_ = 0;

    Stats stats_;
};

} // namespace dx::cpu

#endif // DX_CPU_CORE_HH

/**
 * @file
 * Compiler passes over the loop IR (paper §4.2):
 *
 *  - analysis: use-def DFS classifying references as streaming /
 *    indirect and computing the indirection depth;
 *  - legality: hoisting/sinking is legal only if no statement stores
 *    to an array the loop also loads from (alias check), and RMW
 *    update operators are associative + commutative;
 *  - tiling + code generation: lower the loop body into per-tile
 *    packed operations (the DX100 API sequence).
 */

#ifndef DX_LOOPIR_PASSES_HH
#define DX_LOOPIR_PASSES_HH

#include <optional>
#include <string>
#include <vector>

#include "loopir/ir.hh"

namespace dx::loopir
{

/** Result of the use-def DFS over one expression. */
struct RefAnalysis
{
    bool usesIndVar = false;
    unsigned indirectionDepth = 0; //!< 0 = affine/streaming
    bool affine = false;           //!< index is i (stride-1 stream)
};

RefAnalysis analyzeExpr(const ExprPtr &e);

/** Legality verdict for offloading the whole loop to DX100. */
struct Legality
{
    bool ok = false;
    std::string reason;
};

Legality checkLegality(const Program &prog);

/** One lowered DX100 operation (mirrors the runtime API). */
struct PackedOp
{
    enum class Kind
    {
        kSld,  //!< dst <- stream(array, start=tileBase)
        kIld,  //!< dst <- array[src1]
        kAluS, //!< dst <- src1 op scalar
        kAluV, //!< dst <- src1 op src2
        kIst,  //!< array[src1] <- src2
        kIrmw, //!< array[src1] op= src2
        kSst,  //!< stream(array, start=tileBase) <- src1
    };

    Kind kind = Kind::kSld;
    int array = -1;
    AluOp op = AluOp::kNone;
    std::uint64_t scalar = 0;
    int dst = -1;   //!< virtual tile id
    int src1 = -1;
    int src2 = -1;
    int cond = -1;  //!< virtual condition tile, -1 = none
    DataType dtype = DataType::kU32;

    std::string toString(const Program &prog) const;
};

/** The tile-granular plan produced by code generation. */
struct TilePlan
{
    std::vector<PackedOp> ops;
    unsigned tilesNeeded = 0; //!< virtual tiles used per tile batch
};

/**
 * Lower the program into a per-tile packed-op sequence. Fails (with a
 * reason) if the loop is illegal or uses unsupported shapes.
 */
struct CodegenResult
{
    bool ok = false;
    std::string reason;
    TilePlan plan;
};

CodegenResult lowerToDx100(const Program &prog);

/** Render the plan as readable pseudo-assembly. */
std::string planToString(const Program &prog, const TilePlan &plan);

} // namespace dx::loopir

#endif // DX_LOOPIR_PASSES_HH

/**
 * @file
 * Analytical area/power model (paper Table 4 + §6.5).
 *
 * Component areas and powers are the paper's 28 nm synthesis results;
 * scaling to 14 nm uses Stillmaker & Baas-style technology scaling
 * factors. The processor-overhead computation mirrors §6.5: a 14 nm
 * Skylake core is ~10.1 mm^2, a 2 MB LLC slice ~2.3 mm^2, and DX100 is
 * shared by four cores.
 */

#ifndef DX_MODEL_AREA_POWER_HH
#define DX_MODEL_AREA_POWER_HH

#include <string>
#include <vector>

namespace dx::model
{

struct Component
{
    std::string name;
    double areaMm2atlas28 = 0.0; //!< mm^2 at 28 nm
    double powerMw28 = 0.0;      //!< mW at 28 nm
};

struct AreaPowerModel
{
    /** Paper Table 4 components (28 nm). */
    static std::vector<Component> components();

    /** Area scaling factor 28 nm -> 14 nm (Stillmaker & Baas). */
    static double areaScale28to14();

    /** Total DX100 area at 28 nm (mm^2). */
    static double totalArea28();

    /** Total DX100 power at 28 nm (mW). */
    static double totalPower28();

    /** Total DX100 area scaled to 14 nm (mm^2). */
    static double totalArea14();

    /** Per-processor overhead of one DX100 shared by @p cores cores. */
    static double processorOverhead(unsigned cores = 4);

    /** 14 nm Skylake core area (die-shot estimate), mm^2. */
    static constexpr double kCoreArea14 = 10.1;

    /** 14 nm 2 MB LLC slice area, mm^2. */
    static constexpr double kLlcSliceArea14 = 2.3;
};

} // namespace dx::model

#endif // DX_MODEL_AREA_POWER_HH

/**
 * @file
 * Tests for paper-extension features: the top-down BFS step
 * (footnote 1) and the finish-bit (§3.5) producer->consumer overlap.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/experiment.hh"
#include "workloads/gap.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

struct DirectEmitter : public cpu::OpEmitter
{
    dx100::Dx100 *dev = nullptr;
    SeqNum next = 1;

    SeqNum
    emit(const cpu::MicroOp &op) override
    {
        if (dev && op.kind == cpu::OpKind::kMmioStore)
            dev->mmioWrite(op.addr, op.value, 0);
        return next++;
    }
};

} // namespace

TEST(Extensions, TopDownBfsCorrectOnBaseline)
{
    BfsTopDown w{Scale{0.05}};
    const RunStats s = runWorkloadOnce(w, SystemConfig::baseline());
    EXPECT_GT(s.instructions, 0u);
}

TEST(Extensions, TopDownBfsCorrectOnDx100)
{
    BfsTopDown w{Scale{0.05}};
    const RunStats s = runWorkloadOnce(w, SystemConfig::withDx100());
    EXPECT_GT(s.dxInstructions, 0u);
}

TEST(Extensions, TopDownBfsCorrectOnDmp)
{
    BfsTopDown w{Scale{0.05}};
    runWorkloadOnce(w, SystemConfig::withDmp());
}

TEST(Extensions, FinishBitsLetConsumerRunUnderProducer)
{
    // The §3.5 mechanism: an ILD whose index tile is still being
    // loaded by the Stream unit must (a) dispatch while the SLD is in
    // flight, (b) make fill progress paced by the producer's prefix,
    // and (c) never run ahead of it. We observe the unit states via
    // debugDump snapshots; the values themselves come from the
    // runtime's functional mirror, so correctness is checked too.
    //
    // (End-to-end cycle savings are deliberately not asserted here:
    // when both phases are DRAM-bandwidth-bound the total traffic is
    // the binding constraint and overlap only hides the fill stage.)
    const std::size_t n = 16384;
    System sys(SystemConfig::withDx100());
    SimMemory &mem = sys.memory();
    const Addr b = sys.allocator().alloc(n * 4);
    const Addr a = sys.allocator().alloc(Addr{16} << 20);
    Rng rng(3);
    for (std::size_t i = 0; i < n; ++i) {
        mem.write<std::uint32_t>(
            b + i * 4,
            static_cast<std::uint32_t>(rng.below(4u << 20)));
    }
    sys.runtime(0)->registerRegion(b, n * 4);
    sys.runtime(0)->registerRegion(a, Addr{16} << 20);

    DirectEmitter e;
    e.dev = sys.dx100(0);
    auto *rt = sys.runtime(0);
    const unsigned idx = rt->allocTile();
    const unsigned dat = rt->allocTile();
    rt->sld(e, 0, runtime::DataType::kU32, b, idx, 0, n);
    rt->ild(e, 0, runtime::DataType::kU32, a, dat, idx);

    bool overlapped = false;
    for (Cycle t = 0; t < 20'000'000 && !sys.dx100(0)->idle(); ++t) {
        sys.tick();
        if (t % 256 == 0) {
            const std::string d = sys.dx100(0)->debugDump();
            const bool streamBusy =
                d.find("stream=busy") != std::string::npos;
            const auto fillAt = d.find("fill=");
            const unsigned fill = static_cast<unsigned>(
                std::stoul(d.substr(fillAt + 5)));
            if (streamBusy && fill > 1024)
                overlapped = true;
        }
    }
    ASSERT_TRUE(sys.dx100(0)->idle());
    EXPECT_TRUE(overlapped)
        << "indirect fill never progressed under the live stream";

    // And the gather result is still exact.
    for (std::size_t i = 0; i < n; i += 611) {
        const auto bi = mem.read<std::uint32_t>(b + i * 4);
        EXPECT_EQ(rt->spdValue(dat, i),
                  mem.read<std::uint32_t>(a + Addr{bi} * 4));
    }
}

/**
 * @file
 * Component-tree and stat-registry tests: topology construction for
 * the baseline / DX100 / DMP configurations, the port-connectivity
 * audit (every request-port slot bound exactly once), stat-path
 * uniqueness, SystemConfig::validate() misuse reporting, and a
 * DX_STATS_JSON round trip (dump, reparse, compare every leaf against
 * the live registry).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/component.hh"
#include "sim/stat_registry.hh"
#include "sim/system.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

const Component *
childNamed(const Component &c, const std::string &name)
{
    for (const Component *ch : c.children()) {
        if (ch->name() == name)
            return ch;
    }
    return nullptr;
}

std::vector<std::string>
childNames(const Component &c)
{
    std::vector<std::string> names;
    for (const Component *ch : c.children())
        names.push_back(ch->name());
    return names;
}

/**
 * Minimal recursive-descent parser for the subset of JSON the registry
 * emits: objects of objects with numeric leaves. Flattens to dotted
 * (path, value) pairs in document order.
 */
struct FlatJson
{
    std::vector<std::pair<std::string, double>> leaves;
};

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string &text) : s_(text) {}

    FlatJson
    parse()
    {
        FlatJson out;
        skipWs();
        object("", out);
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing bytes after document";
        return out;
    }

  private:
    void
    object(const std::string &prefix, FlatJson &out)
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            const std::string key = stringLit();
            skipWs();
            expect(':');
            skipWs();
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (peek() == '{') {
                object(path, out);
            } else {
                out.leaves.emplace_back(path, number());
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            expect('}');
            return;
        }
    }

    std::string
    stringLit()
    {
        expect('"');
        std::string out;
        while (peek() != '"')
            out.push_back(s_[pos_++]);
        ++pos_;
        return out;
    }

    double
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        EXPECT_GT(pos_, start) << "expected a number at offset " << start;
        return std::strtod(s_.substr(start, pos_ - start).c_str(),
                           nullptr);
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        ASSERT_EQ(peek(), c) << "at offset " << pos_;
        ++pos_;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Every request-port slot in the tree must be bound. */
void
auditPorts(const Component &root)
{
    forEachComponent(root, [](const Component &c) {
        for (const PortRef &p : c.portRefs()) {
            EXPECT_TRUE(p.bound)
                << c.path() << " port '" << p.name << "' unbound";
        }
    });
}

} // namespace

TEST(ComponentTree, BaselineTopology)
{
    System sys(SystemConfig::baseline(2));
    EXPECT_EQ(sys.name(), "system");
    EXPECT_EQ(sys.path(), "system");

    const std::vector<std::string> names = childNames(sys);
    EXPECT_EQ(names,
              (std::vector<std::string>{"core0", "core1", "llc",
                                        "dram"}));

    EXPECT_EQ(sys.core(0).path(), "system.core0");
    EXPECT_EQ(sys.l1(0).path(), "system.core0.l1d");
    EXPECT_EQ(sys.l2(1).path(), "system.core1.l2");
    EXPECT_EQ(sys.llc().path(), "system.llc");
    EXPECT_EQ(sys.dram().path(), "system.dram");
    EXPECT_EQ(sys.dram().channel(0).path(), "system.dram.ch0");
    EXPECT_EQ(sys.dram().channel(1).path(), "system.dram.ch1");

    // Baseline: no accelerator, no DMP under the L1s.
    EXPECT_EQ(childNamed(sys, "dx100"), nullptr);
    EXPECT_EQ(childNamed(sys.l1(0), "dmp"), nullptr);

    auditPorts(sys);
}

TEST(ComponentTree, Dx100Topology)
{
    System sys(SystemConfig::withDx100(2));
    ASSERT_NE(sys.dx100(0), nullptr);
    EXPECT_EQ(sys.dx100(0)->path(), "system.dx100");
    auditPorts(sys);
}

TEST(ComponentTree, MultiInstanceDx100Names)
{
    System sys(SystemConfig::withDx100(4, 2));
    ASSERT_NE(sys.dx100(1), nullptr);
    EXPECT_EQ(sys.dx100(0)->path(), "system.dx100_0");
    EXPECT_EQ(sys.dx100(1)->path(), "system.dx100_1");
    auditPorts(sys);
}

TEST(ComponentTree, DmpTopology)
{
    System sys(SystemConfig::withDmp(2));
    const Component *dmp = childNamed(sys.l1(0), "dmp");
    ASSERT_NE(dmp, nullptr);
    EXPECT_EQ(dmp->path(), "system.core0.l1d.dmp");
    auditPorts(sys);
}

TEST(ComponentTree, StatPathsUniqueAndComplete)
{
    System sys(SystemConfig::withDx100(2));
    const auto paths = sys.statRegistry().paths();
    const std::set<std::string> unique(paths.begin(), paths.end());
    EXPECT_EQ(unique.size(), paths.size());

    for (const char *expected :
         {"system.cycles", "system.core0.committedOps",
          "system.core0.lsq.occupancy",
          "system.core1.l1d.demandMisses", "system.core0.l2.writebacks",
          "system.llc.demandAccesses", "system.dx100.rowtable.hits",
          "system.dx100.rowtable.coalescingFactor",
          "system.dx100.opcode.ild", "system.dram.busUtilization",
          "system.dram.ch0.rowHits", "system.dram.ch1.refCommands"}) {
        EXPECT_TRUE(sys.statRegistry().has(expected))
            << "missing stat path " << expected;
    }
}

TEST(ComponentTree, DmpStatsRegistered)
{
    System sys(SystemConfig::withDmp(2));
    EXPECT_TRUE(sys.statRegistry().has(
        "system.core1.l1d.dmp.indirectPrefetches"));
}

TEST(ComponentTree, ValidateRejectsBadConfigs)
{
    ScopedFatalThrow guard;

    SystemConfig zeroCores;
    zeroCores.cores = 0;
    EXPECT_THROW(zeroCores.validate(), FatalError);

    SystemConfig badSets;
    badSets.llc.sizeBytes = 3 * 1024 * 1024; // 6144 sets: not pow2
    badSets.llc.assoc = 8;
    EXPECT_THROW(badSets.validate(), FatalError);

    SystemConfig indivisible;
    indivisible.llc.assoc = 24; // 10 MB not divisible by 24 ways
    EXPECT_THROW(indivisible.validate(), FatalError);

    SystemConfig conflict = SystemConfig::withDx100();
    conflict.dmp = true;
    EXPECT_THROW(conflict.validate(), FatalError);

    SystemConfig tooManyInstances = SystemConfig::withDx100(2);
    tooManyInstances.dx100Instances = 3;
    EXPECT_THROW(tooManyInstances.validate(), FatalError);

    SystemConfig badChannels;
    badChannels.dram.ctrl.geom.channels = 3;
    EXPECT_THROW(badChannels.validate(), FatalError);

    // The stock presets must all pass.
    SystemConfig::baseline(2).validate();
    SystemConfig::baseline(8).validate();
    SystemConfig::withDx100(4, 2).validate();
    SystemConfig::withDmp(4).validate();
}

TEST(ComponentTree, StatsJsonRoundTrip)
{
    System sys(SystemConfig::withDx100(2));
    // Put some age on the clock and per-cycle integrals so the dump is
    // not all zeros.
    for (int i = 0; i < 500; ++i)
        sys.tick();

    const std::string file =
        ::testing::TempDir() + "component_tree_stats.json";
    sys.statRegistry().writeJsonFile(file);

    std::ifstream in(file);
    ASSERT_TRUE(in) << "dump file missing: " << file;
    std::ostringstream text;
    text << in.rdbuf();

    const std::string body = text.str();
    MiniJsonParser parser(body);
    const FlatJson flat = parser.parse();

    // Every registry entry appears exactly once, in registration
    // order, and parses back to the value the live registry reports.
    const auto paths = sys.statRegistry().paths();
    ASSERT_EQ(flat.leaves.size(), paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        EXPECT_EQ(flat.leaves[i].first, paths[i]);
        EXPECT_DOUBLE_EQ(flat.leaves[i].second,
                         sys.statRegistry().value(paths[i]))
            << "mismatch at " << paths[i];
    }

    EXPECT_EQ(sys.statRegistry().intValue("system.cycles"),
              sys.now());
    std::remove(file.c_str());
}

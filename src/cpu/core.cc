#include "cpu/core.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "sim/stat_registry.hh"

namespace dx::cpu
{

namespace
{

/** Tag bit distinguishing post-commit store drains from ROB loads. */
constexpr std::uint64_t kStoreTag = std::uint64_t{1} << 63;

bool
isHeadBlockedKind(OpKind k)
{
    return k == OpKind::kRmw || k == OpKind::kDxWait ||
           k == OpKind::kFence;
}

bool
isFencingKind(OpKind k)
{
    return k == OpKind::kRmw || k == OpKind::kFence;
}

} // namespace

Core::Core(const Config &cfg, int id, cache::CachePort *l1)
    : Component("core" + std::to_string(id)), cfg_(cfg), id_(id),
      rob_(cfg.robSize), wheel_(64)
{
    dx_assert(l1, "core needs an L1 port");
    l1_.bind(*l1);
    l1PopAddr_ = l1_->popCountAddr();
}

Core::RobEntry &
Core::entry(SeqNum seq)
{
    return rob_[seq % cfg_.robSize];
}

const Core::RobEntry &
Core::entry(SeqNum seq) const
{
    return rob_[seq % cfg_.robSize];
}

bool
Core::inRob(SeqNum seq) const
{
    return seq >= robHead_ && seq < robTail_;
}

bool
Core::depSatisfied(SeqNum dep) const
{
    if (dep == kNoSeq || dep < robHead_)
        return true;
    dx_assert(dep < robTail_, "dependency on an undispatched op");
    return entry(dep).state == EntryState::kComplete;
}

SeqNum
Core::emit(const MicroOp &op)
{
    opBuffer_.push_back(op);
    return nextSeq_++;
}

void
Core::refillOpBuffer()
{
    const std::size_t low = 4 * cfg_.width;
    while (kernel_ && kernel_->more() && opBuffer_.size() < low)
        kernel_->emitChunk(*this);
}

void
Core::dispatch()
{
    refillOpBuffer();

    for (unsigned n = 0; n < cfg_.width; ++n) {
        if (opBuffer_.empty())
            return;
        if (robTail_ - robHead_ >= cfg_.robSize) {
            ++stats_.robStallCycles;
            return;
        }

        const MicroOp &op = opBuffer_.front();
        if (op.kind == OpKind::kLoad && lqUsed_ >= cfg_.lqSize) {
            ++stats_.lqStallCycles;
            return;
        }
        const bool needsSq = op.kind == OpKind::kStore ||
                             op.kind == OpKind::kRmw ||
                             op.kind == OpKind::kMmioStore;
        if (needsSq && sqUsed_ >= cfg_.sqSize) {
            ++stats_.sqStallCycles;
            return;
        }

        const SeqNum seq = robTail_;
        dx_assert(seq == bufferHeadSeq_, "seq bookkeeping mismatch");
        RobEntry &e = entry(seq);
        e.op = op;
        e.state = EntryState::kWaiting;
        e.depsLeft = 0;
        e.dependents.clear();
        e.headBlocked = isHeadBlockedKind(op.kind);

        if (op.kind == OpKind::kLoad)
            ++lqUsed_;
        if (needsSq)
            ++sqUsed_;
        if (isFencingKind(op.kind))
            fencing_.push_back(seq);

        for (SeqNum dep : op.deps) {
            if (dep == kNoSeq || depSatisfied(dep))
                continue;
            ++e.depsLeft;
            entry(dep).dependents.push_back(seq);
        }
        if (e.depsLeft == 0) {
            e.state = EntryState::kReady;
            if (!e.headBlocked)
                readyQueue_.push_back(seq);
        }

        opBuffer_.pop_front();
        ++bufferHeadSeq_;
        ++robTail_;
    }
}

bool
Core::fencePending(SeqNum seq) const
{
    return !fencing_.empty() && fencing_.front() < seq;
}

void
Core::wakeDependents(RobEntry &e)
{
    for (SeqNum d : e.dependents) {
        if (!inRob(d))
            continue;
        RobEntry &de = entry(d);
        if (de.state != EntryState::kWaiting)
            continue;
        dx_assert(de.depsLeft > 0, "dependency underflow");
        if (--de.depsLeft == 0) {
            de.state = EntryState::kReady;
            if (!de.headBlocked)
                readyQueue_.push_back(d);
        }
    }
    e.dependents.clear();
}

void
Core::markComplete(SeqNum seq)
{
    RobEntry &e = entry(seq);
    dx_assert(e.state != EntryState::kComplete, "double completion");
    e.state = EntryState::kComplete;
    wakeDependents(e);
}

void
Core::complete(const std::uint64_t &tag)
{
    sleepValid_ = false;
    blockedValid_ = false;
    skipMemoValid_ = false;
    evMemoValid_ = false;
    if (tag & kStoreTag) {
        dx_assert(sqUsed_ > 0 && inflightStoreWrites_ > 0,
                  "spurious store completion");
        --sqUsed_;
        --inflightStoreWrites_;
        return;
    }
    markComplete(tag);
}

bool
Core::issueMemOp(RobEntry &e, SeqNum seq)
{
    cache::CacheReq req;
    req.addr = e.op.addr;
    req.write = e.op.kind == OpKind::kRmw;
    req.pc = e.op.pc;
    req.value = e.op.value;
    req.tag = seq;
    req.sink = this;
    if (!l1_->canAccept())
        return false;
    l1_->request(req);
    e.state = EntryState::kIssued;
    return true;
}

void
Core::issue()
{
    unsigned loadPortsUsed = 0;
    unsigned issued = 0;

    while (issued < cfg_.width && !readyQueue_.empty()) {
        const SeqNum seq = readyQueue_.front();
        if (!inRob(seq)) {
            readyQueue_.pop_front();
            continue;
        }
        RobEntry &e = entry(seq);
        if (e.state != EntryState::kReady) {
            readyQueue_.pop_front();
            continue;
        }

        switch (e.op.kind) {
          case OpKind::kIntAlu:
          case OpKind::kFpAlu:
          case OpKind::kStore:
          case OpKind::kMmioStore: {
            readyQueue_.pop_front();
            e.state = EntryState::kIssued;
            const unsigned lat = std::max<unsigned>(e.op.latency, 1);
            wheel_[(wheelPos_ + lat) % wheel_.size()].push_back(seq);
            ++wheelPending_;
            ++issued;
            break;
          }
          case OpKind::kLoad: {
            if (fencePending(seq)) {
                readyQueue_.pop_front();
                fenceBlocked_.push_back(seq);
                break;
            }
            if (loadPortsUsed >= cfg_.loadPorts)
                return;
            if (!issueMemOp(e, seq))
                return; // L1 full: retry next cycle, keep order
            readyQueue_.pop_front();
            ++loadPortsUsed;
            ++issued;
            break;
          }
          default:
            dx_panic("head-blocked op in ready queue");
        }
    }
}

void
Core::commit()
{
    for (unsigned n = 0; n < cfg_.width; ++n) {
        if (robHead_ == robTail_)
            return;
        RobEntry &e = entry(robHead_);

        if (e.state != EntryState::kComplete && e.headBlocked) {
            switch (e.op.kind) {
              case OpKind::kRmw:
                if (e.state == EntryState::kReady &&
                    storeBuffer_.empty() && inflightStoreWrites_ == 0 &&
                    mmioBuffer_.empty()) {
                    if (issueMemOp(e, robHead_)) {
                        // issued; completes via complete
                    }
                }
                return;
              case OpKind::kDxWait:
                ++stats_.waitCycles;
                if (now_ >= nextPollAt_) {
                    nextPollAt_ = now_ + cfg_.pollInterval;
                    stats_.committedOps += cfg_.pollInstrCost;
                    dx_assert(mmio_, "kDxWait without an MMIO device");
                    if (mmio_->mmioReady(e.op.value, id_))
                        markComplete(robHead_);
                }
                return;
              case OpKind::kFence:
                if (e.state == EntryState::kReady &&
                    storeBuffer_.empty() && inflightStoreWrites_ == 0 &&
                    mmioBuffer_.empty()) {
                    markComplete(robHead_);
                }
                return;
              default:
                dx_panic("unexpected head-blocked kind");
            }
        }

        if (e.state != EntryState::kComplete)
            return;

        // Retire.
        switch (e.op.kind) {
          case OpKind::kLoad:
            --lqUsed_;
            ++stats_.committedLoads;
            break;
          case OpKind::kStore:
            storeBuffer_.push_back(e.op);
            ++stats_.committedStores;
            break;
          case OpKind::kMmioStore:
            mmioBuffer_.push_back({now_ + cfg_.mmioLatency, e.op});
            break;
          case OpKind::kRmw:
            --sqUsed_;
            ++stats_.committedRmws;
            break;
          default:
            break;
        }

        if (isFencingKind(e.op.kind)) {
            dx_assert(!fencing_.empty() && fencing_.front() == robHead_,
                      "fence bookkeeping mismatch");
            fencing_.pop_front();
            for (SeqNum s : fenceBlocked_)
                readyQueue_.push_back(s);
            fenceBlocked_.clear();
        }

        ++stats_.committedOps;
        ++robHead_;
    }
}

void
Core::drainStores()
{
    for (unsigned n = 0; n < cfg_.storeDrain; ++n) {
        if (storeBuffer_.empty() || !l1_->canAccept())
            return;
        const MicroOp &op = storeBuffer_.front();
        cache::CacheReq req;
        req.addr = op.addr;
        req.write = true;
        req.pc = op.pc;
        req.tag = kStoreTag;
        req.sink = this;
        l1_->request(req);
        ++inflightStoreWrites_;
        storeBuffer_.pop_front();
    }
}

void
Core::drainMmio()
{
    if (mmioBuffer_.empty() || mmioBuffer_.front().first > now_)
        return;
    const MicroOp op = mmioBuffer_.front().second;
    mmioBuffer_.pop_front();
    dx_assert(mmio_, "MMIO store without a device");
    mmio_->mmioWrite(op.addr, op.value, id_);
    dx_assert(sqUsed_ > 0, "MMIO SQ underflow");
    --sqUsed_;
}

void
Core::tick()
{
    ++now_;
    sleepValid_ = false;
    blockedValid_ = false;
    skipMemoValid_ = false;
    evMemoValid_ = false;
    ++stats_.cycles;
    stats_.robOccupancyAccum += robTail_ - robHead_;
    stats_.lqOccupancyAccum += lqUsed_;

    // Complete fixed-latency ops scheduled for this cycle.
    wheelPos_ = (wheelPos_ + 1) % static_cast<unsigned>(wheel_.size());
    for (SeqNum seq : wheel_[wheelPos_]) {
        if (inRob(seq) && entry(seq).state == EntryState::kIssued)
            markComplete(seq);
    }
    wheelPending_ -= static_cast<unsigned>(wheel_[wheelPos_].size());
    wheel_[wheelPos_].clear();

    commit();
    issue();
    dispatch();
    drainStores();
    drainMmio();
}

Core::DispatchStall
Core::dispatchStall() const
{
    if (opBuffer_.empty())
        return DispatchStall::kNone;
    if (robTail_ - robHead_ >= cfg_.robSize)
        return DispatchStall::kRob;
    const MicroOp &op = opBuffer_.front();
    if (op.kind == OpKind::kLoad && lqUsed_ >= cfg_.lqSize)
        return DispatchStall::kLq;
    const bool needsSq = op.kind == OpKind::kStore ||
                         op.kind == OpKind::kRmw ||
                         op.kind == OpKind::kMmioStore;
    if (needsSq && sqUsed_ >= cfg_.sqSize)
        return DispatchStall::kSq;
    return DispatchStall::kNone;
}

bool
Core::quiescentSlow() const
{
    // Nothing that feeds the verdict below has changed since it was
    // last proven sleep-stable (or L1-gated with no L1 departures).
    if (sleepValid_)
        return true;
    if (blockedValid_ &&
        (l1PopAddr_ ? *l1PopAddr_ : l1_->popCount()) ==
            blockedPops_) {
        return true;
    }
    blockedValid_ = false;
    // Structural activity a tick would advance: wheel completions,
    // then the ready queue and store drain, which are only no-ops when
    // blocked on a full L1 input queue.
    if (wheelPending_ > 0)
        return false;
    if (!readyQueue_.empty()) {
        // issue() examines entries front-first and pops every one it
        // touches except a ready load it fails to issue into a full
        // L1 — it returns without popping, so entries behind the front
        // are never reached and the tick is a no-op.
        const SeqNum seq = readyQueue_.front();
        if (!inRob(seq))
            return false; // issue() would pop the stale entry
        const RobEntry &e = entry(seq);
        if (e.state != EntryState::kReady)
            return false; // likewise
        if (e.op.kind != OpKind::kLoad || fencePending(seq))
            return false; // would issue or move to fenceBlocked_
        if (l1_->canAccept())
            return false; // the load would issue
    }
    if (!storeBuffer_.empty() && l1_->canAccept())
        return false; // drainStores() would issue
    // dispatch() would refill the front-end buffer from the kernel.
    if (kernel_ && kernel_->more() && opBuffer_.size() < 4 * cfg_.width)
        return false;
    // dispatch() would move the front-end head into the ROB.
    if (!opBuffer_.empty() && dispatchStall() == DispatchStall::kNone)
        return false;
    if (robHead_ != robTail_) {
        const RobEntry &e = entry(robHead_);
        // commit() would retire.
        if (e.state == EntryState::kComplete)
            return false;
        // commit() would issue a head kRmw or complete a head kFence.
        // A head kDxWait stays quiescent between polls: waitCycles is
        // closed-form and the poll itself is the next event.
        if (e.headBlocked && e.op.kind != OpKind::kDxWait &&
            e.state == EntryState::kReady && storeBuffer_.empty() &&
            inflightStoreWrites_ == 0 && mmioBuffer_.empty()) {
            return false;
        }
    }
    // Sleep-stable when no check above consulted the L1. Otherwise the
    // verdict is L1-gated — it holds exactly until the L1 pops a queue
    // entry, so cache it against the L1's departure count.
    if (readyQueue_.empty() && storeBuffer_.empty()) {
        sleepValid_ = true;
    } else {
        const std::uint64_t pops =
            l1PopAddr_ ? *l1PopAddr_ : l1_->popCount();
        if (pops != cache::kPortPopsUnknown) {
            blockedValid_ = true;
            blockedPops_ = pops;
        }
    }
    return true;
}

Cycle
Core::nextEventAtSlow() const
{
    Cycle ev = kNeverCycle;
    if (!mmioBuffer_.empty())
        ev = std::min(ev, mmioBuffer_.front().first);
    if (robHead_ != robTail_) {
        const RobEntry &e = entry(robHead_);
        if (e.state != EntryState::kComplete && e.headBlocked &&
            e.op.kind == OpKind::kDxWait) {
            ev = std::min(ev, nextPollAt_);
        }
    }
    evMemo_ = ev;
    evMemoValid_ = true;
    return ev;
}

void
Core::skipCycles(Cycle n)
{
    now_ += n;
    stats_.cycles += n;
    stats_.robOccupancyAccum += n * (robTail_ - robHead_);
    stats_.lqOccupancyAccum += n * lqUsed_;
    if (n == 1) {
        if (++wheelPos_ == wheel_.size())
            wheelPos_ = 0;
    } else {
        wheelPos_ = static_cast<unsigned>((wheelPos_ + n) % wheel_.size());
    }

    // Exactly the per-cycle counters the naive loop would have bumped
    // while frozen in this state; the classification inputs only move
    // through tick()/complete(), so it is memoized across skips.
    if (!skipMemoValid_) {
        skipWait_ = false;
        if (robHead_ != robTail_) {
            const RobEntry &e = entry(robHead_);
            skipWait_ = e.state != EntryState::kComplete &&
                        e.headBlocked && e.op.kind == OpKind::kDxWait;
        }
        skipStall_ = dispatchStall();
        skipMemoValid_ = true;
    }
    if (skipWait_)
        stats_.waitCycles += n;
    switch (skipStall_) {
      case DispatchStall::kRob:
        stats_.robStallCycles += n;
        break;
      case DispatchStall::kLq:
        stats_.lqStallCycles += n;
        break;
      case DispatchStall::kSq:
        stats_.sqStallCycles += n;
        break;
      case DispatchStall::kNone:
        break;
    }
}

bool
Core::done() const
{
    return (!kernel_ || !kernel_->more()) && opBuffer_.empty() &&
           robHead_ == robTail_ && storeBuffer_.empty() &&
           mmioBuffer_.empty() && inflightStoreWrites_ == 0;
}

void
Core::registerStats(StatRegistry &reg) const
{
    StatRegistry::Group g = reg.group(path());
    g.counter("committedOps", stats_.committedOps);
    g.counter("committedLoads", stats_.committedLoads);
    g.counter("committedStores", stats_.committedStores);
    g.counter("committedRmws", stats_.committedRmws);
    g.counter("waitCycles", stats_.waitCycles);
    g.counter("robStallCycles", stats_.robStallCycles);
    g.counter("lqStallCycles", stats_.lqStallCycles);
    g.counter("sqStallCycles", stats_.sqStallCycles);
    g.value("cycles", stats_.cycles);

    StatRegistry::Group lsq = g.sub("lsq");
    lsq.value("occupancyAccum", stats_.lqOccupancyAccum);
    lsq.gauge("occupancy", [this] {
        return stats_.cycles ? static_cast<double>(
                                   stats_.lqOccupancyAccum) /
                                   static_cast<double>(stats_.cycles)
                             : 0.0;
    });

    StatRegistry::Group rob = g.sub("rob");
    rob.value("occupancyAccum", stats_.robOccupancyAccum);
    rob.gauge("occupancy", [this] {
        return stats_.cycles ? static_cast<double>(
                                   stats_.robOccupancyAccum) /
                                   static_cast<double>(stats_.cycles)
                             : 0.0;
    });
}

} // namespace dx::cpu

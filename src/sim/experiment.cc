#include "sim/experiment.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"

namespace dx::sim
{

namespace
{

const char kUsage[] =
    " (supported: --scale=<f|small|paper>, --jobs=<n>, --json, "
    "--no-cache, --cache-dir=<dir>)";

/** stod that rejects trailing garbage; nullopt on any parse failure. */
std::optional<double>
parseDouble(const std::string &v)
{
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos != v.size())
            return std::nullopt;
        return d;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

std::optional<unsigned>
parseUnsigned(const std::string &v)
{
    try {
        std::size_t pos = 0;
        const unsigned long n = std::stoul(v, &pos);
        if (pos != v.size() || v.empty() || v[0] == '-' ||
            n > std::numeric_limits<unsigned>::max()) {
            return std::nullopt;
        }
        return static_cast<unsigned>(n);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

} // namespace

ExpOptions
ExpOptions::parse(int argc, char **argv)
{
    ExpOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            const std::string v = arg.substr(8);
            if (v == "small") {
                opt.scale = 0.25;
            } else if (v == "paper") {
                opt.scale = 1.0;
            } else {
                const auto d = parseDouble(v);
                if (!d || *d <= 0.0) {
                    dx_fatal("bad --scale value '", v,
                             "': expected a positive number, 'small' "
                             "or 'paper'", kUsage);
                }
                opt.scale = *d;
            }
        } else if (arg.rfind("--jobs=", 0) == 0) {
            const std::string v = arg.substr(7);
            const auto n = parseUnsigned(v);
            if (!n || *n == 0) {
                dx_fatal("bad --jobs value '", v,
                         "': expected a positive integer", kUsage);
            }
            opt.jobs = *n;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--no-cache") {
            opt.useCache = false;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opt.cacheDir = arg.substr(12);
            if (opt.cacheDir.empty())
                dx_fatal("bad --cache-dir: empty path", kUsage);
        } else {
            dx_fatal("unknown bench option: ", arg, kUsage);
        }
    }
    return opt;
}

unsigned
ExpOptions::effectiveJobs() const
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::string
serializeStats(const RunStats &s)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    s.forEachField([&](const char *name, auto value) {
        os << name << " " << value << "\n";
    });
    return os.str();
}

std::optional<RunStats>
parseStats(const std::string &text)
{
    RunStats s;
    std::istringstream is(text);
    std::string key;
    double value;
    std::size_t fields = 0;
    while (is >> key >> value) {
        if (s.setField(key, value))
            ++fields;
    }
    // An entry missing schema fields is treated as corrupt: older
    // cache files (or truncated writes) must not shadow a fresh run.
    if (fields < RunStats::fieldCount())
        return std::nullopt;
    return s;
}

std::string
statsToJson(const RunStats &s)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{";
    bool first = true;
    s.forEachField([&](const char *name, auto value) {
        os << (first ? "" : ", ") << "\"" << name << "\": " << +value;
        first = false;
    });
    os << "}";
    return os.str();
}

std::filesystem::path
cachePath(const std::string &cacheDir, const std::string &workload,
          const std::string &configTag, double scale)
{
    std::ostringstream key;
    key << workload << "_" << configTag << "_s" << scale << ".stats";
    return std::filesystem::path(cacheDir) / key.str();
}

std::optional<RunStats>
loadCachedStats(const std::filesystem::path &p)
{
    std::ifstream in(p);
    if (!in)
        return std::nullopt;
    std::stringstream buf;
    buf << in.rdbuf();
    return parseStats(buf.str());
}

void
storeCachedStats(const std::filesystem::path &p, const RunStats &s)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
        dx_fatal("cannot create cache directory ",
                 p.parent_path().string(), ": ", ec.message());
    }

    // Unique temp name per process and store: concurrent writers of
    // the same cell each build their own file, then the atomic rename
    // makes one of them the entry — never a torn mix of both.
    static std::atomic<unsigned> counter{0};
    std::ostringstream tmpName;
    tmpName << p.filename().string() << ".tmp." << ::getpid() << "."
            << counter.fetch_add(1);
    const fs::path tmp = p.parent_path() / tmpName.str();

    {
        std::ofstream out(tmp);
        if (!out) {
            dx_fatal("cannot write cache entry ", tmp.string());
        }
        out << serializeStats(s);
    }
    fs::rename(tmp, p, ec);
    if (ec) {
        fs::remove(tmp);
        dx_fatal("cannot publish cache entry ", p.string(), ": ",
                 ec.message());
    }
}

namespace
{

/**
 * DX_STATS_JSON=<path>: after a run finishes, dump the hierarchical
 * per-component registry as nested JSON. Concurrent jobs write through
 * unique temp files and atomic renames (the last completed run wins),
 * so this works unchanged under --jobs=N.
 */
void
maybeDumpStatsJson(const System &sys)
{
    const char *path = std::getenv("DX_STATS_JSON");
    if (path && path[0] != '\0')
        sys.statRegistry().writeJsonFile(path);
}

} // namespace

RunStats
runWorkloadOnce(wl::Workload &w, const SystemConfig &cfg)
{
    System sys(cfg);
    w.init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w.makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    const RunStats stats = sys.run();
    if (!w.verify(sys))
        dx_fatal("workload ", w.name(), " failed verification");
    maybeDumpStatsJson(sys);
    return stats;
}

RunStats
runWorkload(const wl::WorkloadEntry &entry, const SystemConfig &cfg,
            const std::string &configTag, const ExpOptions &opt)
{
    const std::filesystem::path path =
        cachePath(opt.cacheDir, entry.name, configTag, opt.scale);

    if (opt.useCache) {
        if (auto cached = loadCachedStats(path)) {
            dx_inform("[cached] ", entry.name, " ", configTag);
            return *cached;
        }
    }

    dx_inform("[run] ", entry.name, " ", configTag, " ...");
    auto w = entry.make(wl::Scale{opt.scale});
    const RunStats stats = runWorkloadOnce(*w, cfg);

    if (opt.useCache)
        storeCachedStats(path, stats);
    return stats;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

void
printBenchHeader(const std::string &title, const ExpOptions &opt)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("scale=%.3g jobs=%u cache=%s\n", opt.scale,
                opt.effectiveJobs(),
                opt.useCache ? opt.cacheDir.c_str() : "off");
    std::printf("==========================================================\n");
}

} // namespace dx::sim

/**
 * @file
 * GAP benchmark suite kernels (paper §5): PageRank (PR), bottom-up
 * Breadth-First Search (BFS), and Betweenness Centrality (BC), each
 * reduced to its dominant iteration on a uniform random graph.
 */

#ifndef DX_WORKLOADS_GAP_HH
#define DX_WORKLOADS_GAP_HH

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

/**
 * PR: one push-style iteration — for every vertex u, scatter its
 * contribution P[u] to newScore[E[j]] over u's out-edges (RMW A[B[j]],
 * direct range loop). Contributions are integer-valued (fixed-point
 * scores) so the scattered accumulation is order-independent.
 */
class PageRank : public Workload
{
  public:
    explicit PageRank(Scale s);

    std::string name() const override { return "PR"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    CsrGraph g_;
    Addr rowPtr_ = 0, col_ = 0, contrib_ = 0, newScore_ = 0,
         edgeVal_ = 0;
};

/**
 * BFS: one bottom-up step at depth d — scan the unvisited list U; a
 * vertex joins the frontier if any neighbour sits at depth d-1
 * (conditional ST A[B[j]], indirect range loop H[K[i]]..H[K[i]+1]).
 */
class BfsBottomUp : public Workload
{
  public:
    explicit BfsBottomUp(Scale s);

    std::string name() const override { return "BFS"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    CsrGraph g_;
    std::vector<std::uint32_t> hostDepth_;
    std::vector<std::uint32_t> unvisited_;
    std::uint32_t step_ = 2; //!< early step: huge unvisited list, few
                             //!< frontier hits (conditional-store heavy)
    Addr rowPtr_ = 0, col_ = 0, depth_ = 0, parent_ = 0, u_ = 0;
};

/**
 * Extension (paper footnote 1): one *top-down* BFS step — for every
 * frontier vertex u, conditionally claim undiscovered neighbours
 * (ST A[B[j]] if D[E[j]] == unset, direct range loop over the
 * frontier's adjacency). Not part of the 12 evaluated kernels.
 */
class BfsTopDown : public Workload
{
  public:
    explicit BfsTopDown(Scale s);

    std::string name() const override { return "BFS-TD"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    CsrGraph g_;
    std::vector<std::uint32_t> hostDepth_;
    std::vector<std::uint32_t> frontier_; //!< vertices at depth d-1
    std::uint32_t step_ = 0;              //!< chosen expansion step
    Addr rowPtr_ = 0, col_ = 0, depth_ = 0, parent_ = 0, f_ = 0;
};

/**
 * BC: one dependency-accumulation level of Brandes' algorithm —
 * conditional RMW delta[E[j]] += sigma[E[j]] * f[w] for vertices w of
 * the current level (indirect range loop, fixed-point deltas).
 */
class BetweennessCentrality : public Workload
{
  public:
    explicit BetweennessCentrality(Scale s);

    std::string name() const override { return "BC"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    CsrGraph g_;
    std::vector<std::uint32_t> hostDepth_;
    std::vector<std::uint32_t> level_; //!< W: vertices at depth d
    std::uint32_t d_ = 2; //!< replaced by the most populous BFS level
    Addr rowPtr_ = 0, col_ = 0, depth_ = 0, sigma_ = 0, delta_ = 0,
         f_ = 0, w_ = 0;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_GAP_HH

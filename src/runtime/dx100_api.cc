#include "runtime/dx100_api.hh"

#include "common/logging.hh"

namespace dx::runtime
{

using dx100::ExecPayload;
using dx100::Instruction;
using dx100::kNoOperand;
using dx100::Opcode;
using dx100::StreamScalars;

Dx100Runtime::Dx100Runtime(dx100::Dx100 &dev, SimMemory &mem)
    : dev_(dev),
      mirror_(mem, dev.config().numTiles, dev.config().tileElems,
              dev.config().numRegs),
      tileFree_(dev.config().numTiles, true),
      regFree_(dev.config().numRegs, true)
{
}

unsigned
Dx100Runtime::allocTile()
{
    for (unsigned t = 0; t < tileFree_.size(); ++t) {
        if (tileFree_[t]) {
            tileFree_[t] = false;
            return t;
        }
    }
    dx_fatal("out of scratchpad tiles");
}

void
Dx100Runtime::freeTile(unsigned tile)
{
    dx_assert(tile < tileFree_.size() && !tileFree_[tile],
              "freeing an unallocated tile");
    tileFree_[tile] = true;
}

unsigned
Dx100Runtime::allocReg()
{
    for (unsigned r = 0; r < regFree_.size(); ++r) {
        if (regFree_[r]) {
            regFree_[r] = false;
            return r;
        }
    }
    dx_fatal("out of DX100 registers");
}

void
Dx100Runtime::freeReg(unsigned reg)
{
    dx_assert(reg < regFree_.size() && !regFree_[reg],
              "freeing an unallocated register");
    regFree_[reg] = true;
}

void
Dx100Runtime::registerRegion(Addr base, Addr size)
{
    dev_.registerRegion(base, size);
}

ExecPayload
Dx100Runtime::buildPayload(const Instruction &instr)
{
    ExecPayload p;
    p.instr = instr;

    auto snapshotCond = [&]() {
        if (instr.tc == kNoOperand)
            return;
        const auto &tc = mirror_.tile(instr.tc);
        p.cond.resize(tc.size);
        for (std::uint32_t i = 0; i < tc.size; ++i)
            p.cond[i] = tc.data[i] != 0 ? 1 : 0;
    };

    switch (instr.op) {
      case Opcode::kIld:
      case Opcode::kIst:
      case Opcode::kIrmw: {
        const auto &ts1 = mirror_.tile(instr.ts1);
        p.count = ts1.size;
        p.src1.assign(ts1.data.begin(), ts1.data.begin() + ts1.size);
        snapshotCond();
        p.outCount = instr.op == Opcode::kIld ? p.count : 0;
        break;
      }
      case Opcode::kSld:
      case Opcode::kSst: {
        p.count = dx100::unpackStream(instr.imm).count;
        snapshotCond();
        p.outCount = instr.op == Opcode::kSld ? p.count : 0;
        break;
      }
      case Opcode::kAluv:
      case Opcode::kAlus:
        p.count = mirror_.tile(instr.ts1).size;
        snapshotCond();
        p.outCount = p.count;
        break;
      case Opcode::kRng:
        p.count = mirror_.tile(instr.ts1).size;
        snapshotCond();
        // outCount captured by the caller after mirror execution.
        break;
    }
    return p;
}

std::uint64_t
Dx100Runtime::issue(cpu::OpEmitter &e, int core,
                    const Instruction &instr)
{
    ExecPayload payload = buildPayload(instr);
    mirror_.execute(instr);
    if (instr.op == Opcode::kRng)
        payload.outCount = mirror_.tile(instr.td).size;

    const std::uint64_t token =
        dev_.registerPayload(core, std::move(payload));

    // Encode + three doorbell stores, with a couple of ALU ops standing
    // in for the encoding arithmetic of the real library.
    const auto words = dx100::encode(instr);
    const SeqNum enc = e.intOp(1);
    for (unsigned w = 0; w < 3; ++w)
        e.mmioStore(dev_.config().doorbellAddr(core, w), words[w], enc);
    return token;
}

std::uint64_t
Dx100Runtime::sld(cpu::OpEmitter &e, int core, DataType t, Addr base,
                  unsigned td, std::uint64_t start, std::uint32_t count,
                  std::int32_t stride, unsigned tc)
{
    dx_assert(count <= tileElems(), "stream longer than a tile");
    Instruction in;
    in.op = Opcode::kSld;
    in.dtype = t;
    in.td = static_cast<std::uint8_t>(td);
    in.tc = static_cast<std::uint8_t>(tc);
    in.base = base;
    in.imm = dx100::packStream({start, count, stride});
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::sst(cpu::OpEmitter &e, int core, DataType t, Addr base,
                  unsigned ts, std::uint64_t start, std::uint32_t count,
                  std::int32_t stride, unsigned tc)
{
    dx_assert(count <= tileElems(), "stream longer than a tile");
    Instruction in;
    in.op = Opcode::kSst;
    in.dtype = t;
    in.ts1 = static_cast<std::uint8_t>(ts);
    in.tc = static_cast<std::uint8_t>(tc);
    in.base = base;
    in.imm = dx100::packStream({start, count, stride});
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::ild(cpu::OpEmitter &e, int core, DataType t, Addr base,
                  unsigned td, unsigned ts1, unsigned tc)
{
    Instruction in;
    in.op = Opcode::kIld;
    in.dtype = t;
    in.td = static_cast<std::uint8_t>(td);
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.tc = static_cast<std::uint8_t>(tc);
    in.base = base;
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::ist(cpu::OpEmitter &e, int core, DataType t, Addr base,
                  unsigned ts1, unsigned ts2, unsigned tc)
{
    Instruction in;
    in.op = Opcode::kIst;
    in.dtype = t;
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.ts2 = static_cast<std::uint8_t>(ts2);
    in.tc = static_cast<std::uint8_t>(tc);
    in.base = base;
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::irmw(cpu::OpEmitter &e, int core, DataType t, AluOp op,
                   Addr base, unsigned ts1, unsigned ts2, unsigned tc)
{
    dx_assert(dx100::rmwSupported(op),
              "IRMW op must be associative and commutative");
    Instruction in;
    in.op = Opcode::kIrmw;
    in.dtype = t;
    in.aluOp = op;
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.ts2 = static_cast<std::uint8_t>(ts2);
    in.tc = static_cast<std::uint8_t>(tc);
    in.base = base;
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::aluv(cpu::OpEmitter &e, int core, DataType t, AluOp op,
                   unsigned td, unsigned ts1, unsigned ts2, unsigned tc)
{
    Instruction in;
    in.op = Opcode::kAluv;
    in.dtype = t;
    in.aluOp = op;
    in.td = static_cast<std::uint8_t>(td);
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.ts2 = static_cast<std::uint8_t>(ts2);
    in.tc = static_cast<std::uint8_t>(tc);
    return issue(e, core, in);
}

std::uint64_t
Dx100Runtime::alus(cpu::OpEmitter &e, int core, DataType t, AluOp op,
                   unsigned td, unsigned ts1, std::uint64_t scalar,
                   unsigned tc)
{
    const unsigned reg = allocReg();
    mirror_.writeReg(reg, scalar);
    // The scalar travels as an uncacheable RF store before the doorbell.
    e.mmioStore(dev_.config().rfAddr(reg), scalar);

    Instruction in;
    in.op = Opcode::kAlus;
    in.dtype = t;
    in.aluOp = op;
    in.td = static_cast<std::uint8_t>(td);
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.rs1 = static_cast<std::uint8_t>(reg);
    in.tc = static_cast<std::uint8_t>(tc);
    const std::uint64_t token = issue(e, core, in);
    freeReg(reg);
    return token;
}

std::uint64_t
Dx100Runtime::rng(cpu::OpEmitter &e, int core, unsigned td1,
                  unsigned td2, unsigned ts1, unsigned ts2,
                  std::uint32_t startRange, std::uint32_t *consumed,
                  unsigned tc)
{
    const unsigned reg = allocReg();
    Instruction in;
    in.op = Opcode::kRng;
    in.td = static_cast<std::uint8_t>(td1);
    in.td2 = static_cast<std::uint8_t>(td2);
    in.ts1 = static_cast<std::uint8_t>(ts1);
    in.ts2 = static_cast<std::uint8_t>(ts2);
    in.rs1 = static_cast<std::uint8_t>(reg);
    in.tc = static_cast<std::uint8_t>(tc);
    in.imm = startRange;
    const std::uint64_t token = issue(e, core, in);
    if (consumed)
        *consumed = static_cast<std::uint32_t>(mirror_.reg(reg));
    freeReg(reg);
    return token;
}

void
Dx100Runtime::wait(cpu::OpEmitter &e, std::uint64_t token)
{
    e.dxWait(token);
}

std::uint64_t
Dx100Runtime::spdValue(unsigned tile, unsigned i) const
{
    return mirror_.tile(tile).data[i];
}

std::uint32_t
Dx100Runtime::tileSize(unsigned tile) const
{
    return mirror_.tile(tile).size;
}

Addr
Dx100Runtime::spdAddr(unsigned tile, unsigned i) const
{
    return dev_.config().spdAddr(tile, i);
}

void
Dx100Runtime::pokeTile(unsigned tile, unsigned i, std::uint64_t v)
{
    mirror_.tileRef(tile).data[i] = v;
}

void
Dx100Runtime::setTileSize(unsigned tile, std::uint32_t n)
{
    mirror_.tileRef(tile).size = n;
}

} // namespace dx::runtime

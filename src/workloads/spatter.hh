/**
 * @file
 * Spatter XRAGE kernel (paper §5): bulk scatter A[B[i]] = v with an
 * xRAGE-like AMR index pattern (synthetic substitute for the
 * proprietary trace; see DESIGN.md).
 */

#ifndef DX_WORKLOADS_SPATTER_HH
#define DX_WORKLOADS_SPATTER_HH

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

class SpatterXrage : public Workload
{
  public:
    explicit SpatterXrage(Scale s);

    std::string name() const override { return "XRAGE"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    std::size_t n_;
    std::size_t domain_;
    std::vector<std::uint32_t> pattern_;
    Addr a_ = 0, b_ = 0, v_ = 0;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_SPATTER_HH

/**
 * @file
 * The DX100 instruction set (paper Table 2).
 *
 * Eight instructions cover indirect accesses (ILD/IST/IRMW), streaming
 * accesses (SLD/SST), tile ALU operations (ALUV/ALUS) and range-loop
 * fusion (RNG). Instructions are 192 bits and are delivered to the
 * accelerator as three 64-bit memory-mapped stores.
 */

#ifndef DX_DX100_ISA_HH
#define DX_DX100_ISA_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dx::dx100
{

enum class Opcode : std::uint8_t
{
    kIld,  //!< indirect load:   TD[i]       = MEM[BASE + TS1[i]]
    kIst,  //!< indirect store:  MEM[BASE + TS1[i]] = TS2[i]
    kIrmw, //!< indirect RMW:    MEM[BASE + TS1[i]] op= TS2[i]
    kSld,  //!< stream load:     TD[i]       = MEM[BASE + (s + i*k)]
    kSst,  //!< stream store:    MEM[BASE + (s + i*k)] = TS1[i]
    kAluv, //!< vector ALU:      TD[i] = TS1[i] op TS2[i]
    kAlus, //!< scalar ALU:      TD[i] = TS1[i] op REG[RS1]
    kRng,  //!< range fuse:      (TD1,TD2) += {(i, j) : TS1[i]<=j<TS2[i]}
};

enum class DataType : std::uint8_t
{
    kU32,
    kI32,
    kF32,
    kU64,
    kI64,
    kF64,
};

/** Element size in bytes for a data type. */
constexpr unsigned
elemSize(DataType t)
{
    switch (t) {
      case DataType::kU32:
      case DataType::kI32:
      case DataType::kF32:
        return 4;
      default:
        return 8;
    }
}

enum class AluOp : std::uint8_t
{
    kNone,
    kAdd,
    kSub,
    kMul,
    kMin,
    kMax,
    kAnd,
    kOr,
    kXor,
    kShr,
    kShl,
    kLt,
    kLe,
    kGt,
    kGe,
    kEq,
};

/** RMW supports only associative + commutative update operators. */
constexpr bool
rmwSupported(AluOp op)
{
    return op == AluOp::kAdd || op == AluOp::kMin || op == AluOp::kMax ||
           op == AluOp::kAnd || op == AluOp::kOr || op == AluOp::kXor;
}

/** "No tile"/"no register" sentinel in the 6-bit operand fields. */
constexpr std::uint8_t kNoOperand = 0x3f;

/**
 * One decoded DX100 instruction. The scalar operands used by the timing
 * model (loop start/count/stride) are resolved register values captured
 * at emission; the register *indices* live in rs fields for encoding
 * fidelity.
 */
struct Instruction
{
    Opcode op = Opcode::kIld;
    DataType dtype = DataType::kU32;
    AluOp aluOp = AluOp::kNone;

    std::uint8_t td = kNoOperand;   //!< destination tile
    std::uint8_t td2 = kNoOperand;  //!< second destination (RNG)
    std::uint8_t ts1 = kNoOperand;  //!< source tile 1 (index / data)
    std::uint8_t ts2 = kNoOperand;  //!< source tile 2 (store data)
    std::uint8_t tc = kNoOperand;   //!< condition tile
    std::uint8_t rs1 = kNoOperand;  //!< scalar register operands
    std::uint8_t rs2 = kNoOperand;
    std::uint8_t rs3 = kNoOperand;

    Addr base = 0;       //!< base address of the accessed array
    std::uint64_t imm = 0; //!< packed scalars (see encode())

    bool operator==(const Instruction &o) const = default;

    unsigned elemBytes() const { return elemSize(dtype); }

    /** Human-readable rendering for logs and tests. */
    std::string toString() const;
};

/** Encode into the three 64-bit doorbell words. */
std::array<std::uint64_t, 3> encode(const Instruction &instr);

/** Decode from the three doorbell words. */
Instruction decode(const std::array<std::uint64_t, 3> &words);

std::string to_string(Opcode op);
std::string to_string(DataType t);
std::string to_string(AluOp op);

} // namespace dx::dx100

#endif // DX_DX100_ISA_HH

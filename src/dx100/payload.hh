/**
 * @file
 * Sideband payload accompanying each DX100 instruction.
 *
 * The 192-bit doorbell encoding is what travels architecturally; the
 * payload carries the *data snapshots* the timing model needs to replay
 * the exact address stream (source index values, condition bits,
 * resolved scalar registers). In hardware these values live in the
 * scratchpad; in this pure-timing simulator they are captured from the
 * runtime's functional mirror at emission time (DESIGN.md §4.2).
 */

#ifndef DX_DX100_PAYLOAD_HH
#define DX_DX100_PAYLOAD_HH

#include <cstdint>
#include <vector>

#include "dx100/isa.hh"

namespace dx::dx100
{

struct ExecPayload
{
    std::uint64_t id = 0;  //!< instance-wide instruction id (wait token)
    Instruction instr;

    /** TS1 snapshot: indices (ILD/IST/IRMW), range starts (RNG). */
    std::vector<std::uint64_t> src1;
    /** TS2 snapshot: range ends (RNG). Unused otherwise. */
    std::vector<std::uint64_t> src2;
    /** Condition tile snapshot (empty => unconditioned). */
    std::vector<std::uint8_t> cond;

    /** Iteration count (stream count, ts1 size, or ALU input size). */
    std::uint32_t count = 0;
    /** Elements produced into destination tiles (ALU/RNG/ILD). */
    std::uint32_t outCount = 0;
};

} // namespace dx::dx100

#endif // DX_DX100_PAYLOAD_HH

#include "loopir/exec.hh"

#include "common/logging.hh"
#include "dx100/functional.hh"
#include "workloads/kernels.hh"

namespace dx::loopir
{

namespace
{

std::uint64_t
loadElem(SimMemory &mem, const Array &a, std::uint64_t idx)
{
    const Addr addr = a.base + idx * elemSize(a.type);
    return elemSize(a.type) == 4 ? mem.read<std::uint32_t>(addr)
                                 : mem.read<std::uint64_t>(addr);
}

void
storeElem(SimMemory &mem, const Array &a, std::uint64_t idx,
          std::uint64_t v)
{
    const Addr addr = a.base + idx * elemSize(a.type);
    if (elemSize(a.type) == 4)
        mem.write<std::uint32_t>(addr, static_cast<std::uint32_t>(v));
    else
        mem.write<std::uint64_t>(addr, v);
}

} // namespace

std::uint64_t
evalExpr(const Program &prog, const ExprPtr &e, std::uint64_t i,
         SimMemory &mem)
{
    switch (e->kind) {
      case Expr::Kind::kIndVar:
        return i;
      case Expr::Kind::kConst:
        return e->constant;
      case Expr::Kind::kRef: {
        const std::uint64_t idx = evalExpr(prog, e->kids[0], i, mem);
        return loadElem(mem, prog.arrays[static_cast<unsigned>(
                                  e->array)], idx);
      }
      case Expr::Kind::kBin: {
        const std::uint64_t a = evalExpr(prog, e->kids[0], i, mem);
        const std::uint64_t b = evalExpr(prog, e->kids[1], i, mem);
        return dx100::applyAluOp(e->op, DataType::kU64, a, b);
      }
    }
    dx_panic("bad expression");
}

void
interpret(const Program &prog, SimMemory &mem)
{
    for (std::uint64_t i = prog.lo; i < prog.hi; ++i) {
        for (const auto &s : prog.body) {
            if (s.cond && evalExpr(prog, s.cond, i, mem) == 0)
                continue;
            const std::uint64_t idx = evalExpr(prog, s.index, i, mem);
            const std::uint64_t val = evalExpr(prog, s.value, i, mem);
            const Array &a =
                prog.arrays[static_cast<unsigned>(s.array)];
            if (s.kind == Stmt::Kind::kStore) {
                storeElem(mem, a, idx, val);
            } else {
                const std::uint64_t old = loadElem(mem, a, idx);
                storeElem(mem, a, idx,
                          dx100::applyAluOp(s.rmwOp, a.type, old,
                                            val));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Baseline kernel: emit the loop as micro-ops.
// ---------------------------------------------------------------------

namespace
{

class IrBaselineKernel : public wl::LoopKernel
{
  public:
    IrBaselineKernel(const Program &prog, SimMemory &mem,
                     std::uint64_t bg, std::uint64_t en)
        : LoopKernel(bg, en), prog_(prog), mem_(mem)
    {}

  protected:
    struct Val
    {
        SeqNum seq = kNoSeq;
        std::uint64_t value = 0;
    };

    Val
    emitExpr(cpu::OpEmitter &e, const ExprPtr &x, std::uint64_t i)
    {
        switch (x->kind) {
          case Expr::Kind::kIndVar:
            return {kNoSeq, i};
          case Expr::Kind::kConst:
            return {kNoSeq, x->constant};
          case Expr::Kind::kRef: {
            const Val idx = emitExpr(e, x->kids[0], i);
            const Array &a =
                prog_.arrays[static_cast<unsigned>(x->array)];
            const SeqNum calc = e.intOp(1, idx.seq);
            const Addr addr =
                a.base + idx.value * elemSize(a.type);
            const std::uint64_t v = loadElem(mem_, a, idx.value);
            const SeqNum seq = e.load(
                addr, static_cast<std::uint8_t>(elemSize(a.type)),
                static_cast<std::uint16_t>(10 + x->array), v, calc);
            return {seq, v};
          }
          case Expr::Kind::kBin: {
            const Val a = emitExpr(e, x->kids[0], i);
            const Val b = emitExpr(e, x->kids[1], i);
            const SeqNum seq = e.intOp(1, a.seq, b.seq);
            return {seq, dx100::applyAluOp(x->op, DataType::kU64,
                                           a.value, b.value)};
          }
        }
        dx_panic("bad expression");
    }

    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        for (const auto &s : prog_.body) {
            if (s.cond) {
                const Val c = emitExpr(e, s.cond, i);
                e.intOp(1, c.seq); // branch
                if (c.value == 0)
                    continue;
            }
            const Val idx = emitExpr(e, s.index, i);
            const Val val = emitExpr(e, s.value, i);
            const Array &a =
                prog_.arrays[static_cast<unsigned>(s.array)];
            const Addr addr =
                a.base + idx.value * elemSize(a.type);
            if (s.kind == Stmt::Kind::kStore) {
                storeElem(mem_, a, idx.value, val.value);
                e.store(addr,
                        static_cast<std::uint8_t>(elemSize(a.type)),
                        3, idx.seq, val.seq);
            } else {
                const std::uint64_t old =
                    loadElem(mem_, a, idx.value);
                storeElem(mem_, a, idx.value,
                          dx100::applyAluOp(s.rmwOp, a.type, old,
                                            val.value));
                e.rmw(addr,
                      static_cast<std::uint8_t>(elemSize(a.type)), 3,
                      idx.seq, val.seq);
            }
        }
        e.intOp();
    }

  private:
    const Program &prog_;
    SimMemory &mem_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
makeBaselineKernel(const Program &prog, SimMemory &mem,
                   std::uint64_t begin, std::uint64_t end)
{
    return std::make_unique<IrBaselineKernel>(prog, mem, begin, end);
}

// ---------------------------------------------------------------------
// DX100 kernel: run the compiled plan tile by tile.
// ---------------------------------------------------------------------

std::unique_ptr<cpu::Kernel>
makeDx100Kernel(const Program &prog, const TilePlan &plan,
                runtime::Dx100Runtime &rt, int coreId,
                std::uint64_t begin, std::uint64_t end)
{
    // Map virtual tiles to real scratchpad tiles (single-buffered).
    auto tiles = std::make_shared<std::vector<unsigned>>();
    for (unsigned t = 0; t < plan.tilesNeeded; ++t)
        tiles->push_back(rt.allocTile());

    auto planCopy = std::make_shared<TilePlan>(plan);
    auto progArrays =
        std::make_shared<std::vector<Array>>(prog.arrays);

    auto emitTile = [&rt, coreId, tiles, planCopy, progArrays](
                        cpu::OpEmitter &e, unsigned, std::size_t tb,
                        std::uint32_t cnt) {
        std::uint64_t token = 0;
        auto real = [&](int vt) {
            return vt < 0 ? runtime::Dx100Runtime::kNone
                          : (*tiles)[static_cast<unsigned>(vt)];
        };
        for (const auto &op : planCopy->ops) {
            const Array *a =
                op.array >= 0
                    ? &(*progArrays)[static_cast<unsigned>(op.array)]
                    : nullptr;
            switch (op.kind) {
              case PackedOp::Kind::kSld:
                token = rt.sld(e, coreId, op.dtype, a->base,
                               real(op.dst), tb, cnt, 1,
                               real(op.cond));
                break;
              case PackedOp::Kind::kIld:
                token = rt.ild(e, coreId, op.dtype, a->base,
                               real(op.dst), real(op.src1),
                               real(op.cond));
                break;
              case PackedOp::Kind::kAluS:
                token = rt.alus(e, coreId, op.dtype, op.op,
                                real(op.dst), real(op.src1),
                                op.scalar, real(op.cond));
                break;
              case PackedOp::Kind::kAluV:
                token = rt.aluv(e, coreId, op.dtype, op.op,
                                real(op.dst), real(op.src1),
                                real(op.src2), real(op.cond));
                break;
              case PackedOp::Kind::kIst:
                token = rt.ist(e, coreId, op.dtype, a->base,
                               real(op.src1), real(op.src2),
                               real(op.cond));
                break;
              case PackedOp::Kind::kIrmw:
                token = rt.irmw(e, coreId, op.dtype, op.op, a->base,
                                real(op.src1), real(op.src2),
                                real(op.cond));
                break;
              case PackedOp::Kind::kSst:
                token = rt.sst(e, coreId, op.dtype, a->base,
                               real(op.src1), tb, cnt, 1,
                               real(op.cond));
                break;
            }
        }
        return token;
    };

    return std::make_unique<wl::TiledDxKernel>(
        rt, begin, end, rt.tileElems(), emitTile,
        wl::TiledDxKernel::ConsumeTileFn{}, /*buffers=*/1);
}

} // namespace dx::loopir

/**
 * @file
 * Full-system assembly: cores + private L1/L2 + shared inclusive LLC +
 * DRAM, optionally with DX100 instance(s) and/or the DMP indirect
 * prefetcher. Defaults follow paper Table 3.
 */

#ifndef DX_SIM_SYSTEM_HH
#define DX_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_port.hh"
#include "common/sim_memory.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "dx100/dx100.hh"
#include "mem/dram_system.hh"
#include "prefetch/indirect_prefetcher.hh"
#include "runtime/dx100_api.hh"

namespace dx::sim
{

struct SystemConfig
{
    unsigned cores = 4;
    cpu::Core::Config core;

    cache::Cache::Config l1;
    cache::Cache::Config l2;
    cache::Cache::Config llc;
    bool stridePrefetchers = true;

    mem::DramSystem::Config dram;

    /** Number of DX100 instances (0 = baseline system). */
    unsigned dx100Instances = 0;
    dx100::Dx100Config dx;

    /** Attach a DMP-style indirect prefetcher at each core's L2. */
    bool dmp = false;
    prefetch::IndirectPrefetcher::Config dmpCfg;

    SystemConfig();

    /** Baseline (Table 3): 10 MB LLC, no accelerator. */
    static SystemConfig baseline(unsigned cores = 4);

    /** DX100 system (Table 3): 8 MB LLC + accelerator(s). */
    static SystemConfig withDx100(unsigned cores = 4,
                                  unsigned instances = 1);

    /** Baseline plus the DMP indirect prefetcher. */
    static SystemConfig withDmp(unsigned cores = 4);
};

/** Flat summary of a finished run (feeds EXPERIMENTS.md tables). */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;  //!< committed, all cores
    double ipc = 0.0;
    double bandwidthUtil = 0.0;      //!< DRAM data-bus utilization
    double rowBufferHitRate = 0.0;
    double requestBufferOccupancy = 0.0;
    std::uint64_t dramLines = 0;
    double llcMpki = 0.0;            //!< LLC demand misses / kilo-instr
    double l2Mpki = 0.0;
    double coalescingFactor = 0.0;   //!< DX100 words per DRAM column
    std::uint64_t dxInstructions = 0;

    std::string toString() const;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    SimMemory &memory() { return mem_; }
    SimAllocator &allocator() { return alloc_; }

    unsigned cores() const { return cfg_.cores; }
    cpu::Core &core(unsigned i) { return *cores_[i]; }
    cache::Cache &l1(unsigned i) { return *l1s_[i]; }
    cache::Cache &l2(unsigned i) { return *l2s_[i]; }
    cache::Cache &llc() { return *llc_; }
    mem::DramSystem &dram() { return *dram_; }

    /** DX100 instance serving core @p coreId (core multiplexing). */
    dx100::Dx100 *dx100For(unsigned coreId);
    dx100::Dx100 *dx100(unsigned instance = 0);
    runtime::Dx100Runtime *runtime(unsigned instance = 0);
    runtime::Dx100Runtime *runtimeFor(unsigned coreId);

    void setKernel(unsigned coreId, cpu::Kernel *kernel);

    /**
     * Warm the LLC with a region that is architecturally resident when
     * the region of interest starts (e.g. a vector the cores produced
     * in the previous solver iteration). Stops at LLC capacity.
     */
    void warmLlc(Addr base, Addr size);

    /** Tick every component once. */
    void tick();

    /** Run until all cores are done and the memory system drains. */
    RunStats run(Cycle maxCycles = Cycle{4} << 30);

    /** Collect statistics without running further. */
    RunStats collectStats() const;

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    SimMemory mem_;
    SimAllocator alloc_;

    std::unique_ptr<mem::DramSystem> dram_;
    std::unique_ptr<cache::DramPort> dramPort_;
    std::unique_ptr<cache::RangeRouter> router_;
    std::unique_ptr<cache::Cache> llc_;
    std::vector<std::unique_ptr<cache::Cache>> l2s_;
    std::vector<std::unique_ptr<cache::Cache>> l1s_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<dx100::Dx100>> dxs_;
    std::vector<std::unique_ptr<runtime::Dx100Runtime>> runtimes_;
    std::unique_ptr<dx100::RegionDirectory> regionDir_;

    Cycle now_ = 0;
};

} // namespace dx::sim

#endif // DX_SIM_SYSTEM_HH

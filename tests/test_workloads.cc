/**
 * @file
 * Every paper workload, at reduced scale, runs on the baseline, the
 * DX100 system, and the DMP system, and must verify functionally.
 * These tests exercise the full stack: kernels, runtime API, all four
 * DX100 units, coherency, caches and DRAM.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr double kTestScale = 0.02;

RunStats
runVerified(const WorkloadEntry &entry, const SystemConfig &cfg)
{
    auto w = entry.make(Scale{kTestScale});
    System sys(cfg);
    w->init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w->makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    const RunStats stats = sys.run();
    EXPECT_TRUE(w->verify(sys))
        << entry.name << " produced wrong results";
    return stats;
}

class WorkloadTest
    : public ::testing::TestWithParam<const WorkloadEntry *>
{
};

std::vector<const WorkloadEntry *>
allEntries()
{
    std::vector<const WorkloadEntry *> out;
    for (const auto &e : paperWorkloads())
        out.push_back(&e);
    return out;
}

std::string
entryName(const ::testing::TestParamInfo<const WorkloadEntry *> &info)
{
    return info.param->name;
}

} // namespace

TEST_P(WorkloadTest, BaselineCorrect)
{
    const RunStats s = runVerified(*GetParam(),
                                   SystemConfig::baseline());
    EXPECT_GT(s.instructions, 0u);
}

TEST_P(WorkloadTest, Dx100Correct)
{
    const RunStats s = runVerified(*GetParam(),
                                   SystemConfig::withDx100());
    EXPECT_GT(s.dxInstructions, 0u);
}

TEST_P(WorkloadTest, DmpCorrect)
{
    runVerified(*GetParam(), SystemConfig::withDmp());
}

TEST_P(WorkloadTest, Dx100ReducesInstructions)
{
    const RunStats base = runVerified(*GetParam(),
                                      SystemConfig::baseline());
    const RunStats dx = runVerified(*GetParam(),
                                    SystemConfig::withDx100());
    // Every workload offloads at least part of its address arithmetic.
    EXPECT_LT(dx.instructions, base.instructions);
}

INSTANTIATE_TEST_SUITE_P(AllPaperWorkloads, WorkloadTest,
                         ::testing::ValuesIn(allEntries()),
                         entryName);

TEST(WorkloadRegistry, HasTwelveEntriesAndLookup)
{
    EXPECT_EQ(paperWorkloads().size(), 12u);
    EXPECT_NE(findWorkload("IS"), nullptr);
    EXPECT_NE(findWorkload("XRAGE"), nullptr);
    EXPECT_EQ(findWorkload("nope"), nullptr);
    EXPECT_EQ(findWorkload("GZPI")->suite, "UME");
}

/**
 * @file
 * Reproduces paper Fig. 9: DX100 speedup over the 4-core baseline for
 * the 12 evaluation workloads (geomean reported 2.6x in the paper).
 *
 * Shares its run matrix (RunMatrix::paperMain, and thus the on-disk
 * stats cache) with fig10/fig11 by construction.
 */

#include <cstdio>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

void
formatSpeedupTable(const MatrixResult &r)
{
    std::printf("%-8s %-10s %14s %14s %9s\n", "kernel", "suite",
                "base cycles", "dx100 cycles", "speedup");
    std::vector<double> speedups;
    for (const auto &w : r.workloads()) {
        const CellResult &base = r.cell(w.name, "baseline");
        const CellResult &dx = r.cell(w.name, "dx100");
        if (!base.ok || !dx.ok) {
            std::printf("%-8s %-10s %14s\n", w.name.c_str(),
                        w.suite.c_str(), "FAILED");
            continue;
        }
        const double speedup =
            static_cast<double>(base.stats.cycles) / dx.stats.cycles;
        speedups.push_back(speedup);
        std::printf("%-8s %-10s %14llu %14llu %8.2fx\n",
                    w.name.c_str(), w.suite.c_str(),
                    static_cast<unsigned long long>(base.stats.cycles),
                    static_cast<unsigned long long>(dx.stats.cycles),
                    speedup);
    }
    std::printf("%-8s %-10s %14s %14s %8.2fx   (paper: 2.6x)\n",
                "geomean", "", "", "", geomean(speedups));
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 9 - DX100 speedup over 4-core baseline",
                     opt);

    const MatrixResult result = RunMatrix::paperMain().run(opt);
    formatSpeedupTable(result);
    maybeWriteJson(result, "fig09", opt);
    return result.failures() == 0 ? 0 : 1;
}

/**
 * @file
 * Reproduces paper Fig. 8(b,c): all-miss Gather-Full over 64K unique
 * indices arranged to produce controlled baseline row-buffer hit rates
 * and channel / bank-group interleaving. The paper reports DX100
 * speedups from 9.9x (worst index order) down to 1.7x (best), with
 * DX100 bandwidth utilization flat at 82-85% regardless of order.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/run_matrix.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr std::size_t kN = 64 * 1024;

struct Point
{
    std::string label;
    DramPatternParams pat;
};

std::vector<Point>
patternPoints()
{
    std::vector<Point> points;
    for (unsigned rbh : {0u, 25u, 50u, 75u, 100u}) {
        DramPatternParams p;
        p.rbhPercent = rbh;
        p.channelInterleave = false;
        p.bankGroupInterleave = false;
        points.push_back({"RBH" + std::to_string(rbh), p});
    }
    {
        DramPatternParams p;
        p.rbhPercent = 100;
        p.channelInterleave = true;
        p.bankGroupInterleave = false;
        points.push_back({"RBH100+CHI", p});
    }
    {
        DramPatternParams p;
        p.rbhPercent = 100;
        p.channelInterleave = true;
        p.bankGroupInterleave = true;
        points.push_back({"RBH100+CHI+BGI", p});
    }
    return points;
}

RunMatrix
allMissMatrix()
{
    RunMatrix m("allmiss_micro");
    for (const auto &pt : patternPoints()) {
        const DramPatternParams pat = pt.pat;
        m.add({pt.label, "micro",
               [pat](Scale) -> std::unique_ptr<Workload> {
                   return std::make_unique<GatherMicro>(
                       GatherMicro::Mode::kFull, kN, pat);
               },
               /*cacheable=*/false});
    }
    m.addConfig("baseline", SystemConfig::baseline());
    m.addConfig("dx100", SystemConfig::withDx100());
    return m;
}

void
formatAllMissTable(const MatrixResult &r)
{
    std::printf("%-16s %9s | %6s %6s | %6s %6s\n", "index order",
                "speedup", "bw.b", "bw.dx", "rbh.b", "rbh.dx");
    for (const auto &w : r.workloads()) {
        const CellResult &base = r.cell(w.name, "baseline");
        const CellResult &dx = r.cell(w.name, "dx100");
        if (!base.ok || !dx.ok) {
            std::printf("%-16s %9s\n", w.name.c_str(), "FAILED");
            continue;
        }
        const RunStats &b = base.stats;
        const RunStats &d = dx.stats;
        std::printf("%-16s %8.2fx | %6.3f %6.3f | %6.3f %6.3f\n",
                    w.name.c_str(),
                    static_cast<double>(b.cycles) / d.cycles,
                    b.bandwidthUtil, d.bandwidthUtil,
                    b.rowBufferHitRate, d.rowBufferHitRate);
    }
    std::printf("(paper: speedup 9.9x at worst order -> 1.7x at best; "
                "DX100 bw flat at 0.82-0.85)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 8(b,c) - all-miss Gather-Full vs index "
                     "order", opt);

    const MatrixResult result = allMissMatrix().run(opt);
    formatAllMissTable(result);
    maybeWriteJson(result, "fig08bc", opt);
    return result.failures() == 0 ? 0 : 1;
}

/**
 * @file
 * NAS parallel benchmark kernels (paper §5): Integer Sort (IS) and
 * Conjugate Gradient (CG).
 *
 * IS is the bucket-histogram phase: A[K[i]] += 1 over random keys —
 * atomic RMWs in the baseline, IRMW on DX100.
 * CG is the SpMV at the heart of the solver: y = M*x with CSR storage —
 * the indirect load x[colIdx[j]] dominates; DX100 gathers it into the
 * scratchpad while the core keeps the floating-point reduction.
 */

#ifndef DX_WORKLOADS_NAS_HH
#define DX_WORKLOADS_NAS_HH

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

class IntegerSort : public Workload
{
  public:
    explicit IntegerSort(Scale s);

    std::string name() const override { return "IS"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    std::size_t keys_;
    std::size_t buckets_;
    Addr k_ = 0, a_ = 0, ones_ = 0;
};

class ConjugateGradient : public Workload
{
  public:
    explicit ConjugateGradient(Scale s);

    std::string name() const override { return "CG"; }
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    CsrMatrix m_;
    Addr rowPtr_ = 0, colIdx_ = 0, vals_ = 0, x_ = 0, y_ = 0;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_NAS_HH

#include "sim/system.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "sim/topology.hh"

namespace dx::sim
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
validateCacheGeometry(const char *label, const cache::Cache::Config &c)
{
    if (c.assoc == 0 || c.sizeBytes == 0)
        dx_fatal("SystemConfig: ", label, " needs a non-zero size and "
                 "associativity (got sizeBytes=", c.sizeBytes,
                 ", assoc=", c.assoc, ")");
    const std::uint64_t waySpan =
        std::uint64_t{c.assoc} * kLineBytes;
    if (c.sizeBytes % waySpan != 0)
        dx_fatal("SystemConfig: ", label, " sizeBytes=", c.sizeBytes,
                 " is not a multiple of assoc*lineBytes=", waySpan,
                 "; pick a size divisible by ", waySpan);
    const std::uint64_t sets = c.sizeBytes / waySpan;
    if (!isPowerOfTwo(sets))
        dx_fatal("SystemConfig: ", label, " geometry gives ", sets,
                 " sets, which is not a power of two; adjust sizeBytes"
                 " (", c.sizeBytes, ") or assoc (", c.assoc,
                 ") so sizeBytes / (assoc * ", kLineBytes,
                 ") is a power of two");
    if (c.mshrs == 0 || c.queueSize == 0 || c.width == 0)
        dx_fatal("SystemConfig: ", label, " needs non-zero mshrs/"
                 "queueSize/width (got ", c.mshrs, "/", c.queueSize,
                 "/", c.width, ")");
}

} // namespace

void
SystemConfig::validate() const
{
    if (cores == 0)
        dx_fatal("SystemConfig: cores must be at least 1 — a system "
                 "with no cores has nothing to run");
    if (core.width == 0 || core.robSize == 0 || core.lqSize == 0 ||
        core.sqSize == 0)
        dx_fatal("SystemConfig: core structures must be non-zero "
                 "(width=", core.width, ", robSize=", core.robSize,
                 ", lqSize=", core.lqSize, ", sqSize=", core.sqSize,
                 ")");
    validateCacheGeometry("l1", l1);
    validateCacheGeometry("l2", l2);
    validateCacheGeometry("llc", llc);
    if (dx100Instances > 0 && dmp)
        dx_fatal("SystemConfig: dx100Instances=", dx100Instances,
                 " conflicts with dmp=true — the DMP indirect "
                 "prefetcher models the comparison baseline and the "
                 "two would fight over the same access stream; enable "
                 "the accelerator or the prefetcher, not both");
    if (dx100Instances > cores)
        dx_fatal("SystemConfig: dx100Instances=", dx100Instances,
                 " exceeds cores=", cores, " — each instance must "
                 "serve at least one core");
    if (!isPowerOfTwo(dram.ctrl.geom.channels))
        dx_fatal("SystemConfig: dram channels=",
                 dram.ctrl.geom.channels,
                 " must be a non-zero power of two (the address map "
                 "selects the channel with low line-address bits)");
    if (dram.clockRatio == 0)
        dx_fatal("SystemConfig: dram.clockRatio must be at least 1 "
                 "(core cycles per controller cycle)");
}

SystemConfig::SystemConfig()
{
    l1.name = "L1D";
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    l1.latency = 4;
    l1.mshrs = 16;
    l1.queueSize = 16;
    l1.width = 2;

    l2.name = "L2";
    l2.sizeBytes = 256 * 1024;
    l2.assoc = 4;
    l2.latency = 12;
    l2.mshrs = 32;
    l2.queueSize = 24;
    l2.width = 2;

    llc.name = "LLC";
    llc.sizeBytes = 10 * 1024 * 1024;
    llc.assoc = 20;
    llc.latency = 42;
    llc.mshrs = 256;
    llc.queueSize = 96;
    llc.width = 4;
    llc.inclusiveRoot = true;
}

SystemConfig
SystemConfig::baseline(unsigned cores)
{
    SystemConfig cfg;
    cfg.cores = cores;
    // Scale channels with core count (paper Fig. 14: 8 cores, 4 ch).
    cfg.dram.ctrl.geom.channels = cores <= 4 ? 2 : 4;
    if (cores > 4)
        cfg.llc.sizeBytes = 20 * 1024 * 1024;
    return cfg;
}

SystemConfig
SystemConfig::withDx100(unsigned cores, unsigned instances)
{
    SystemConfig cfg = baseline(cores);
    cfg.dx100Instances = instances;
    // Fair comparison: the LLC gives up ~2 MB per instance (paper §5),
    // rounded so the set count stays a power of two.
    cfg.llc.sizeBytes = cores <= 4 ? 8 * 1024 * 1024
                                   : 16 * 1024 * 1024;
    cfg.llc.assoc = 16;
    return cfg;
}

SystemConfig
SystemConfig::withDmp(unsigned cores)
{
    SystemConfig cfg = baseline(cores);
    cfg.dmp = true;
    return cfg;
}

bool
RunStats::setField(const std::string &name, double value)
{
#define DX_STAT_SET(fname, type) \
    if (name == #fname) { \
        fname = static_cast<type>(value); \
        return true; \
    }
    DX_RUN_STATS_SCHEMA(DX_STAT_SET)
#undef DX_STAT_SET
    return false;
}

bool
RunStats::operator==(const RunStats &o) const
{
#define DX_STAT_EQ(fname, type) \
    if (fname != o.fname) \
        return false;
    DX_RUN_STATS_SCHEMA(DX_STAT_EQ)
#undef DX_STAT_EQ
    return true;
}

std::string
RunStats::toString() const
{
    std::ostringstream os;
    bool first = true;
    forEachField([&](const char *name, auto value) {
        os << (first ? "" : " ") << name << "=" << value;
        first = false;
    });
    return os.str();
}

namespace
{

/** The only cross-System shared state; see System::liveSystems(). */
std::atomic<unsigned> gLiveSystems{0};

bool
resolveNaiveTick(TickPolicy policy)
{
    if (policy == TickPolicy::kNaive)
        return true;
    if (policy == TickPolicy::kQuiescent)
        return false;
    const char *env = std::getenv("DX_NAIVE_TICK");
    return env && env[0] == '1' && env[1] == '\0';
}

/**
 * Skip @p c one cycle when its own hint proves the tick a no-op.
 * Returns the component's event hint when it skipped, 0 when it had to
 * tick (0 is never a legal hint: hints exceed the component's clock).
 */
template <typename C>
Cycle
tickOrSkip(C &c)
{
    // c's clock trails the advanced System clock by one here, so the
    // tick being decided lands on localNow() + 1: skip only when the
    // next event lies strictly beyond it.
    if (c.quiescent()) {
        const Cycle ev = c.nextEventAt();
        if (ev > c.localNow() + 1) {
            c.skipCycles(1);
            return ev;
        }
    }
    c.tick();
    return 0;
}

} // namespace

unsigned
System::liveSystems()
{
    return gLiveSystems.load(std::memory_order_relaxed);
}

System::System(const SystemConfig &cfg)
    : Component("system"), cfg_(cfg),
      naiveTick_(resolveNaiveTick(cfg.tickPolicy))
{
    gLiveSystems.fetch_add(1, std::memory_order_relaxed);

    // All structural wiring lives in the builder; the System just
    // takes ownership of the finished topology.
    Topology t = TopologyBuilder(cfg_, mem_).build(*this);
    dram_ = std::move(t.dram);
    dramPort_ = std::move(t.dramPort);
    router_ = std::move(t.router);
    llc_ = std::move(t.llc);
    l2s_ = std::move(t.l2s);
    l1s_ = std::move(t.l1s);
    cores_ = std::move(t.cores);
    dxs_ = std::move(t.dxs);
    runtimes_ = std::move(t.runtimes);
    regionDir_ = std::move(t.regionDir);

    // Parallel-safety invariant: every component this System ticks is
    // owned by this instance (no component registry, no global memory
    // pool). Check the ownership edges that matter.
    dx_assert(l1s_.size() == cfg_.cores &&
                  l2s_.size() == cfg_.cores &&
                  cores_.size() == cfg_.cores,
              "System must own one L1/L2/core per configured core");
    dx_assert(dxs_.size() == cfg_.dx100Instances,
              "System must own every configured DX100 instance");

    // Publish every component's counters under its tree path. Entries
    // reference live objects, so this happens once, up front.
    registerTreeStats(*this, statReg_);
}

System::~System()
{
    gLiveSystems.fetch_sub(1, std::memory_order_relaxed);
}

dx100::Dx100 *
System::dx100For(unsigned coreId)
{
    if (dxs_.empty())
        return nullptr;
    const unsigned coresPerInst =
        (cfg_.cores + static_cast<unsigned>(dxs_.size()) - 1) /
        static_cast<unsigned>(dxs_.size());
    return dxs_[coreId / coresPerInst].get();
}

dx100::Dx100 *
System::dx100(unsigned instance)
{
    return instance < dxs_.size() ? dxs_[instance].get() : nullptr;
}

runtime::Dx100Runtime *
System::runtime(unsigned instance)
{
    return instance < runtimes_.size() ? runtimes_[instance].get()
                                       : nullptr;
}

runtime::Dx100Runtime *
System::runtimeFor(unsigned coreId)
{
    if (runtimes_.empty())
        return nullptr;
    const unsigned coresPerInst =
        (cfg_.cores + static_cast<unsigned>(runtimes_.size()) - 1) /
        static_cast<unsigned>(runtimes_.size());
    return runtimes_[coreId / coresPerInst].get();
}

void
System::setKernel(unsigned coreId, cpu::Kernel *kernel)
{
    cores_[coreId]->setKernel(kernel);
}

void
System::warmLlc(Addr base, Addr size)
{
    // Warm at most 7/8 of the LLC, preferring the *tail* of the region
    // (what an LRU cache would retain after the producing phase).
    const Addr limit = std::min<Addr>(
        size, cfg_.llc.sizeBytes - cfg_.llc.sizeBytes / 8);
    const Addr start = base + (size - limit);
    for (Addr off = 0; off < limit; off += kLineBytes)
        llc_->warmInsert(start + off);
}

void
System::tick()
{
    ++now_;
    for (auto &c : cores_)
        c->tick();
    for (auto &c : l1s_)
        c->tick();
    for (auto &c : l2s_)
        c->tick();
    llc_->tick();
    for (auto &d : dxs_)
        d->tick();
    dram_->tick();
}

Cycle
System::tickScheduled()
{
    // Same component order as tick(): skip decisions are made at each
    // component's slot, so anything an earlier component injected this
    // cycle (e.g. a core's doorbell into a DX100 input queue) is seen.
    ++now_;
    Cycle ev = kNeverCycle;
    bool allSkipped = true;
    const auto fold = [&](Cycle r) {
        if (r == 0)
            allSkipped = false;
        else
            ev = std::min(ev, r);
    };
    for (auto &c : cores_)
        fold(tickOrSkip(*c));
    for (auto &c : l1s_)
        fold(tickOrSkip(*c));
    for (auto &c : l2s_)
        fold(tickOrSkip(*c));
    fold(tickOrSkip(*llc_));
    for (auto &d : dxs_)
        fold(tickOrSkip(*d));
    if (!dram_->tickScheduled() || !allSkipped)
        return 0;
    // Every skip above was side-effect-free, so the hints gathered at
    // each slot still hold now; the DRAM hint is queried lazily — it
    // is only worth computing when everything else already skipped.
    return std::min(ev, dram_->nextEventAt());
}

Cycle
System::quiescentHorizon() const
{
    Cycle best = kNeverCycle;
    for (const auto &c : cores_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    for (const auto &c : l1s_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    for (const auto &c : l2s_) {
        if (!c->quiescent())
            return 0;
        best = std::min(best, c->nextEventAt());
    }
    if (!llc_->quiescent())
        return 0;
    best = std::min(best, llc_->nextEventAt());
    for (const auto &d : dxs_) {
        if (!d->quiescent())
            return 0;
        best = std::min(best, d->nextEventAt());
    }
    if (!dram_->quiescent())
        return 0;
    return std::min(best, dram_->nextEventAt());
}

void
System::skipTo(Cycle target)
{
    dx_assert(target >= now_, "skipTo into the past");
    const Cycle n = target - now_;
    if (n == 0)
        return;
    for (auto &c : cores_)
        c->skipCycles(n);
    for (auto &c : l1s_)
        c->skipCycles(n);
    for (auto &c : l2s_)
        c->skipCycles(n);
    llc_->skipCycles(n);
    for (auto &d : dxs_)
        d->skipCycles(n);
    dram_->skipCycles(n);
    now_ = target;
}

bool
System::drained() const
{
    for (const auto &c : cores_) {
        if (!c->done())
            return false;
    }
    for (const auto &d : dxs_) {
        if (!d->idle())
            return false;
    }
    for (const auto &c : l1s_) {
        if (!c->drained())
            return false;
    }
    for (const auto &c : l2s_) {
        if (!c->drained())
            return false;
    }
    return llc_->drained() && dram_->idle();
}

RunStats
System::run(Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle limit = start + maxCycles;
    while (!drained()) {
        if (naiveTick_) {
            tick();
        } else {
            // When every component skipped, the per-slot hints prove a
            // horizon: jump to the cycle before it in one closed-form
            // step (the cap keeps the cycle-limit fatal below
            // reachable).
            const Cycle horizon = tickScheduled();
            if (horizon > now_ + 1)
                skipTo(std::min(horizon - 1, limit));
        }
        if (now_ - start >= maxCycles)
            dx_fatal("simulation exceeded cycle limit");
    }

    RunStats s = collectStats();
    s.cycles = now_ - start;
    s.ipc = s.cycles ? static_cast<double>(s.instructions) / s.cycles
                     : 0.0;
    return s;
}

void
System::registerStats(StatRegistry &reg) const
{
    reg.group(path()).value("cycles", now_);
}

RunStats
System::collectStats() const
{
    // Pure projection of the hierarchical registry onto the flat
    // schema. Integral stats use the exact intValue() read; derived
    // ratios read the registered gauge, which wraps the component's
    // own accessor — the arithmetic is bit-identical to reading the
    // component directly.
    const StatRegistry &r = statReg_;
    RunStats s;
    s.cycles = r.intValue(path() + ".cycles");
    for (const auto &c : cores_)
        s.instructions += r.intValue(c->path() + ".committedOps");
    s.ipc = now_ ? static_cast<double>(s.instructions) / now_ : 0.0;
    s.bandwidthUtil = r.value(dram_->path() + ".busUtilization");
    s.rowBufferHitRate = r.value(dram_->path() + ".rowHitRate");
    s.requestBufferOccupancy =
        r.value(dram_->path() + ".queueOccupancy");
    s.dramLines = r.intValue(dram_->path() + ".linesTransferred");

    const double kilo = s.instructions / 1000.0;
    if (kilo > 0) {
        s.llcMpki =
            r.intValue(llc_->path() + ".demandMisses") / kilo;
        std::uint64_t l2m = 0;
        for (const auto &c : l2s_)
            l2m += r.intValue(c->path() + ".demandMisses");
        s.l2Mpki = l2m / kilo;
    }

    for (const auto &d : dxs_) {
        s.dxInstructions +=
            r.intValue(d->path() + ".instructionsRetired");
        s.coalescingFactor =
            r.value(d->path() + ".rowtable.coalescingFactor");
    }
    return s;
}

} // namespace dx::sim

#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace dx
{

double
StatDump::get(const std::string &name) const
{
    for (const auto &[n, v] : entries_) {
        if (n == name)
            return v;
    }
    dx_panic("stat not found: ", name);
}

bool
StatDump::has(const std::string &name) const
{
    for (const auto &[n, v] : entries_) {
        if (n == name)
            return true;
    }
    return false;
}

std::string
StatDump::toString() const
{
    std::ostringstream os;
    for (const auto &[n, v] : entries_)
        os << n << " = " << v << "\n";
    return os.str();
}

} // namespace dx

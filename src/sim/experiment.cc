#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace dx::sim
{

ExpOptions
ExpOptions::parse(int argc, char **argv)
{
    ExpOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            const std::string v = arg.substr(8);
            if (v == "small")
                opt.scale = 0.25;
            else if (v == "paper")
                opt.scale = 1.0;
            else
                opt.scale = std::stod(v);
        } else if (arg == "--no-cache") {
            opt.useCache = false;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opt.cacheDir = arg.substr(12);
        } else {
            dx_fatal("unknown bench option: ", arg,
                     " (supported: --scale=<f|small|paper>, "
                     "--no-cache, --cache-dir=<dir>)");
        }
    }
    return opt;
}

std::string
serializeStats(const RunStats &s)
{
    std::ostringstream os;
    os << "cycles " << s.cycles << "\n"
       << "instructions " << s.instructions << "\n"
       << "ipc " << s.ipc << "\n"
       << "bandwidthUtil " << s.bandwidthUtil << "\n"
       << "rowBufferHitRate " << s.rowBufferHitRate << "\n"
       << "requestBufferOccupancy " << s.requestBufferOccupancy << "\n"
       << "dramLines " << s.dramLines << "\n"
       << "llcMpki " << s.llcMpki << "\n"
       << "l2Mpki " << s.l2Mpki << "\n"
       << "coalescingFactor " << s.coalescingFactor << "\n"
       << "dxInstructions " << s.dxInstructions << "\n";
    return os.str();
}

std::optional<RunStats>
parseStats(const std::string &text)
{
    RunStats s;
    std::istringstream is(text);
    std::string key;
    double value;
    int fields = 0;
    while (is >> key >> value) {
        ++fields;
        if (key == "cycles")
            s.cycles = static_cast<Cycle>(value);
        else if (key == "instructions")
            s.instructions = static_cast<std::uint64_t>(value);
        else if (key == "ipc")
            s.ipc = value;
        else if (key == "bandwidthUtil")
            s.bandwidthUtil = value;
        else if (key == "rowBufferHitRate")
            s.rowBufferHitRate = value;
        else if (key == "requestBufferOccupancy")
            s.requestBufferOccupancy = value;
        else if (key == "dramLines")
            s.dramLines = static_cast<std::uint64_t>(value);
        else if (key == "llcMpki")
            s.llcMpki = value;
        else if (key == "l2Mpki")
            s.l2Mpki = value;
        else if (key == "coalescingFactor")
            s.coalescingFactor = value;
        else if (key == "dxInstructions")
            s.dxInstructions = static_cast<std::uint64_t>(value);
        else
            --fields;
    }
    if (fields < 8)
        return std::nullopt;
    return s;
}

RunStats
runWorkloadOnce(wl::Workload &w, const SystemConfig &cfg)
{
    System sys(cfg);
    w.init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w.makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    const RunStats stats = sys.run();
    if (!w.verify(sys))
        dx_fatal("workload ", w.name(), " failed verification");
    return stats;
}

RunStats
runWorkload(const wl::WorkloadEntry &entry, const SystemConfig &cfg,
            const std::string &configTag, const ExpOptions &opt)
{
    namespace fs = std::filesystem;
    std::ostringstream key;
    key << entry.name << "_" << configTag << "_s" << opt.scale
        << ".stats";
    const fs::path path = fs::path(opt.cacheDir) / key.str();

    if (opt.useCache && fs::exists(path)) {
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();
        if (auto cached = parseStats(buf.str())) {
            std::fprintf(stderr, "  [cached] %s %s\n",
                         entry.name.c_str(), configTag.c_str());
            return *cached;
        }
    }

    std::fprintf(stderr, "  [run] %s %s ...\n", entry.name.c_str(),
                 configTag.c_str());
    auto w = entry.make(wl::Scale{opt.scale});
    const RunStats stats = runWorkloadOnce(*w, cfg);

    if (opt.useCache) {
        fs::create_directories(opt.cacheDir);
        std::ofstream out(path);
        out << serializeStats(stats);
    }
    return stats;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

void
printBenchHeader(const std::string &title, const ExpOptions &opt)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("scale=%.3g cache=%s\n", opt.scale,
                opt.useCache ? opt.cacheDir.c_str() : "off");
    std::printf("==========================================================\n");
}

} // namespace dx::sim

/**
 * @file
 * Reproduces paper Fig. 14: scalability with core count and DX100
 * instance count. Paper: 2.6x speedup with 4 cores / 1 instance, 2.5x
 * with 8 cores / 1 instance (4 channels), 2.7x with 8 cores / 2
 * instances (core multiplexing + region coherence).
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

double
geomeanSpeedup(unsigned cores, unsigned instances,
               const ExpOptions &opt)
{
    // The paper doubles the dataset along with the core count.
    ExpOptions scaled = opt;
    if (cores > 4)
        scaled.scale = opt.scale * 2.0;

    std::vector<double> speedups;
    for (const auto &entry : paperWorkloads()) {
        const RunStats base = runWorkload(
            entry, SystemConfig::baseline(cores),
            "baseline" + std::to_string(cores), scaled);
        SystemConfig cfg = SystemConfig::withDx100(cores, instances);
        // A single instance serving 8 cores gets a near-doubled
        // scratchpad (paper: one 4MB instance vs two 2MB instances);
        // tile ids are 6-bit with 0x3f reserved, capping at 60 tiles.
        if (cores > 4 && instances == 1)
            cfg.dx.numTiles = 60;
        const RunStats dx = runWorkload(
            entry, cfg,
            "dx100_c" + std::to_string(cores) + "i" +
                std::to_string(instances),
            scaled);
        speedups.push_back(static_cast<double>(base.cycles) /
                           dx.cycles);
    }
    return geomean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 14 - scalability (cores x instances)", opt);

    std::printf("%-26s %9s %9s\n", "configuration", "geomean",
                "paper");
    std::printf("%-26s %8.2fx %9s\n", "4 cores, 1 instance",
                geomeanSpeedup(4, 1, opt), "2.6x");
    std::printf("%-26s %8.2fx %9s\n", "8 cores, 1 instance (4ch)",
                geomeanSpeedup(8, 1, opt), "2.5x");
    std::printf("%-26s %8.2fx %9s\n", "8 cores, 2 instances",
                geomeanSpeedup(8, 2, opt), "2.7x");
    return 0;
}

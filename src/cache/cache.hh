/**
 * @file
 * A cycle-level set-associative write-back cache with MSHRs.
 *
 * Used for the private L1D/L2 and the shared LLC. Misses allocate MSHRs
 * (coalescing secondary accesses as targets) and forward downstream
 * through a CachePort. The LLC acts as the inclusive root: evictions
 * back-invalidate the private levels, which also gives DX100 an exact
 * one-bit "is this line cached anywhere?" snoop (the H bit of §3.6).
 */

#ifndef DX_CACHE_CACHE_HH
#define DX_CACHE_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_if.hh"
#include "cache/prefetcher.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/component.hh"

namespace dx::cache
{

class Cache final : public Component,
                    public CachePort,
                    public CacheRespSink,
                    public SnoopPort
{
  public:
    struct Config
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        unsigned assoc = 8;
        unsigned latency = 4;        //!< lookup latency in core cycles
        unsigned mshrs = 16;
        unsigned targetsPerMshr = 8;
        unsigned queueSize = 16;     //!< input queue entries
        unsigned width = 2;          //!< lookups per cycle
        bool inclusiveRoot = false;  //!< back-invalidate children on evict
    };

    struct Stats
    {
        Counter demandHits;    //!< CPU demand only
        Counter demandMisses;  //!< CPU demand only
        Counter demandAccesses;
        Counter dxHits;        //!< DX100-originated traffic
        Counter dxMisses;
        Counter mshrCoalesced;
        Counter writebacks;
        Counter evictions;
        Counter backInvalidates;
        Counter prefetchesIssued;
        Counter prefetchesUseful; //!< demand hit on a prefetched line
        Counter stallMshrFull;
        Counter stallDownstream;
    };

    Cache(const Config &cfg, CachePort *downstream);

    /** Attach a prefetcher (optional). */
    void setPrefetcher(std::unique_ptr<Prefetcher> pf);

    /** Register an upper-level cache for inclusive back-invalidation. */
    void addChild(Cache *child) { children_.push_back(child); }

    // CachePort (upstream-facing).
    bool canAccept() const override;
    void request(const CacheReq &req) override;
    std::uint64_t popCount() const override { return popCount_; }
    const std::uint64_t *
    popCountAddr() const override
    {
        return &popCount_;
    }

    // CacheRespSink (downstream fill responses).
    void complete(const std::uint64_t &tag) override;

    // Component introspection.
    void registerStats(StatRegistry &reg) const override;

    std::vector<PortRef>
    portRefs() const override
    {
        return {{downstream_.name(), downstream_.bound()}};
    }

    /** Advance one core cycle. */
    void tick() override;

    /**
     * Quiescence contract (see DESIGN.md): tick() would change nothing
     * but the closed-form per-cycle stats — no processable queue entry,
     * no writeback awaiting drain, no prefetch candidate. A due head
     * that would structurally stall (MSHR/downstream full) *is*
     * quiescent: the retry's only effect is a stall counter, which
     * skipCycles() accumulates closed-form.
     *
     * Inline fast path: the scheduler probes every component every
     * cycle, so the common long-lived kTimed memo must cost two
     * compares at the call site, not a cross-TU call.
     */
    bool
    quiescent() const override
    {
        if (qMemo_ == QMemo::kTimed && now_ + 1 < sleepUntil_)
            return true;
        // Downstream-blocked head: valid while the gating resource's
        // departure count is unmoved (arrivals never free space). The
        // cached counter address dodges a virtual call per probe.
        if (qMemo_ == QMemo::kBlocked && downstreamPopAddr_ &&
            *downstreamPopAddr_ == blockedPops_) {
            return true;
        }
        return quiescentSlow();
    }

    /**
     * Earliest cycle tick() could act again without external stimulus;
     * kNeverCycle when only a new request or a fill can wake us. Only
     * meaningful while quiescent() — which (re)establishes the kTimed
     * memo this fast path returns.
     */
    Cycle
    nextEventAt() const override
    {
        if (qMemo_ == QMemo::kTimed)
            return sleepUntil_;
        // A kBlocked head is due-but-stalled: no timed self-event, only
        // external stimulus can wake it (matches nextEventAtSlow()).
        if (qMemo_ == QMemo::kBlocked)
            return kNeverCycle;
        return nextEventAtSlow();
    }

    /**
     * Closed-form advance over @p n cycles the caller has proven
     * quiescent (quiescent() holds and nextEventAt() > now + n),
     * accumulating the per-cycle stall counter a due-but-stalled head
     * would have bumped. Inline fast path: no due head, nothing to
     * accumulate but the clock.
     */
    void
    skipCycles(Cycle n) override
    {
        // kBlocked is only ever established for a due head stalled on
        // the downstream port, so the accumulated counter is fixed.
        if (qMemo_ == QMemo::kBlocked) {
            stats_.stallDownstream += n;
            now_ += n;
            return;
        }
        if (queue_.empty() || queue_.front().readyAt > now_ + 1) {
            now_ += n;
            return;
        }
        skipCyclesSlow(n);
    }

    /** This cache's clock (kept in sync with the System clock). */
    Cycle localNow() const override { return now_; }

    /** True if any request, MSHR or writeback is in flight. */
    bool busy() const;

    /**
     * Nothing in flight *and* no prefetch candidates queued: the
     * termination-side twin of quiescent(), used by System::run so a
     * run cannot end with requests still pending.
     */
    bool drained() const override;

    // SnoopPort: residency and invalidation (DX100's H bit).
    bool containsLine(Addr line) const override;
    bool invalidateLine(Addr line) override;

    /** Tag-store residency only (no in-flight fills). */
    bool tagsHold(Addr line) const;

    /**
     * Pre-install a clean line (cache warm-up for regions that are
     * architecturally resident when the region of interest begins).
     */
    void warmInsert(Addr line) { installLine(lineAlign(line), false,
                                             false); }

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }
    Prefetcher *prefetcher() { return prefetcher_.get(); }

    /** Render in-flight state (queues, MSHRs) for debugging. */
    std::string debugDump() const;

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        std::uint64_t lastUse = 0;
    };

    struct Target
    {
        std::uint64_t tag;
        CacheRespSink *sink;
        bool write;
    };

    struct Mshr
    {
        bool valid = false;
        Addr line = 0;
        bool dirtyOnFill = false;
        bool prefetch = false;
        std::vector<Target> targets;
    };

    struct Pending
    {
        CacheReq req;
        Cycle readyAt;
    };

    unsigned setIndex(Addr line) const;
    Way *lookup(Addr line);
    int mshrFor(Addr line) const;
    int freeMshr() const;

    /** Install a line, evicting the victim; may queue a writeback. */
    void installLine(Addr line, bool dirty, bool prefetched);

    /** Process one queued request; false => stall, leave at head. */
    bool processRequest(const CacheReq &req);

    /**
     * Why processRequest(queue_.front()) would stall this cycle
     * (kNone = it would make progress). Mirrors processRequest's stall
     * paths exactly; shared by quiescent() and skipCycles() so skipped
     * stall counters match the naive loop's bit-for-bit.
     */
    enum class HeadStall : std::uint8_t
    {
        kNone,
        kMshrFull,
        kDownstream,
    };
    HeadStall headStall() const;

    // Out-of-line halves of the quiescence API: everything past the
    // header-inlined memo checks.
    bool quiescentSlow() const;
    Cycle nextEventAtSlow() const;
    void skipCyclesSlow(Cycle n);

    /**
     * One-decision memo: quiescent() stores the headStall() it computed
     * so the skipCycles() that immediately follows (same cycle, no
     * intervening state change) reuses it instead of re-scanning the
     * MSHRs. Consumed-and-cleared by skipCycles(); never carried across
     * cycles because downstream queue space can change without this
     * cache seeing a call.
     */
    mutable HeadStall memoStall_ = HeadStall::kNone;
    mutable bool memoValid_ = false;

    /**
     * Cross-cycle memo of headStall()'s *own-state* part: everything
     * the classification reads except downstream queue space (tag
     * store, MSHR occupancy, the head request) only changes through
     * this cache's own entry points, so the expensive scans run once
     * per state change instead of once per scheduler query. kForward
     * ("would allocate and forward") still rechecks the downstream
     * port on every query — that state changes behind our back.
     */
    enum class SelfClass : std::uint8_t
    {
        kNone,     //!< head would make progress regardless of downstream
        kMshrFull, //!< MSHR or coalesce-target structural stall
        kForward,  //!< would forward if the downstream port accepts
    };
    mutable SelfClass selfClass_ = SelfClass::kNone;
    mutable bool selfValid_ = false;

    /**
     * Cross-cycle memo of the whole quiescent() verdict, so the common
     * long-lived idle shapes cost one compare per scheduler query:
     *  - kTimed: idle (or head not yet due) until sleepUntil_; every
     *    state the verdict reads only moves through this cache's entry
     *    points, which clear the memo.
     *  - kBlocked: head due but stalled on a full downstream port;
     *    still stalled as long as the port's departure count has not
     *    moved (arrivals never free space).
     * Cleared by tick(), request(), complete(),
     * invalidateLine() and installLine().
     */
    enum class QMemo : std::uint8_t
    {
        kNone,
        kTimed,
        kBlocked,
    };
    mutable QMemo qMemo_ = QMemo::kNone;
    mutable Cycle sleepUntil_ = 0;
    mutable std::uint64_t blockedPops_ = 0;
    //! Downstream pop counter, resolved once at wiring (null when the
    //! port aggregates or does not track departures).
    const std::uint64_t *downstreamPopAddr_ = nullptr;

    void issuePrefetches();
    void drainWritebacks();

    const Config cfg_;
    PortSlot<CacheReq> downstream_{"downstream"};
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<Cache *> children_;

    unsigned numSets_;
    std::vector<std::vector<Way>> sets_;
    std::vector<Mshr> mshrs_;
    unsigned mshrsInUse_ = 0; //!< live entries in mshrs_ (O(1) busy())
    std::deque<Pending> queue_;
    std::deque<Addr> writebacks_; //!< dirty victim lines awaiting drain
    std::uint64_t popCount_ = 0;  //!< input-queue departures (popCount)

    Cycle now_ = 0;
    std::uint64_t useCounter_ = 0;
    Stats stats_;
};

} // namespace dx::cache

#endif // DX_CACHE_CACHE_HH

/**
 * @file
 * DX100 configuration (paper Table 3 defaults).
 */

#ifndef DX_DX100_CONFIG_HH
#define DX_DX100_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace dx::dx100
{

struct Dx100Config
{
    unsigned numTiles = 32;
    unsigned tileElems = 16 * 1024;
    unsigned numRegs = 32;

    unsigned fillRate = 16;         //!< indices into the Row Table / cycle
    unsigned aluLanes = 16;
    unsigned requestTableSize = 128; //!< stream-unit outstanding lines
    unsigned rowsPerSlice = 64;    //!< BCAM entries per Row Table slice
    unsigned colsPerRow = 8;       //!< SRAM column entries per row
    unsigned respPerCycle = 16;     //!< column responses processed / cycle
    unsigned rangeRate = 16;       //!< range-fuser elements / cycle
    unsigned dispatchWindow = 8;   //!< out-of-order dispatch lookahead

    unsigned spdReadLatency = 20;  //!< LLC-miss-to-SPD access latency
    unsigned spdPortQueue = 64;

    unsigned tlbEntries = 256;
    unsigned tlbMissPenalty = 200; //!< cycles to fetch a PTE

    /** Base of the memory-mapped doorbell/RF region (per instance). */
    Addr mmioBase = Addr{0x10} << 32;
    /** Base of the cacheable scratchpad data region (per instance). */
    Addr spdBase = Addr{0x11} << 32;

    /** SPD lane stride in bytes (each element occupies one u64 lane). */
    static constexpr unsigned kSpdLane = 8;

    Addr
    spdAddr(unsigned tile, unsigned elem) const
    {
        return spdBase +
               (static_cast<Addr>(tile) * tileElems + elem) * kSpdLane;
    }

    Addr spdSize() const
    {
        return static_cast<Addr>(numTiles) * tileElems * kSpdLane;
    }

    // MMIO layout within the doorbell region.
    static constexpr Addr kDoorbellStride = 24; //!< 3 x 64b per core
    Addr doorbellAddr(int core, unsigned word) const
    {
        return mmioBase + static_cast<Addr>(core) * kDoorbellStride +
               word * 8;
    }
    Addr rfBase() const { return mmioBase + 0x1000; }
    Addr rfAddr(unsigned reg) const { return rfBase() + reg * 8; }
};

} // namespace dx::dx100

#endif // DX_DX100_CONFIG_HH

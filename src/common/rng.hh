/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every data generator in the repository seeds one of these so runs are
 * reproducible bit-for-bit across hosts and standard-library versions
 * (std::mt19937 distributions are not portable across implementations).
 */

#ifndef DX_COMMON_RNG_HH
#define DX_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace dx
{

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi). */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace dx

#endif // DX_COMMON_RNG_HH

/**
 * @file
 * Differential bit-equality harness for the quiescence-aware
 * scheduler (see DESIGN.md "Tick scheduler contract").
 *
 * Every paper workload, at reduced scale, runs on the baseline, the
 * DX100 and the DMP systems under both TickPolicy::kNaive (the
 * reference loop) and TickPolicy::kQuiescent (skip + fast-forward).
 * The resulting RunStats must be equal field by field — zero
 * tolerance, doubles included: the scheduler replaces provably no-op
 * ticks with closed-form skipCycles() calls, so it must compute the
 * *same* arithmetic, not merely a close approximation.
 *
 * The field walk goes through DX_RUN_STATS_SCHEMA, so a stat added to
 * the schema is automatically covered here.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr double kTestScale = 0.02;

RunStats
runWith(const WorkloadEntry &entry, SystemConfig cfg,
        TickPolicy policy)
{
    cfg.tickPolicy = policy;
    auto w = entry.make(Scale{kTestScale});
    System sys(cfg);
    w->init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w->makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    const RunStats stats = sys.run();
    EXPECT_TRUE(w->verify(sys))
        << entry.name << " produced wrong results under "
        << (sys.naiveTick() ? "naive" : "quiescent") << " ticking";
    return stats;
}

/**
 * Field-by-field exact comparison via the schema visitor. EXPECT_EQ
 * on each field (rather than one operator== check) so a divergence
 * names the offending stat in the failure message.
 */
void
expectStatsIdentical(const RunStats &naive, const RunStats &sched,
                     const std::string &label)
{
    std::vector<double> a, b;
    std::vector<const char *> names;
    naive.forEachField([&](const char *name, auto v) {
        names.push_back(name);
        a.push_back(static_cast<double>(v));
    });
    sched.forEachField(
        [&](const char *, auto v) { b.push_back(static_cast<double>(v)); });
    ASSERT_EQ(a.size(), RunStats::fieldCount());
    ASSERT_EQ(b.size(), RunStats::fieldCount());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i])
            << label << ": field '" << names[i]
            << "' diverges between naive and quiescent scheduling";
    }
    EXPECT_TRUE(naive == sched) << label;
}

void
checkEquivalence(const WorkloadEntry &entry, const SystemConfig &cfg,
                 const std::string &tag)
{
    const RunStats naive = runWith(entry, cfg, TickPolicy::kNaive);
    const RunStats sched = runWith(entry, cfg, TickPolicy::kQuiescent);
    expectStatsIdentical(naive, sched, entry.name + "/" + tag);
}

class TickEquivalenceTest
    : public ::testing::TestWithParam<const WorkloadEntry *>
{
};

std::vector<const WorkloadEntry *>
allEntries()
{
    std::vector<const WorkloadEntry *> out;
    for (const auto &e : paperWorkloads())
        out.push_back(&e);
    return out;
}

std::string
entryName(const ::testing::TestParamInfo<const WorkloadEntry *> &info)
{
    return info.param->name;
}

} // namespace

TEST_P(TickEquivalenceTest, Baseline)
{
    checkEquivalence(*GetParam(), SystemConfig::baseline(),
                     "baseline");
}

TEST_P(TickEquivalenceTest, Dx100)
{
    checkEquivalence(*GetParam(), SystemConfig::withDx100(), "dx100");
}

TEST_P(TickEquivalenceTest, Dmp)
{
    checkEquivalence(*GetParam(), SystemConfig::withDmp(), "dmp");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TickEquivalenceTest,
                         ::testing::ValuesIn(allEntries()),
                         entryName);

// ---------------------------------------------------------------------
// The all-miss microbench (Fig. 8b/c) is the scheduler's hardest case:
// long DRAM-bound stretches with deep queues in every component. Cover
// the extreme row-buffer-hit points explicitly at a reduced size.
// ---------------------------------------------------------------------

namespace
{

RunStats
runGather(unsigned rbhPercent, SystemConfig cfg, TickPolicy policy)
{
    cfg.tickPolicy = policy;
    DramPatternParams pat;
    pat.rbhPercent = rbhPercent;
    GatherMicro w(GatherMicro::Mode::kFull, 8 * 1024, pat);
    System sys(cfg);
    w.init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w.makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    const RunStats stats = sys.run();
    EXPECT_TRUE(w.verify(sys));
    return stats;
}

} // namespace

TEST(TickEquivalenceMicro, AllMissGather)
{
    for (const bool dx : {false, true}) {
        for (const unsigned rbh : {0u, 100u}) {
            const SystemConfig cfg = dx ? SystemConfig::withDx100()
                                        : SystemConfig::baseline();
            const RunStats naive =
                runGather(rbh, cfg, TickPolicy::kNaive);
            const RunStats sched =
                runGather(rbh, cfg, TickPolicy::kQuiescent);
            expectStatsIdentical(naive, sched,
                                 std::string(dx ? "dx100" : "baseline") +
                                     "/rbh" + std::to_string(rbh));
        }
    }
}

// ---------------------------------------------------------------------
// Termination regression: a run must not end with requests still in
// flight anywhere — caches, DRAM, DX100, or (the historical bug)
// prefetcher queues, which System::run's old allDone() check ignored.
// ---------------------------------------------------------------------

TEST(RunTermination, NothingInFlightAtExit)
{
    for (const TickPolicy policy :
         {TickPolicy::kNaive, TickPolicy::kQuiescent}) {
        for (const bool dmp : {false, true}) {
            SystemConfig cfg =
                dmp ? SystemConfig::withDmp() : SystemConfig::withDx100();
            cfg.tickPolicy = policy;
            GatherMicro w(GatherMicro::Mode::kFull, 4 * 1024);
            System sys(cfg);
            w.init(sys);
            std::vector<std::unique_ptr<cpu::Kernel>> kernels;
            for (unsigned c = 0; c < sys.cores(); ++c) {
                kernels.push_back(
                    w.makeKernel(sys, c, cfg.dx100Instances > 0));
                sys.setKernel(c, kernels.back().get());
            }
            (void)sys.run();
            // run() returned, so every drain condition must hold *now*
            // - not merely "cores done" as the old check had it.
            EXPECT_TRUE(sys.drained());
            EXPECT_TRUE(w.verify(sys));
        }
    }
}

/**
 * @file
 * Functional (golden) model tests: every instruction's semantics against
 * hand-computed expectations, including conditions, multi-level
 * indirection and range fusion.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "common/sim_memory.hh"
#include "dx100/functional.hh"

using namespace dx;
using namespace dx::dx100;

namespace
{

struct FunctionalTest : public ::testing::Test
{
    SimMemory mem;
    SimAllocator alloc;
    Functional fn{mem, 8, 64, 8}; // small tiles for tests

    /** Fill a tile from a vector and set its size. */
    void
    setTile(unsigned t, const std::vector<std::uint64_t> &v)
    {
        auto &tile = fn.tileRef(t);
        for (std::size_t i = 0; i < v.size(); ++i)
            tile.data[i] = v[i];
        tile.size = static_cast<std::uint32_t>(v.size());
    }

    std::vector<std::uint64_t>
    tileVec(unsigned t)
    {
        const auto &tile = fn.tile(t);
        return {tile.data.begin(), tile.data.begin() + tile.size};
    }
};

} // namespace

TEST_F(FunctionalTest, StreamLoadContiguous)
{
    const Addr base = alloc.allocArray<std::uint32_t>(64);
    for (std::uint32_t i = 0; i < 64; ++i)
        mem.write<std::uint32_t>(base + i * 4, i * 10);

    Instruction in;
    in.op = Opcode::kSld;
    in.dtype = DataType::kU32;
    in.td = 0;
    in.base = base;
    in.imm = packStream({0, 16, 1});
    fn.execute(in);

    ASSERT_EQ(fn.tile(0).size, 16u);
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(fn.tile(0).data[i], i * 10);
}

TEST_F(FunctionalTest, StreamLoadStridedAndOffset)
{
    const Addr base = alloc.allocArray<std::uint64_t>(128);
    for (std::uint64_t i = 0; i < 128; ++i)
        mem.write<std::uint64_t>(base + i * 8, i);

    Instruction in;
    in.op = Opcode::kSld;
    in.dtype = DataType::kU64;
    in.td = 1;
    in.base = base;
    in.imm = packStream({5, 10, 3});
    fn.execute(in);

    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(fn.tile(1).data[i], 5 + 3 * i);
}

TEST_F(FunctionalTest, StreamStoreWritesMemory)
{
    const Addr base = alloc.allocArray<std::uint32_t>(32);
    setTile(2, {9, 8, 7, 6});

    Instruction in;
    in.op = Opcode::kSst;
    in.dtype = DataType::kU32;
    in.ts1 = 2;
    in.base = base;
    in.imm = packStream({0, 4, 1});
    fn.execute(in);

    EXPECT_EQ(mem.read<std::uint32_t>(base + 0), 9u);
    EXPECT_EQ(mem.read<std::uint32_t>(base + 12), 6u);
}

TEST_F(FunctionalTest, IndirectLoadGathers)
{
    const Addr a = alloc.allocArray<std::uint32_t>(100);
    for (std::uint32_t i = 0; i < 100; ++i)
        mem.write<std::uint32_t>(a + i * 4, 1000 + i);

    setTile(0, {42, 0, 99, 7});
    Instruction in;
    in.op = Opcode::kIld;
    in.dtype = DataType::kU32;
    in.td = 1;
    in.ts1 = 0;
    in.base = a;
    fn.execute(in);

    EXPECT_EQ(tileVec(1),
              (std::vector<std::uint64_t>{1042, 1000, 1099, 1007}));
}

TEST_F(FunctionalTest, IndirectStoreScatters)
{
    const Addr a = alloc.allocArray<std::uint64_t>(64);
    setTile(0, {3, 60, 5});
    setTile(1, {111, 222, 333});

    Instruction in;
    in.op = Opcode::kIst;
    in.dtype = DataType::kU64;
    in.ts1 = 0;
    in.ts2 = 1;
    in.base = a;
    fn.execute(in);

    EXPECT_EQ(mem.read<std::uint64_t>(a + 3 * 8), 111u);
    EXPECT_EQ(mem.read<std::uint64_t>(a + 60 * 8), 222u);
    EXPECT_EQ(mem.read<std::uint64_t>(a + 5 * 8), 333u);
}

TEST_F(FunctionalTest, IndirectRmwAccumulatesWithDuplicates)
{
    const Addr a = alloc.allocArray<std::uint32_t>(16);
    mem.write<std::uint32_t>(a + 4 * 4, 100);

    setTile(0, {4, 4, 4, 2});
    setTile(1, {1, 2, 3, 9});
    Instruction in;
    in.op = Opcode::kIrmw;
    in.dtype = DataType::kU32;
    in.aluOp = AluOp::kAdd;
    in.ts1 = 0;
    in.ts2 = 1;
    in.base = a;
    fn.execute(in);

    EXPECT_EQ(mem.read<std::uint32_t>(a + 4 * 4), 106u);
    EXPECT_EQ(mem.read<std::uint32_t>(a + 2 * 4), 9u);
}

TEST_F(FunctionalTest, IndirectRmwFloatAdd)
{
    const Addr a = alloc.allocArray<double>(8);
    mem.write<double>(a + 2 * 8, 1.5);

    setTile(0, {2});
    setTile(1, {std::bit_cast<std::uint64_t>(2.25)});
    Instruction in;
    in.op = Opcode::kIrmw;
    in.dtype = DataType::kF64;
    in.aluOp = AluOp::kAdd;
    in.ts1 = 0;
    in.ts2 = 1;
    in.base = a;
    fn.execute(in);

    EXPECT_DOUBLE_EQ(mem.read<double>(a + 2 * 8), 3.75);
}

TEST_F(FunctionalTest, ConditionGatesStoresAndRmws)
{
    const Addr a = alloc.allocArray<std::uint32_t>(8);
    setTile(0, {1, 2, 3});       // indices
    setTile(1, {10, 20, 30});    // values
    setTile(2, {1, 0, 1});       // condition

    Instruction in;
    in.op = Opcode::kIst;
    in.dtype = DataType::kU32;
    in.ts1 = 0;
    in.ts2 = 1;
    in.tc = 2;
    in.base = a;
    fn.execute(in);

    EXPECT_EQ(mem.read<std::uint32_t>(a + 1 * 4), 10u);
    EXPECT_EQ(mem.read<std::uint32_t>(a + 2 * 4), 0u); // skipped
    EXPECT_EQ(mem.read<std::uint32_t>(a + 3 * 4), 30u);
}

TEST_F(FunctionalTest, MultiLevelIndirection)
{
    // A[B[C[i]]]: two chained ILDs.
    const Addr c = alloc.allocArray<std::uint32_t>(4);
    const Addr b = alloc.allocArray<std::uint32_t>(8);
    const Addr a = alloc.allocArray<std::uint32_t>(16);
    const std::uint32_t cv[4] = {3, 1, 0, 2};
    const std::uint32_t bv[8] = {5, 9, 12, 7, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i)
        mem.write<std::uint32_t>(c + i * 4, cv[i]);
    for (int i = 0; i < 8; ++i)
        mem.write<std::uint32_t>(b + i * 4, bv[i]);
    for (std::uint32_t i = 0; i < 16; ++i)
        mem.write<std::uint32_t>(a + i * 4, i * 100);

    Instruction sld;
    sld.op = Opcode::kSld;
    sld.dtype = DataType::kU32;
    sld.td = 0;
    sld.base = c;
    sld.imm = packStream({0, 4, 1});
    fn.execute(sld);

    Instruction ild1;
    ild1.op = Opcode::kIld;
    ild1.dtype = DataType::kU32;
    ild1.td = 1;
    ild1.ts1 = 0;
    ild1.base = b;
    fn.execute(ild1);

    Instruction ild2 = ild1;
    ild2.td = 2;
    ild2.ts1 = 1;
    ild2.base = a;
    fn.execute(ild2);

    // A[B[C[i]]] = (B[C[i]]) * 100 = {700, 900, 500, 1200}.
    EXPECT_EQ(tileVec(2),
              (std::vector<std::uint64_t>{700, 900, 500, 1200}));
}

TEST_F(FunctionalTest, VectorAluAndComparison)
{
    setTile(0, {1, 5, 9});
    setTile(1, {4, 5, 6});

    Instruction add;
    add.op = Opcode::kAluv;
    add.dtype = DataType::kU64;
    add.aluOp = AluOp::kAdd;
    add.td = 2;
    add.ts1 = 0;
    add.ts2 = 1;
    fn.execute(add);
    EXPECT_EQ(tileVec(2), (std::vector<std::uint64_t>{5, 10, 15}));

    Instruction lt = add;
    lt.aluOp = AluOp::kLt;
    lt.td = 3;
    fn.execute(lt);
    EXPECT_EQ(tileVec(3), (std::vector<std::uint64_t>{1, 0, 0}));
}

TEST_F(FunctionalTest, ScalarAluUsesRegisterFile)
{
    setTile(0, {0x12, 0x92, 0xf7});
    fn.writeReg(3, 0xf0);

    Instruction in;
    in.op = Opcode::kAlus;
    in.dtype = DataType::kU64;
    in.aluOp = AluOp::kAnd;
    in.td = 1;
    in.ts1 = 0;
    in.rs1 = 3;
    fn.execute(in);
    EXPECT_EQ(tileVec(1), (std::vector<std::uint64_t>{0x10, 0x90, 0xf0}));
}

TEST_F(FunctionalTest, RangeFusionProducesLoopPairs)
{
    setTile(0, {2, 5, 9});  // lo
    setTile(1, {4, 5, 12}); // hi (middle range empty)

    Instruction in;
    in.op = Opcode::kRng;
    in.td = 2;
    in.td2 = 3;
    in.ts1 = 0;
    in.ts2 = 1;
    in.rs1 = 0;
    in.imm = 0;
    fn.execute(in);

    EXPECT_EQ(tileVec(2), (std::vector<std::uint64_t>{0, 0, 2, 2, 2}));
    EXPECT_EQ(tileVec(3), (std::vector<std::uint64_t>{2, 3, 9, 10, 11}));
    EXPECT_EQ(fn.reg(0), 3u); // consumed all three ranges
}

TEST_F(FunctionalTest, RangeFusionStopsWhenOutputFull)
{
    // Tile capacity is 64 in this fixture; give ranges of 40 each.
    setTile(0, {0, 100});
    setTile(1, {40, 140});

    Instruction in;
    in.op = Opcode::kRng;
    in.td = 2;
    in.td2 = 3;
    in.ts1 = 0;
    in.ts2 = 1;
    in.rs1 = 1;
    in.imm = 0;
    fn.execute(in);

    EXPECT_EQ(fn.tile(2).size, 40u); // second range did not fit
    EXPECT_EQ(fn.reg(1), 1u);

    // Resume from the consumed position.
    in.imm = 1;
    in.rs1 = 2;
    fn.execute(in);
    EXPECT_EQ(fn.tile(2).size, 40u);
    EXPECT_EQ(fn.tile(3).data[0], 100u);
}

TEST_F(FunctionalTest, RandomizedGatherMatchesDirectComputation)
{
    const std::size_t n = 64;
    const Addr a = alloc.allocArray<std::uint64_t>(1024);
    Rng rng(1234);
    for (std::size_t i = 0; i < 1024; ++i)
        mem.write<std::uint64_t>(a + i * 8, rng.next());

    std::vector<std::uint64_t> idx(n);
    for (auto &v : idx)
        v = rng.below(1024);
    setTile(0, idx);

    Instruction in;
    in.op = Opcode::kIld;
    in.dtype = DataType::kU64;
    in.td = 1;
    in.ts1 = 0;
    in.base = a;
    fn.execute(in);

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(fn.tile(1).data[i],
                  mem.read<std::uint64_t>(a + idx[i] * 8));
}

/**
 * @file
 * DX100 behavioural tests at the device level: doorbell protocol,
 * scoreboard hazards and out-of-order dispatch, tile ready bits, SPD
 * coherency invalidation, stream-unit outstanding limits, and the
 * coalescing statistics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "runtime/dx100_api.hh"
#include "sim/system.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

/** Harness: one DX100 system plus helpers to drive it directly. */
struct DxRig
{
    System sys{SystemConfig::withDx100()};
    runtime::Dx100Runtime *rt = sys.runtime(0);
    dx100::Dx100 *dev = sys.dx100(0);

    /** A trivial emitter that delivers MMIO stores immediately. */
    struct DirectEmitter : public cpu::OpEmitter
    {
        dx100::Dx100 *dev;
        SeqNum next = 1;

        SeqNum
        emit(const cpu::MicroOp &op) override
        {
            if (op.kind == cpu::OpKind::kMmioStore)
                dev->mmioWrite(op.addr, op.value, /*coreId=*/0);
            return next++;
        }
    } emitter;

    DxRig() { emitter.dev = dev; }

    /** Tick the device (and DRAM) until idle. */
    void
    drain(Cycle limit = 2'000'000)
    {
        for (Cycle t = 0; t < limit && !dev->idle(); ++t) {
            dev->tick();
            sys.dram().tick();
            sys.llc().tick();
        }
        ASSERT_TRUE(dev->idle());
    }
};

} // namespace

TEST(Dx100Behavior, DoorbellCarriesRealEncodingAndRetires)
{
    DxRig rig;
    SimMemory &mem = rig.sys.memory();
    const Addr src = rig.sys.allocator().alloc(1024 * 4);
    for (unsigned i = 0; i < 1024; ++i)
        mem.write<std::uint32_t>(src + i * 4, i * 3);
    rig.rt->registerRegion(src, 1024 * 4);

    const unsigned tile = rig.rt->allocTile();
    const std::uint64_t tok = rig.rt->sld(
        rig.emitter, 0, runtime::DataType::kU32, src, tile, 0, 1024);

    // Not retired before the timing model runs. (The tile ready bit
    // only drops at *dispatch* — one tick later — which is exactly why
    // waits are instruction-id tokens, not bare ready-bit polls.)
    EXPECT_FALSE(rig.dev->mmioReady(tok, 0));
    rig.dev->tick();
    EXPECT_FALSE(rig.dev->tileReady(tile));
    rig.drain();
    EXPECT_TRUE(rig.dev->mmioReady(tok, 0));
    EXPECT_TRUE(rig.dev->tileReady(tile));

    // The functional mirror saw the data at emission time.
    EXPECT_EQ(rig.rt->spdValue(tile, 7), 21u);
    EXPECT_EQ(rig.rt->tileSize(tile), 1024u);
}

TEST(Dx100Behavior, ScoreboardSerializesRawChains)
{
    DxRig rig;
    SimMemory &mem = rig.sys.memory();
    const std::size_t n = 2048;
    const Addr b = rig.sys.allocator().alloc(n * 4);
    const Addr a = rig.sys.allocator().alloc(n * 4);
    for (std::size_t i = 0; i < n; ++i) {
        mem.write<std::uint32_t>(
            b + i * 4, static_cast<std::uint32_t>((i * 37) % n));
        mem.write<std::uint32_t>(a + i * 4,
                                 static_cast<std::uint32_t>(i + 100));
    }
    rig.rt->registerRegion(b, n * 4);
    rig.rt->registerRegion(a, n * 4);

    const unsigned idx = rig.rt->allocTile();
    const unsigned dat = rig.rt->allocTile();
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, b, idx, 0,
                n);
    const std::uint64_t tok = rig.rt->ild(
        rig.emitter, 0, runtime::DataType::kU32, a, dat, idx);
    rig.drain();
    EXPECT_TRUE(rig.dev->mmioReady(tok, 0));

    // Mirror result equals the gather semantics.
    for (std::size_t i = 0; i < n; i += 97) {
        EXPECT_EQ(rig.rt->spdValue(dat, i),
                  ((i * 37) % n) + 100);
    }
    // Two instructions retired, in dependency order.
    EXPECT_EQ(rig.dev->stats().instructionsRetired.value(), 2u);
}

TEST(Dx100Behavior, IndependentInstructionsDispatchOutOfOrder)
{
    DxRig rig;
    const std::size_t n = 4096;
    const Addr x = rig.sys.allocator().alloc(n * 4);
    const Addr y = rig.sys.allocator().alloc(n * 4);
    rig.rt->registerRegion(x, n * 4);
    rig.rt->registerRegion(y, n * 4);

    const unsigned t1 = rig.rt->allocTile();
    const unsigned t2 = rig.rt->allocTile();
    const unsigned t3 = rig.rt->allocTile();

    // SLD t1; ALU chain on t1 (keeps the ALU unit busy after it);
    // then an *independent* SLD t3 which must overtake the queued ALU
    // consumer thanks to out-of-order dispatch.
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, x, t1, 0, n);
    rig.rt->alus(rig.emitter, 0, runtime::DataType::kU32,
                 runtime::AluOp::kAdd, t2, t1, 5);
    const std::uint64_t tokInd = rig.rt->sld(
        rig.emitter, 0, runtime::DataType::kU32, y, t3, 0, n);
    rig.drain();
    EXPECT_TRUE(rig.dev->mmioReady(tokInd, 0));
    EXPECT_EQ(rig.dev->stats().instructionsRetired.value(), 3u);
}

TEST(Dx100Behavior, CoalescingStatCountsDuplicateColumns)
{
    DxRig rig;
    const std::size_t n = 4096;
    const Addr b = rig.sys.allocator().alloc(n * 4);
    const Addr a = rig.sys.allocator().alloc(1024 * 4);
    SimMemory &mem = rig.sys.memory();
    // All indices hit the same 64 words -> 4 lines.
    for (std::size_t i = 0; i < n; ++i)
        mem.write<std::uint32_t>(b + i * 4,
                                 static_cast<std::uint32_t>(i % 64));
    rig.rt->registerRegion(b, n * 4);
    rig.rt->registerRegion(a, 1024 * 4);

    const unsigned idx = rig.rt->allocTile();
    const unsigned dat = rig.rt->allocTile();
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, b, idx, 0,
                n);
    rig.rt->ild(rig.emitter, 0, runtime::DataType::kU32, a, dat, idx);
    rig.drain();

    EXPECT_EQ(rig.dev->stats().indirectWords.value(), n);
    EXPECT_LE(rig.dev->stats().indirectColumns.value(), 8u);
    EXPECT_GE(rig.dev->stats().coalescingFactor(), 500.0);
}

TEST(Dx100Behavior, ConditionGatedIndirectSkipsMemoryTraffic)
{
    DxRig rig;
    const std::size_t n = 4096;
    const Addr b = rig.sys.allocator().alloc(n * 4);
    const Addr a = rig.sys.allocator().alloc(n * 4);
    SimMemory &mem = rig.sys.memory();
    Rng rng(4);
    for (std::size_t i = 0; i < n; ++i)
        mem.write<std::uint32_t>(
            b + i * 4, static_cast<std::uint32_t>(rng.below(n)));
    rig.rt->registerRegion(b, n * 4);
    rig.rt->registerRegion(a, n * 4);

    const unsigned idx = rig.rt->allocTile();
    const unsigned cond = rig.rt->allocTile();
    const unsigned dat = rig.rt->allocTile();
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, b, idx, 0,
                n);
    // cond = idx < 16 (true for ~0.4% of lanes).
    rig.rt->alus(rig.emitter, 0, runtime::DataType::kU32,
                 runtime::AluOp::kLt, cond, idx, 16);
    rig.rt->ild(rig.emitter, 0, runtime::DataType::kU32, a, dat, idx,
                cond);
    rig.drain();

    // Words processed (post-condition) must be far below n.
    EXPECT_LT(rig.dev->stats().indirectWords.value(), n / 32);
}

TEST(Dx100Behavior, SpdPortServesAndInvalidatesOnRewrite)
{
    DxRig rig;
    const std::size_t n = 1024;
    const Addr src = rig.sys.allocator().alloc(n * 4);
    rig.rt->registerRegion(src, n * 4);
    const unsigned tile = rig.rt->allocTile();
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, src, tile, 0,
                n);
    rig.drain();

    // Fetch an SPD line through the port (as the LLC would).
    struct Sink : public cache::CacheRespSink
    {
        int done = 0;
        void complete(const std::uint64_t &) override { ++done; }
    } sink;
    cache::CacheReq req;
    req.addr = rig.rt->spdAddr(tile, 0);
    req.tag = 1;
    req.sink = &sink;
    ASSERT_TRUE(rig.dev->spdPort().canAccept());
    rig.dev->spdPort().request(req);
    for (int t = 0; t < 200 && sink.done == 0; ++t)
        rig.dev->tick();
    EXPECT_EQ(sink.done, 1);
    EXPECT_EQ(rig.dev->stats().spdLinesServed.value(), 1u);

    // Rewriting the tile must trigger coherency invalidation of the
    // cached SPD line (counted even though no core cached it: the
    // agent reports touched caches; here zero caches held it, but the
    // V-bit bookkeeping must clear without error).
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, src, tile, 0,
                n);
    rig.drain();
    EXPECT_TRUE(rig.dev->tileReady(tile));
}

TEST(Dx100Behavior, StreamUnitBoundsOutstandingRequests)
{
    // A stream of 16K elements = 1024 lines; the request table holds
    // 128 -> the unit must throttle rather than flood the LLC.
    DxRig rig;
    const std::size_t n = 16384;
    const Addr src = rig.sys.allocator().alloc(n * 4);
    rig.rt->registerRegion(src, n * 4);
    const unsigned tile = rig.rt->allocTile();
    rig.rt->sld(rig.emitter, 0, runtime::DataType::kU32, src, tile, 0,
                n);
    rig.drain();
    // All lines eventually moved through the LLC.
    EXPECT_GE(rig.dev->stats().llcReads.value(), n * 4 / kLineBytes);
}

TEST(Dx100Behavior, RangeFuserAndAluUnitsRetire)
{
    DxRig rig;
    const unsigned lo = rig.rt->allocTile();
    const unsigned hi = rig.rt->allocTile();
    const unsigned to = rig.rt->allocTile();
    const unsigned tj = rig.rt->allocTile();

    rig.rt->pokeTile(lo, 0, 5);
    rig.rt->pokeTile(hi, 0, 9);
    rig.rt->pokeTile(lo, 1, 20);
    rig.rt->pokeTile(hi, 1, 22);
    rig.rt->setTileSize(lo, 2);
    rig.rt->setTileSize(hi, 2);

    std::uint32_t consumed = 0;
    rig.rt->rng(rig.emitter, 0, to, tj, lo, hi, 0, &consumed);
    rig.drain();
    EXPECT_EQ(consumed, 2u);
    EXPECT_EQ(rig.rt->tileSize(tj), 6u);
    EXPECT_EQ(rig.rt->spdValue(tj, 0), 5u);
    EXPECT_EQ(rig.rt->spdValue(tj, 4), 20u);
    EXPECT_EQ(rig.rt->spdValue(to, 5), 1u);
}

/**
 * @file
 * Small kernel-building helpers shared by the workload implementations.
 */

#ifndef DX_WORKLOADS_KERNELS_HH
#define DX_WORKLOADS_KERNELS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "cpu/microop.hh"
#include "runtime/dx100_api.hh"

namespace dx::wl
{

/**
 * A kernel that walks an index range, emitting one iteration per
 * emitChunk() call. Subclasses implement emitIteration().
 */
class LoopKernel : public cpu::Kernel
{
  public:
    LoopKernel(std::size_t begin, std::size_t end)
        : i_(begin), end_(end)
    {}

    bool more() const override { return i_ < end_; }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        emitIteration(e, i_);
        ++i_;
    }

  protected:
    virtual void emitIteration(cpu::OpEmitter &e, std::size_t i) = 0;

    std::size_t i_;
    std::size_t end_;
};

/**
 * Double-buffered tile pipeline for DX100 kernels.
 *
 * Walks [begin, end) in tile-sized chunks. For each chunk, emitTile
 * issues the DX100 instruction group into buffer set `buf` and returns
 * the last instruction's wait token; before a buffer set is reused the
 * kernel waits on that token and (optionally) emits the per-element
 * core work that consumes the tile (consumeTile). This is the software
 * pipelining the paper's compiler produces: tile t+1's stream loads
 * overlap tile t's indirect accesses.
 */
class TiledDxKernel : public cpu::Kernel
{
  public:
    using EmitTileFn = std::function<std::uint64_t(
        cpu::OpEmitter &, unsigned buf, std::size_t begin,
        std::uint32_t count)>;
    using ConsumeTileFn = std::function<void(
        cpu::OpEmitter &, unsigned buf, std::size_t begin,
        std::uint32_t count)>;

    TiledDxKernel(runtime::Dx100Runtime &rt, std::size_t begin,
                  std::size_t end, std::uint32_t tileElems,
                  EmitTileFn emitTile, ConsumeTileFn consumeTile = {},
                  unsigned buffers = 2)
        : rt_(rt), pos_(begin), end_(end), tileElems_(tileElems),
          buffers_(buffers), emitTile_(std::move(emitTile)),
          consumeTile_(std::move(consumeTile))
    {}

    bool
    more() const override
    {
        return pos_ < end_ || !pending_.empty();
    }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        if (pos_ < end_) {
            const unsigned buf = tileNo_ % buffers_;
            if (pending_.size() >= buffers_)
                drainOldest(e);
            const auto count = static_cast<std::uint32_t>(
                std::min<std::size_t>(tileElems_, end_ - pos_));
            const std::uint64_t token = emitTile_(e, buf, pos_, count);
            pending_.push_back({token, buf, pos_, count});
            pos_ += count;
            ++tileNo_;
            return;
        }
        drainOldest(e);
    }

  private:
    struct Pending
    {
        std::uint64_t token;
        unsigned buf;
        std::size_t begin;
        std::uint32_t count;
    };

    void
    drainOldest(cpu::OpEmitter &e)
    {
        if (pending_.empty())
            return;
        const Pending p = pending_.front();
        pending_.pop_front();
        rt_.wait(e, p.token);
        if (consumeTile_)
            consumeTile_(e, p.buf, p.begin, p.count);
    }

    runtime::Dx100Runtime &rt_;
    std::size_t pos_;
    std::size_t end_;
    std::uint32_t tileElems_;
    unsigned buffers_;
    unsigned tileNo_ = 0;
    EmitTileFn emitTile_;
    ConsumeTileFn consumeTile_;
    std::deque<Pending> pending_;
};

/** Static-instruction ids used for prefetcher training. Each kernel
 *  assigns small distinct pc values starting at these bases so index
 *  streams and indirect streams are distinguishable. */
namespace pc
{
constexpr std::uint16_t kIndex = 1;   //!< index array loads (B[i])
constexpr std::uint16_t kValue = 2;   //!< value array loads (C[i])
constexpr std::uint16_t kTarget = 3;  //!< indirect target (A[B[i]])
constexpr std::uint16_t kOut = 4;     //!< output stores
constexpr std::uint16_t kSpd = 5;     //!< scratchpad consumption loads
constexpr std::uint16_t kAux = 6;     //!< further streams
} // namespace pc

} // namespace dx::wl

#endif // DX_WORKLOADS_KERNELS_HH

/**
 * @file
 * Prefetcher interface and the per-PC stride prefetcher used by every
 * cache level in the baseline configuration (paper Table 3).
 */

#ifndef DX_CACHE_PREFETCHER_HH
#define DX_CACHE_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/cache_if.hh"
#include "common/types.hh"

namespace dx::cache
{

/** Observes demand traffic at a cache and proposes prefetch lines. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Called for every demand access processed by the cache. */
    virtual void observe(const CacheReq &req, bool miss) = 0;

    /** Pop the next prefetch candidate line; false if none pending. */
    virtual bool nextPrefetch(Addr &line) = 0;

    /**
     * True while prefetch candidates are queued. Part of the cache's
     * quiescent()/drained() contract: a cache with a pending prefetcher
     * is neither quiescent (issuePrefetches would pop) nor drained (a
     * run must not terminate with candidates still queued).
     */
    virtual bool pending() const = 0;
};

/**
 * Classic per-PC stride prefetcher (reference prediction table).
 *
 * Detects constant-stride load streams per static instruction and issues
 * @c degree prefetches @c distance strides ahead once confidence builds.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        unsigned tableSize = 64;
        unsigned degree = 2;     //!< prefetches per trigger
        unsigned distance = 8;   //!< lines (or strides) ahead of demand
        int confidenceThreshold = 2;
        unsigned queueMax = 32;
    };

    StridePrefetcher() : StridePrefetcher(Config{}) {}
    explicit StridePrefetcher(const Config &cfg);

    void observe(const CacheReq &req, bool miss) override;
    bool nextPrefetch(Addr &line) override;
    bool pending() const override { return !queue_.empty(); }

  private:
    struct Entry
    {
        std::uint16_t pc = 0;
        bool valid = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        Addr lastIssued = 0;
    };

    Entry &entryFor(std::uint16_t pc);

    Config cfg_;
    std::vector<Entry> table_;
    std::deque<Addr> queue_;
};

} // namespace dx::cache

#endif // DX_CACHE_PREFETCHER_HH

/**
 * @file
 * Functional backing store for the simulated physical address space.
 *
 * The timing models in this repository are *pure timing*: data values are
 * produced and consumed functionally, eagerly, by the workload kernels and
 * the DX100 runtime at micro-op generation time (see DESIGN.md §4.2).
 * SimMemory is the byte-addressable store they operate on. It is sparse:
 * 64 KiB frames are allocated on first touch.
 */

#ifndef DX_COMMON_SIM_MEMORY_HH
#define DX_COMMON_SIM_MEMORY_HH

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dx
{

class SimMemory
{
  public:
    static constexpr unsigned kFrameShift = 16;
    static constexpr Addr kFrameBytes = Addr{1} << kFrameShift;

    /** Read a trivially-copyable value at @p addr. */
    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T out{};
        readBytes(addr, &out, sizeof(T));
        return out;
    }

    /** Write a trivially-copyable value at @p addr. */
    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(addr, &value, sizeof(T));
    }

    /** Copy @p len bytes out of the simulated memory. */
    void readBytes(Addr addr, void *dst, std::size_t len) const;

    /** Copy @p len bytes into the simulated memory. */
    void writeBytes(Addr addr, const void *src, std::size_t len);

    /** Zero-fill a range (frames are zeroed on allocation anyway). */
    void zero(Addr addr, std::size_t len);

    /** Number of frames currently materialized (for tests/telemetry). */
    std::size_t framesAllocated() const { return frames_.size(); }

  private:
    using Frame = std::vector<std::uint8_t>;

    Frame &frameFor(Addr addr);
    const Frame *frameForConst(Addr addr) const;

    std::unordered_map<Addr, Frame> frames_;
};

/**
 * Bump allocator handing out ranges of the simulated address space.
 *
 * Allocations are aligned to 2 MiB "huge pages" by default, mirroring the
 * paper's assumption that DX100-visible arrays live on huge pages so a
 * small TLB covers them.
 */
class SimAllocator
{
  public:
    static constexpr Addr kHugePage = Addr{2} << 20;

    explicit SimAllocator(Addr base = kHugePage) : next_(base) {}

    /** Allocate @p bytes; returns the base address of the region. */
    Addr
    alloc(Addr bytes, Addr align = kHugePage)
    {
        dx_assert(align && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
        next_ = (next_ + align - 1) & ~(align - 1);
        Addr base = next_;
        next_ += bytes;
        return base;
    }

    /** Allocate an array of @p n elements of type T. */
    template <typename T>
    Addr
    allocArray(std::size_t n)
    {
        return alloc(static_cast<Addr>(n) * sizeof(T));
    }

    /** Total bytes allocated so far (address-space high-water mark). */
    Addr highWater() const { return next_; }

  private:
    Addr next_;
};

/**
 * A typed view of an array inside SimMemory; convenience for generators
 * and kernels. Holds no storage itself.
 */
template <typename T>
class ArrayRef
{
  public:
    ArrayRef() = default;

    ArrayRef(SimMemory *mem, Addr base, std::size_t size)
        : mem_(mem), base_(base), size_(size)
    {}

    /** Allocate a fresh array of @p n elements. */
    static ArrayRef
    make(SimMemory &mem, SimAllocator &alloc, std::size_t n)
    {
        return ArrayRef(&mem, alloc.allocArray<T>(n), n);
    }

    T at(std::size_t i) const { return mem_->read<T>(addrOf(i)); }
    void set(std::size_t i, T v) { mem_->write<T>(addrOf(i), v); }

    Addr addrOf(std::size_t i) const
    {
        return base_ + static_cast<Addr>(i) * sizeof(T);
    }

    Addr base() const { return base_; }
    std::size_t size() const { return size_; }
    Addr bytes() const { return static_cast<Addr>(size_) * sizeof(T); }

  private:
    SimMemory *mem_ = nullptr;
    Addr base_ = 0;
    std::size_t size_ = 0;
};

} // namespace dx

#endif // DX_COMMON_SIM_MEMORY_HH

#include "workloads/nas.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::AluOp;
using runtime::DataType;

namespace
{

void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

} // namespace

// =====================================================================
// IS: A[K[i]] += 1
// =====================================================================

IntegerSort::IntegerSort(Scale s)
    : keys_(s.of(1 << 20)), buckets_(s.of(1 << 23))
{
}

void
IntegerSort::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    k_ = alloc.alloc(keys_ * 4);
    a_ = alloc.alloc(buckets_ * 4);
    Rng rng(2024);
    for (std::size_t i = 0; i < keys_; ++i) {
        mem.write<std::uint32_t>(
            k_ + i * 4, static_cast<std::uint32_t>(rng.below(buckets_)));
    }

    // Constant-1 value array for the DX100 IRMW source tile.
    const std::size_t T =
        sys.runtime(0) ? sys.runtime(0)->tileElems() : 16384;
    ones_ = alloc.alloc(T * 4);
    for (std::size_t i = 0; i < T; ++i)
        mem.write<std::uint32_t>(ones_ + i * 4, 1);

    registerAll(sys, k_, keys_ * 4);
    registerAll(sys, a_, buckets_ * 4);
    registerAll(sys, ones_, T * 4);

    // Prior ranking passes of the full IS touched the histogram.
    sys.warmLlc(a_, buckets_ * 4);
}

namespace
{

class IsBaseKernel : public LoopKernel
{
  public:
    IsBaseKernel(SimMemory &mem, Addr k, Addr a, std::size_t b,
                 std::size_t e)
        : LoopKernel(b, e), mem_(mem), k_(k), a_(a)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto key = mem_.read<std::uint32_t>(k_ + i * 4);
        const SeqNum lk = e.load(k_ + i * 4, 4, pc::kIndex, key);
        const SeqNum calc = e.intOp(1, lk);
        const Addr target = a_ + Addr{key} * 4;
        mem_.write<std::uint32_t>(
            target, mem_.read<std::uint32_t>(target) + 1);
        e.rmw(target, 4, pc::kTarget, calc);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr k_, a_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
IntegerSort::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(keys_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<IsBaseKernel>(sys.memory(), k_, a_,
                                              begin, end);
    }

    auto *rt = sys.runtimeFor(core);
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct State
    {
        unsigned idx[2];
        unsigned ones;
        bool onesLoaded = false;
    };
    auto st = std::make_shared<State>();
    st->idx[0] = rt->allocTile();
    st->idx[1] = rt->allocTile();
    st->ones = rt->allocTile();

    const Addr k = k_, a = a_, ones = ones_;
    auto emitTile = [rt, coreId, st, k, a, ones, T](
                        cpu::OpEmitter &e, unsigned buf,
                        std::size_t tb, std::uint32_t cnt) {
        if (!st->onesLoaded) {
            rt->sld(e, coreId, DataType::kU32, ones, st->ones, 0, T);
            st->onesLoaded = true;
        }
        rt->sld(e, coreId, DataType::kU32, k, st->idx[buf], tb, cnt);
        return rt->irmw(e, coreId, DataType::kU32, AluOp::kAdd, a,
                        st->idx[buf], st->ones);
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                           emitTile);
}

bool
IntegerSort::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    std::vector<std::uint32_t> expect(buckets_, 0);
    for (std::size_t i = 0; i < keys_; ++i)
        ++expect[mem.read<std::uint32_t>(k_ + i * 4)];
    for (std::size_t b = 0; b < buckets_; ++b) {
        if (mem.read<std::uint32_t>(a_ + b * 4) != expect[b])
            return false;
    }
    return true;
}

// =====================================================================
// CG: y = M * x (CSR SpMV)
// =====================================================================

ConjugateGradient::ConjugateGradient(Scale s)
{
    m_ = makeSparseMatrix(
        static_cast<std::uint32_t>(s.of(1 << 16)),
        static_cast<std::uint32_t>(s.of(1 << 20)), 15, 4242);
}

void
ConjugateGradient::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    rowPtr_ = alloc.alloc((m_.rows + 1) * 4);
    colIdx_ = alloc.alloc(m_.colIdx.size() * 4);
    vals_ = alloc.alloc(m_.values.size() * 8);
    x_ = alloc.alloc(m_.cols * 8);
    y_ = alloc.alloc(m_.rows * 8);

    for (std::size_t i = 0; i <= m_.rows; ++i)
        mem.write<std::uint32_t>(rowPtr_ + i * 4, m_.rowPtr[i]);
    for (std::size_t i = 0; i < m_.colIdx.size(); ++i) {
        mem.write<std::uint32_t>(colIdx_ + i * 4, m_.colIdx[i]);
        mem.write<double>(vals_ + i * 8, m_.values[i]);
    }
    Rng rng(77);
    for (std::size_t i = 0; i < m_.cols; ++i)
        mem.write<double>(x_ + i * 8, rng.real());

    registerAll(sys, colIdx_, m_.colIdx.size() * 4);
    registerAll(sys, x_, m_.cols * 8);

    // In the full solver, x was just produced by the preceding vector
    // update, so it enters the SpMV cache-resident (this is what makes
    // DX100's H-bit LLC path live; §3.6).
    sys.warmLlc(x_, m_.cols * 8);
}

namespace
{

/** Baseline SpMV: one matrix row per emitChunk. */
class CgBaseKernel : public LoopKernel
{
  public:
    CgBaseKernel(SimMemory &mem, const CsrMatrix &m, Addr rowPtr,
                 Addr colIdx, Addr vals, Addr x, Addr y, std::size_t b,
                 std::size_t e)
        : LoopKernel(b, e), mem_(mem), m_(m), rowPtr_(rowPtr),
          colIdx_(colIdx), vals_(vals), x_(x), y_(y)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t r) override
    {
        const SeqNum lr0 =
            e.load(rowPtr_ + r * 4, 4, pc::kAux, m_.rowPtr[r]);
        const SeqNum lr1 = e.load(rowPtr_ + (r + 1) * 4, 4, pc::kAux,
                                  m_.rowPtr[r + 1]);
        SeqNum sum = e.fpOp(4, lr0, lr1); // init accumulator

        double acc = 0.0;
        for (std::uint32_t j = m_.rowPtr[r]; j < m_.rowPtr[r + 1];
             ++j) {
            const std::uint32_t col = m_.colIdx[j];
            const SeqNum lc =
                e.load(colIdx_ + Addr{j} * 4, 4, pc::kIndex, col);
            const double v = m_.values[j];
            const SeqNum lv = e.load(vals_ + Addr{j} * 8, 8, pc::kValue);
            const SeqNum calc = e.intOp(1, lc);
            const double xv = mem_.read<double>(x_ + Addr{col} * 8);
            const SeqNum lx = e.load(x_ + Addr{col} * 8, 8, pc::kTarget,
                                     std::bit_cast<std::uint64_t>(xv),
                                     calc);
            const SeqNum mul = e.fpOp(4, lv, lx);
            sum = e.fpOp(4, mul, sum);
            acc += v * xv;
        }
        mem_.write<double>(y_ + r * 8, acc);
        e.store(y_ + r * 8, 8, pc::kOut, sum);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    const CsrMatrix &m_;
    Addr rowPtr_, colIdx_, vals_, x_, y_;
};

/**
 * DX100 SpMV: the j-domain (nonzeros) is tiled; DX100 streams colIdx
 * and gathers x[col] into the scratchpad; the core streams vals[] and
 * the gathered tile, doing the multiply-accumulate and the row stores.
 */
class CgDxKernel : public cpu::Kernel
{
  public:
    CgDxKernel(runtime::Dx100Runtime &rt, int coreId, SimMemory &mem,
               const CsrMatrix &m, Addr colIdx, Addr vals, Addr x,
               Addr y, std::size_t rowBegin, std::size_t rowEnd)
        : rt_(rt), coreId_(coreId), mem_(mem), m_(m), colIdx_(colIdx),
          vals_(vals), x_(x), y_(y), row_(rowBegin), rowEnd_(rowEnd)
    {
        for (int k = 0; k < 2; ++k) {
            idxT_[k] = rt_.allocTile();
            datT_[k] = rt_.allocTile();
        }
        jPos_ = m_.rowPtr[rowBegin];
        jEnd_ = m_.rowPtr[rowEnd];
        tiled_ = std::make_unique<TiledDxKernel>(
            rt_, jPos_, jEnd_, rt_.tileElems(),
            [this](cpu::OpEmitter &e, unsigned buf, std::size_t tb,
                   std::uint32_t cnt) {
                rt_.sld(e, coreId_, DataType::kU32, colIdx_,
                        idxT_[buf], tb, cnt);
                return rt_.ild(e, coreId_, DataType::kF64, x_,
                               datT_[buf], idxT_[buf]);
            },
            [this](cpu::OpEmitter &e, unsigned buf, std::size_t tb,
                   std::uint32_t cnt) {
                consume(e, buf, tb, cnt);
            });
    }

    bool more() const override { return tiled_->more(); }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        tiled_->emitChunk(e);
    }

  private:
    void
    consume(cpu::OpEmitter &e, unsigned buf, std::size_t tb,
            std::uint32_t cnt)
    {
        for (std::uint32_t k = 0; k < cnt; ++k) {
            const std::size_t j = tb + k;
            // Advance row bookkeeping; close finished rows.
            while (row_ < rowEnd_ &&
                   j >= m_.rowPtr[row_ + 1]) {
                closeRow(e);
                ++row_;
            }
            const SeqNum lv =
                e.load(vals_ + Addr{j} * 8, 8, pc::kValue);
            const std::uint64_t xbits =
                rt_.spdValue(datT_[buf], k);
            const SeqNum lx = e.load(rt_.spdAddr(datT_[buf], k), 8,
                                     pc::kSpd, xbits);
            const SeqNum mul = e.fpOp(4, lv, lx);
            sumSeq_ = e.fpOp(4, mul, sumSeq_);
            acc_ += m_.values[j] * std::bit_cast<double>(xbits);
        }
        // Close rows fully consumed at the tile boundary.
        while (row_ < rowEnd_ && tb + cnt >= m_.rowPtr[row_ + 1]) {
            closeRow(e);
            ++row_;
        }
    }

    void
    closeRow(cpu::OpEmitter &e)
    {
        mem_.write<double>(y_ + Addr{row_} * 8, acc_);
        e.store(y_ + Addr{row_} * 8, 8, pc::kOut, sumSeq_);
        e.intOp();
        acc_ = 0.0;
        sumSeq_ = kNoSeq;
    }

    runtime::Dx100Runtime &rt_;
    int coreId_;
    SimMemory &mem_;
    const CsrMatrix &m_;
    Addr colIdx_, vals_, x_, y_;
    std::size_t row_, rowEnd_;
    std::size_t jPos_, jEnd_;
    unsigned idxT_[2], datT_[2];
    double acc_ = 0.0;
    SeqNum sumSeq_ = kNoSeq;
    std::unique_ptr<TiledDxKernel> tiled_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
ConjugateGradient::makeKernel(sim::System &sys, unsigned core,
                              bool dx100)
{
    const auto [begin, end] = coreSlice(m_.rows, core, sys.cores());
    if (!dx100) {
        return std::make_unique<CgBaseKernel>(sys.memory(), m_,
                                              rowPtr_, colIdx_, vals_,
                                              x_, y_, begin, end);
    }
    return std::make_unique<CgDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), sys.memory(),
        m_, colIdx_, vals_, x_, y_, begin, end);
}

bool
ConjugateGradient::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::uint32_t r = 0; r < m_.rows; ++r) {
        double acc = 0.0;
        for (std::uint32_t j = m_.rowPtr[r]; j < m_.rowPtr[r + 1]; ++j)
            acc += m_.values[j] *
                   mem.read<double>(x_ + Addr{m_.colIdx[j]} * 8);
        if (mem.read<double>(y_ + Addr{r} * 8) != acc)
            return false;
    }
    return true;
}

} // namespace dx::wl

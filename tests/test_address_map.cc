/**
 * @file
 * Address map tests: bijectivity, field ranges, interleaving properties.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "mem/address_map.hh"

using namespace dx;
using namespace dx::mem;

namespace
{

class AddressMapOrderTest : public ::testing::TestWithParam<MapOrder>
{
};

} // namespace

TEST_P(AddressMapOrderTest, RoundTripRandomAddresses)
{
    DramGeometry g;
    AddressMap map(g, GetParam());
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const Addr line = lineAlign(rng.below(g.capacity()));
        const DramCoord c = map.decompose(line);
        EXPECT_EQ(map.compose(c), line);
    }
}

TEST_P(AddressMapOrderTest, FieldsWithinGeometry)
{
    DramGeometry g;
    AddressMap map(g, GetParam());
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Addr line = lineAlign(rng.below(g.capacity()));
        const DramCoord c = map.decompose(line);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.rank, g.ranks);
        EXPECT_LT(c.bankGroup, g.bankGroups);
        EXPECT_LT(c.bank, g.banksPerGroup);
        EXPECT_LT(c.row, g.rows);
        EXPECT_LT(c.column, g.linesPerRow());
    }
}

TEST_P(AddressMapOrderTest, DistinctLinesDistinctCoords)
{
    DramGeometry g;
    AddressMap map(g, GetParam());
    std::set<std::tuple<unsigned, unsigned, unsigned, unsigned,
                        unsigned, unsigned>> seen;
    for (Addr line = 0; line < 4096 * kLineBytes; line += kLineBytes) {
        const DramCoord c = map.decompose(line);
        auto key = std::make_tuple(c.channel, c.rank, c.bankGroup,
                                   c.bank, c.row, c.column);
        EXPECT_TRUE(seen.insert(key).second) << "line " << line;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, AddressMapOrderTest,
                         ::testing::Values(MapOrder::kChBgCoBaRo,
                                           MapOrder::kChCoBgBaRo,
                                           MapOrder::kCoChBgBaRo));

TEST(AddressMap, DefaultOrderInterleavesChannelsThenBankGroups)
{
    DramGeometry g; // 2 channels, 4 bank groups
    AddressMap map(g, MapOrder::kChBgCoBaRo);

    // Consecutive lines must alternate channels.
    for (unsigned i = 0; i < 16; ++i) {
        const DramCoord c = map.decompose(Addr{i} * kLineBytes);
        EXPECT_EQ(c.channel, i % 2u);
        EXPECT_EQ(c.bankGroup, (i / 2) % 4u);
    }
}

TEST(AddressMap, DefaultOrderKeepsStreamInRowPerBankGroup)
{
    DramGeometry g;
    AddressMap map(g, MapOrder::kChBgCoBaRo);

    // Lines at stride (channels * bankGroups) hit the same (ch, bg) and
    // advance the column within one row.
    const unsigned stride = g.channels * g.bankGroups;
    DramCoord first = map.decompose(0);
    for (unsigned i = 1; i < g.linesPerRow(); ++i) {
        const DramCoord c =
            map.decompose(Addr{i} * stride * kLineBytes);
        EXPECT_EQ(c.channel, first.channel);
        EXPECT_EQ(c.bankGroup, first.bankGroup);
        EXPECT_EQ(c.row, first.row);
        EXPECT_EQ(c.column, i);
    }
}

TEST(AddressMap, CapacityMatchesGeometry)
{
    DramGeometry g;
    EXPECT_EQ(g.capacity(),
              std::uint64_t{2} * 1 * 16 * (1u << 16) * 8192);
    EXPECT_EQ(g.linesPerRow(), 128u);
    EXPECT_EQ(g.totalBanks(), 32u);
}

/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal simulator bugs (aborts), fatal() for user
 * configuration errors (exit(1)), warn()/inform() for diagnostics.
 *
 * The reporting path is thread-clean: all output is serialized under a
 * process-wide mutex, and a per-thread prefix (ScopedLogPrefix) lets
 * concurrent experiment jobs tag their diagnostics. A worker thread may
 * install ScopedFatalThrow to turn dx_fatal into a catchable FatalError
 * so one failed run does not kill the whole experiment matrix.
 */

#ifndef DX_COMMON_LOGGING_HH
#define DX_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace dx
{

/**
 * Thrown instead of exiting when a ScopedFatalThrow is active on the
 * calling thread (see below). Carries the formatted fatal message.
 */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * While alive, dx_fatal on *this thread* throws FatalError instead of
 * calling exit(1). Used by the parallel experiment runner to isolate a
 * failed run: the job reports its error and the rest of the matrix
 * continues. dx_panic still aborts — a panic is a simulator bug and the
 * process state cannot be trusted.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();
    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

  private:
    bool prev_;
};

/**
 * While alive, every warn/inform/fatal line emitted by *this thread* is
 * prefixed with @p prefix (e.g. "[IS/dx100] "). Nests: the previous
 * prefix is restored on destruction.
 */
class ScopedLogPrefix
{
  public:
    explicit ScopedLogPrefix(std::string prefix);
    ~ScopedLogPrefix();
    ScopedLogPrefix(const ScopedLogPrefix &) = delete;
    ScopedLogPrefix &operator=(const ScopedLogPrefix &) = delete;

  private:
    std::string prev_;
};

namespace detail
{

/** Concatenate a parameter pack into one string via a stringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something happened that is a simulator bug. */
#define dx_panic(...) \
    ::dx::detail::panicImpl(__FILE__, __LINE__, \
                            ::dx::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something unsupported. */
#define dx_fatal(...) \
    ::dx::detail::fatalImpl(__FILE__, __LINE__, \
                            ::dx::detail::concat(__VA_ARGS__))

/** Non-fatal warning printed to stderr. */
#define dx_warn(...) \
    ::dx::detail::warnImpl(::dx::detail::concat(__VA_ARGS__))

/** Informational message printed to stderr. */
#define dx_inform(...) \
    ::dx::detail::informImpl(::dx::detail::concat(__VA_ARGS__))

/** Assert that is active in all build types (cheap checks only). */
#define dx_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            dx_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace dx

#endif // DX_COMMON_LOGGING_HH

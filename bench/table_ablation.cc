/**
 * @file
 * Ablation studies for the design choices called out in DESIGN.md §4,
 * run on the all-miss Gather-Full microbenchmark (worst-case index
 * order, where every mechanism matters):
 *
 *   1. DRAM address-interleaving order (channel/bank-group placement);
 *   2. memory-controller request-buffer depth (the visibility window
 *      the paper argues is too small, §2.1);
 *   3. DX100 Row Table fill rate;
 *   4. Row Table capacity (rows per slice).
 *
 * All sections share one declarative matrix over the single worst-case
 * workload, so the whole sweep parallelizes across --jobs workers.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/run_matrix.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr std::size_t kN = 64 * 1024;
const char kWorkload[] = "allmiss_worst";

const std::vector<mem::MapOrder> kOrders = {
    mem::MapOrder::kChBgCoBaRo, mem::MapOrder::kChCoBgBaRo,
    mem::MapOrder::kCoChBgBaRo};
const std::vector<unsigned> kQueueDepths = {8, 16, 32, 64, 128};
const std::vector<unsigned> kFillRates = {2, 4, 8, 16, 32};
const std::vector<unsigned> kRowsPerSlice = {8, 16, 32, 64, 128};

DramPatternParams
worstPattern()
{
    DramPatternParams p;
    p.rbhPercent = 0;
    p.channelInterleave = false;
    p.bankGroupInterleave = false;
    return p;
}

RunMatrix
ablationMatrix()
{
    RunMatrix m("ablation");
    m.add({kWorkload, "micro",
           [](Scale) -> std::unique_ptr<Workload> {
               return std::make_unique<GatherMicro>(
                   GatherMicro::Mode::kFull, kN, worstPattern());
           },
           /*cacheable=*/false});

    for (auto order : kOrders) {
        SystemConfig bc = SystemConfig::baseline();
        bc.dram.order = order;
        m.addConfig("base_" + mem::to_string(order), bc);
        SystemConfig dc = SystemConfig::withDx100();
        dc.dram.order = order;
        m.addConfig("dx_" + mem::to_string(order), dc);
    }

    for (unsigned q : kQueueDepths) {
        SystemConfig bc = SystemConfig::baseline();
        bc.dram.ctrl.readQueueSize = q;
        bc.dram.ctrl.writeQueueSize = q;
        bc.dram.ctrl.writeHiWatermark = 3 * q / 4;
        bc.dram.ctrl.writeLoWatermark = q / 4;
        m.addConfig("base_q" + std::to_string(q), bc);
        SystemConfig dc = SystemConfig::withDx100();
        dc.dram.ctrl = bc.dram.ctrl;
        m.addConfig("dx_q" + std::to_string(q), dc);
    }

    for (unsigned f : kFillRates) {
        SystemConfig dc = SystemConfig::withDx100();
        dc.dx.fillRate = f;
        m.addConfig("dx_fill" + std::to_string(f), dc);
    }

    for (unsigned rows : kRowsPerSlice) {
        SystemConfig dc = SystemConfig::withDx100();
        dc.dx.rowsPerSlice = rows;
        m.addConfig("dx_rows" + std::to_string(rows), dc);
    }
    return m;
}

const RunStats &
statsOf(const MatrixResult &r, const std::string &tag)
{
    const CellResult &c = r.cell(kWorkload, tag);
    if (!c.ok)
        dx_fatal("ablation cell ", tag, " failed: ", c.error);
    return c.stats;
}

void
formatAblationTables(const MatrixResult &r)
{
    std::printf("--- address interleaving order ---\n");
    std::printf("%-14s %12s %12s %9s %7s\n", "order", "base", "dx100",
                "speedup", "dx bw");
    for (auto order : kOrders) {
        const std::string name = mem::to_string(order);
        const RunStats &b = statsOf(r, "base_" + name);
        const RunStats &d = statsOf(r, "dx_" + name);
        std::printf("%-14s %12llu %12llu %8.2fx %6.1f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(b.cycles),
                    static_cast<unsigned long long>(d.cycles),
                    static_cast<double>(b.cycles) / d.cycles,
                    d.bandwidthUtil * 100);
    }

    std::printf("\n--- request buffer depth (baseline visibility) ---\n");
    std::printf("%-14s %12s %12s %9s\n", "entries", "base", "dx100",
                "speedup");
    for (unsigned q : kQueueDepths) {
        const RunStats &b = statsOf(r, "base_q" + std::to_string(q));
        const RunStats &d = statsOf(r, "dx_q" + std::to_string(q));
        std::printf("%-14u %12llu %12llu %8.2fx\n", q,
                    static_cast<unsigned long long>(b.cycles),
                    static_cast<unsigned long long>(d.cycles),
                    static_cast<double>(b.cycles) / d.cycles);
    }

    std::printf("\n--- DX100 fill rate (indices/cycle) ---\n");
    std::printf("%-14s %12s %7s\n", "fill rate", "dx100", "dx bw");
    for (unsigned f : kFillRates) {
        const RunStats &d = statsOf(r, "dx_fill" + std::to_string(f));
        std::printf("%-14u %12llu %6.1f%%\n", f,
                    static_cast<unsigned long long>(d.cycles),
                    d.bandwidthUtil * 100);
    }

    std::printf("\n--- Row Table rows per slice ---\n");
    std::printf("%-14s %12s %7s\n", "rows/slice", "dx100", "dx bw");
    for (unsigned rows : kRowsPerSlice) {
        const RunStats &d =
            statsOf(r, "dx_rows" + std::to_string(rows));
        std::printf("%-14u %12llu %6.1f%%\n", rows,
                    static_cast<unsigned long long>(d.cycles),
                    d.bandwidthUtil * 100);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Ablations - all-miss gather, worst index order",
                     opt);

    const MatrixResult result = ablationMatrix().run(opt);
    formatAblationTables(result);
    maybeWriteJson(result, "table_ablation", opt);
    return result.failures() == 0 ? 0 : 1;
}

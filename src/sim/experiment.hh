/**
 * @file
 * Shared bench harness: experiment options, schema-driven RunStats
 * serialization (text and JSON) and a concurrency-safe on-disk stats
 * cache so the figure benches that share a run matrix (Fig. 9/10/11
 * use the same 24 simulations) do not re-simulate.
 *
 * The cache is safe against concurrent writers — within one bench
 * (parallel jobs) and across benches sharing bench_cache/ — because
 * entries are written to a temp file and atomically renamed into
 * place, and a miss is re-checked right before simulating.
 */

#ifndef DX_SIM_EXPERIMENT_HH
#define DX_SIM_EXPERIMENT_HH

#include <filesystem>
#include <optional>
#include <string>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace dx::sim
{

struct ExpOptions
{
    double scale = 0.5;      //!< workload scale factor
    bool useCache = true;    //!< reuse cached results when present
    std::string cacheDir = "bench_cache";
    unsigned jobs = 0;       //!< parallel jobs; 0 = hardware_concurrency
    bool json = false;       //!< also emit BENCH_<name>.json

    /**
     * Parse --scale=<f|small|paper> --jobs=<n> --json --no-cache
     * --cache-dir=<d>. Malformed values route through dx_fatal with a
     * usage hint instead of escaping as exceptions.
     */
    static ExpOptions parse(int argc, char **argv);

    /** Effective parallelism: jobs, or hardware_concurrency when 0. */
    unsigned effectiveJobs() const;
};

/** Serialize / parse RunStats (one "key value" pair per line). */
std::string serializeStats(const RunStats &s);
std::optional<RunStats> parseStats(const std::string &text);

/** Render RunStats as a flat JSON object, full double precision. */
std::string statsToJson(const RunStats &s);

/** Cache file for a (workload, config tag, scale) cell. */
std::filesystem::path cachePath(const std::string &cacheDir,
                                const std::string &workload,
                                const std::string &configTag,
                                double scale);

/** Load a cache entry; nullopt if absent, partial or corrupt. */
std::optional<RunStats> loadCachedStats(const std::filesystem::path &p);

/**
 * Store a cache entry: create the cache directory (fatal on failure),
 * write to a unique temp file and atomically rename into place so a
 * concurrent reader never observes a partial entry.
 */
void storeCachedStats(const std::filesystem::path &p, const RunStats &s);

/**
 * Run @p entry on a system built from @p cfg (tagged @p configTag for
 * the cache), verifying the output. Results are cached per
 * (workload, tag, scale).
 */
RunStats runWorkload(const wl::WorkloadEntry &entry,
                     const SystemConfig &cfg,
                     const std::string &configTag,
                     const ExpOptions &opt);

/** Run a concrete Workload instance without caching. */
RunStats runWorkloadOnce(wl::Workload &w, const SystemConfig &cfg);

/** Geometric mean helper for "geomean" rows. */
double geomean(const std::vector<double> &values);

/** Print a header naming the bench and the configuration used. */
void printBenchHeader(const std::string &title, const ExpOptions &opt);

} // namespace dx::sim

#endif // DX_SIM_EXPERIMENT_HH

/**
 * @file
 * Reproduces paper Fig. 12: DX100 vs the DMP-style indirect prefetcher
 * — (a) speedup (paper geomean 2.0x) and (b) bandwidth utilization
 * (paper 3.3x higher for DX100). The dx100 column reuses the same
 * cache entries as the paper_main matrix (identical tag and config).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

RunMatrix
dmpMatrix()
{
    RunMatrix m("dmp_compare");
    m.addWorkloads(wl::paperWorkloads());
    m.addConfig("dmp", SystemConfig::withDmp());
    m.addConfig("dx100", SystemConfig::withDx100());
    return m;
}

void
formatDmpTable(const MatrixResult &r)
{
    std::printf("%-8s %14s %14s %9s | %6s %6s %6s\n", "kernel",
                "dmp cycles", "dx100 cycles", "speedup", "bw.dmp",
                "bw.dx", "ratio");
    std::vector<double> speedups, bwRatios;
    for (const auto &w : r.workloads()) {
        const CellResult &dmp = r.cell(w.name, "dmp");
        const CellResult &dx = r.cell(w.name, "dx100");
        if (!dmp.ok || !dx.ok) {
            std::printf("%-8s %14s\n", w.name.c_str(), "FAILED");
            continue;
        }
        const double speedup =
            static_cast<double>(dmp.stats.cycles) / dx.stats.cycles;
        const double bwR = dx.stats.bandwidthUtil /
                           std::max(dmp.stats.bandwidthUtil, 1e-9);
        speedups.push_back(speedup);
        bwRatios.push_back(bwR);

        std::printf("%-8s %14llu %14llu %8.2fx | %6.3f %6.3f %5.1fx\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(dmp.stats.cycles),
                    static_cast<unsigned long long>(dx.stats.cycles),
                    speedup, dmp.stats.bandwidthUtil,
                    dx.stats.bandwidthUtil, bwR);
    }
    std::printf("%-8s %29s %8.2fx | %12s %6.1fx\n", "geomean",
                "(paper 2.0x)", geomean(speedups), "(paper 3.3x)",
                geomean(bwRatios));
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 12 - DX100 vs DMP indirect prefetcher",
                     opt);

    const MatrixResult result = dmpMatrix().run(opt);
    formatDmpTable(result);
    maybeWriteJson(result, "fig12", opt);
    return result.failures() == 0 ? 0 : 1;
}

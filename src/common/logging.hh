/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal simulator bugs (aborts), fatal() for user
 * configuration errors (exit(1)), warn()/inform() for diagnostics.
 */

#ifndef DX_COMMON_LOGGING_HH
#define DX_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace dx
{

namespace detail
{

/** Concatenate a parameter pack into one string via a stringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something happened that is a simulator bug. */
#define dx_panic(...) \
    ::dx::detail::panicImpl(__FILE__, __LINE__, \
                            ::dx::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something unsupported. */
#define dx_fatal(...) \
    ::dx::detail::fatalImpl(__FILE__, __LINE__, \
                            ::dx::detail::concat(__VA_ARGS__))

/** Non-fatal warning printed to stderr. */
#define dx_warn(...) \
    ::dx::detail::warnImpl(::dx::detail::concat(__VA_ARGS__))

/** Informational message printed to stderr. */
#define dx_inform(...) \
    ::dx::detail::informImpl(::dx::detail::concat(__VA_ARGS__))

/** Assert that is active in all build types (cheap checks only). */
#define dx_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            dx_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace dx

#endif // DX_COMMON_LOGGING_HH

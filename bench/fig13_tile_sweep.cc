/**
 * @file
 * Reproduces paper Fig. 13: DX100 speedup sensitivity to the tile
 * size, 1K -> 32K elements (paper: geomean rises from 1.7x to 2.9x,
 * driven by coalescing and row-buffer hit rate).
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 13 - tile size sensitivity", opt);

    // A representative subset spanning RMW, scatter, gather and range
    // patterns (the full 12 at six tile sizes would take hours).
    const std::vector<std::string> subset = {"IS", "GZZ", "XRAGE",
                                             "PR"};
    const std::vector<unsigned> tiles = {1024, 2048, 4096, 8192,
                                         16384, 32768};

    std::printf("%-8s", "tile");
    for (const auto &name : subset)
        std::printf(" %8s", name.c_str());
    std::printf(" %9s %9s\n", "geomean", "coalesce");

    for (unsigned t : tiles) {
        std::vector<double> speedups;
        double coalesce = 0.0;
        std::printf("%-8u", t);
        for (const auto &name : subset) {
            const WorkloadEntry *entry = findWorkload(name);
            const RunStats base = runWorkload(
                *entry, SystemConfig::baseline(), "baseline", opt);

            SystemConfig cfg = SystemConfig::withDx100();
            cfg.dx.tileElems = t;
            const RunStats dx = runWorkload(
                *entry, cfg, "dx100_tile" + std::to_string(t), opt);

            const double s =
                static_cast<double>(base.cycles) / dx.cycles;
            speedups.push_back(s);
            coalesce += dx.coalescingFactor;
            std::printf(" %7.2fx", s);
        }
        std::printf(" %8.2fx %9.2f\n", geomean(speedups),
                    coalesce / subset.size());
    }
    std::printf("(paper: 1.7x at 1K -> 2.9x at 32K)\n");
    return 0;
}

/**
 * @file
 * Reproduces paper Fig. 8(b,c): all-miss Gather-Full over 64K unique
 * indices arranged to produce controlled baseline row-buffer hit rates
 * and channel / bank-group interleaving. The paper reports DX100
 * speedups from 9.9x (worst index order) down to 1.7x (best), with
 * DX100 bandwidth utilization flat at 82-85% regardless of order.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 8(b,c) - all-miss Gather-Full vs index "
                     "order", opt);

    struct Point
    {
        std::string label;
        DramPatternParams pat;
    };

    std::vector<Point> points;
    for (unsigned rbh : {0u, 25u, 50u, 75u, 100u}) {
        DramPatternParams p;
        p.rbhPercent = rbh;
        p.channelInterleave = false;
        p.bankGroupInterleave = false;
        points.push_back({"RBH" + std::to_string(rbh), p});
    }
    {
        DramPatternParams p;
        p.rbhPercent = 100;
        p.channelInterleave = true;
        p.bankGroupInterleave = false;
        points.push_back({"RBH100+CHI", p});
    }
    {
        DramPatternParams p;
        p.rbhPercent = 100;
        p.channelInterleave = true;
        p.bankGroupInterleave = true;
        points.push_back({"RBH100+CHI+BGI", p});
    }

    const std::size_t n = 64 * 1024;
    std::printf("%-16s %9s | %6s %6s | %6s %6s\n", "index order",
                "speedup", "bw.b", "bw.dx", "rbh.b", "rbh.dx");
    for (const auto &pt : points) {
        GatherMicro base(GatherMicro::Mode::kFull, n, pt.pat);
        const RunStats b =
            runWorkloadOnce(base, SystemConfig::baseline());
        GatherMicro dx(GatherMicro::Mode::kFull, n, pt.pat);
        const RunStats d =
            runWorkloadOnce(dx, SystemConfig::withDx100());

        std::printf("%-16s %8.2fx | %6.3f %6.3f | %6.3f %6.3f\n",
                    pt.label.c_str(),
                    static_cast<double>(b.cycles) / d.cycles,
                    b.bandwidthUtil, d.bandwidthUtil,
                    b.rowBufferHitRate, d.rowBufferHitRate);
    }
    std::printf("(paper: speedup 9.9x at worst order -> 1.7x at best; "
                "DX100 bw flat at 0.82-0.85)\n");
    return 0;
}

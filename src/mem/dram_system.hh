/**
 * @file
 * Multi-channel DRAM system: routes line requests to per-channel FR-FCFS
 * controllers and bridges the core clock domain (3.2 GHz) to the
 * controller clock domain (1.6 GHz for DDR4-3200).
 */

#ifndef DX_MEM_DRAM_SYSTEM_HH
#define DX_MEM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/address_map.hh"
#include "mem/controller.hh"
#include "mem/request.hh"
#include "sim/component.hh"

namespace dx::mem
{

class DramSystem final : public Component
{
  public:
    struct Config
    {
        MemoryController::Config ctrl;
        MapOrder order = MapOrder::kChBgCoBaRo;
        unsigned clockRatio = 2; //!< core cycles per controller cycle
    };

    explicit DramSystem(const Config &cfg);

    const AddressMap &addressMap() const { return map_; }
    const DramGeometry &geometry() const { return cfg_.ctrl.geom; }
    unsigned channels() const { return cfg_.ctrl.geom.channels; }

    /** Channel a byte/line address maps to. */
    unsigned channelOf(Addr addr) const;

    /** True if the owning channel can buffer this request now. */
    bool canAccept(Addr lineAddr, bool write) const;

    /** Sum of the channels' request-buffer departure counts. */
    std::uint64_t dequeueCount() const { return totalDequeues_; }

    /**
     * Stable address of that sum, for per-cycle waiters (see
     * CachePort::popCountAddr): the channels mirror every dequeue
     * into it, so a probe is one load instead of a channel loop.
     */
    const std::uint64_t *dequeueCountAddr() const
    {
        return &totalDequeues_;
    }

    /** Enqueue a line request; canAccept must hold. */
    void access(Addr lineAddr, bool write, Origin origin,
                std::uint64_t tag, MemRespSink *sink);

    /** Advance one core clock cycle. */
    void tick() override;

    /**
     * Advance one core clock cycle, skipping quiescent channels on a
     * controller-clock edge via their closed-form skipCycles instead of
     * ticking them. Observable-state equivalent to tick(). Returns
     * true when no channel had to run (off-phase cycle or all skipped).
     */
    bool tickScheduled();

    /**
     * No channel can act at the next core cycle (the clock-domain
     * analogue of the component quiescent() predicates).
     */
    bool quiescent() const override { return nextEventAt() > now_ + 1; }

    /**
     * Earliest *core* cycle any channel could act, translated from the
     * controller clock domain through the divider phase; kNeverCycle
     * when every channel is idle with no timers running.
     */
    Cycle nextEventAt() const override;

    /**
     * Closed-form advance over @p n core cycles the caller has proven
     * quiescent: folds the divider phase forward and skips the covered
     * controller cycles in every channel.
     */
    void skipCycles(Cycle n) override;

    /** This system's core-domain clock (in sync with System's). */
    Cycle localNow() const override { return now_; }

    /** True when all channels are drained. */
    bool idle() const;

    /** Component drain is the same predicate as idle(). */
    bool drained() const override { return idle(); }

    // Component introspection (system-wide aggregates; the channels
    // register their own per-channel groups as children).
    void registerStats(StatRegistry &reg) const override;

    MemoryController &channel(unsigned i) { return *channels_[i]; }
    const MemoryController &channel(unsigned i) const
    {
        return *channels_[i];
    }

    /** Aggregate data-bus utilization across channels, in [0, 1]. */
    double busUtilization() const;

    /** Aggregate row-buffer hit rate across channels, in [0, 1]. */
    double rowHitRate() const;

    /** Mean request-buffer occupancy as a fraction of capacity. */
    double queueOccupancy() const;

    /** Total lines transferred (reads + writes). */
    std::uint64_t linesTransferred() const;

    /** Peak bandwidth in bytes per core cycle (for utilization math). */
    double peakBytesPerCoreCycle() const;

  private:
    const Config cfg_;
    AddressMap map_;
    std::vector<std::unique_ptr<MemoryController>> channels_;
    std::uint64_t totalDequeues_ = 0; //!< mirror of the channels' sum
    unsigned phase_ = 0; //!< core cycles since last controller tick
    Cycle now_ = 0;      //!< core-domain clock
};

} // namespace dx::mem

#endif // DX_MEM_DRAM_SYSTEM_HH

/**
 * @file
 * Reproduces paper Fig. 12: DX100 vs the DMP-style indirect prefetcher
 * — (a) speedup (paper geomean 2.0x) and (b) bandwidth utilization
 * (paper 3.3x higher for DX100).
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 12 - DX100 vs DMP indirect prefetcher",
                     opt);

    std::printf("%-8s %14s %14s %9s | %6s %6s %6s\n", "kernel",
                "dmp cycles", "dx100 cycles", "speedup", "bw.dmp",
                "bw.dx", "ratio");
    std::vector<double> speedups, bwRatios;
    for (const auto &entry : paperWorkloads()) {
        const RunStats dmp = runWorkload(
            entry, SystemConfig::withDmp(), "dmp", opt);
        const RunStats dx = runWorkload(
            entry, SystemConfig::withDx100(), "dx100", opt);

        const double speedup =
            static_cast<double>(dmp.cycles) / dx.cycles;
        const double bwR =
            dx.bandwidthUtil / std::max(dmp.bandwidthUtil, 1e-9);
        speedups.push_back(speedup);
        bwRatios.push_back(bwR);

        std::printf("%-8s %14llu %14llu %8.2fx | %6.3f %6.3f %5.1fx\n",
                    entry.name.c_str(),
                    static_cast<unsigned long long>(dmp.cycles),
                    static_cast<unsigned long long>(dx.cycles),
                    speedup, dmp.bandwidthUtil, dx.bandwidthUtil,
                    bwR);
    }
    std::printf("%-8s %29s %8.2fx | %12s %6.1fx\n", "geomean",
                "(paper 2.0x)", geomean(speedups), "(paper 3.3x)",
                geomean(bwRatios));
    return 0;
}

#include "mem/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dx::mem
{

MemoryController::MemoryController(const Config &cfg, unsigned channelId)
    : cfg_(cfg), channel_(channelId),
      banks_(cfg.geom.banksPerChannel()),
      nextRefresh_(cfg.timings.tREFI)
{
    readQueue_.reserve(cfg.readQueueSize);
    writeQueue_.reserve(cfg.writeQueueSize);
}

bool
MemoryController::canAccept(bool write) const
{
    return write ? writeQueue_.size() < cfg_.writeQueueSize
                 : readQueue_.size() < cfg_.readQueueSize;
}

unsigned
MemoryController::readSlotsFree() const
{
    return cfg_.readQueueSize - static_cast<unsigned>(readQueue_.size());
}

void
MemoryController::enqueue(const MemRequest &req)
{
    dx_assert(canAccept(req.write), "controller queue overflow");
    dx_assert(req.coord.channel == channel_, "request routed to wrong "
              "channel");
    Entry e;
    e.req = req;
    e.req.enqueued = now_;
    (req.write ? writeQueue_ : readQueue_).push_back(e);
}

bool
MemoryController::idle() const
{
    return readQueue_.empty() && writeQueue_.empty() && pending_.empty();
}

MemoryController::Bank &
MemoryController::bankFor(const DramCoord &c)
{
    return banks_[c.bankInChannel(cfg_.geom)];
}

unsigned
MemoryController::flatBankFor(const DramCoord &c) const
{
    return c.bankInChannel(cfg_.geom);
}

void
MemoryController::deliverResponses()
{
    while (!pending_.empty() && pending_.front().ready <= now_) {
        MemRequest req = pending_.front().req;
        pending_.pop_front();
        if (req.sink)
            req.sink->memResponse(req);
    }
}

void
MemoryController::tick()
{
    ++now_;
    ++stats_.cycles;
    stats_.occupancyAccum += readQueue_.size() + writeQueue_.size();

    deliverResponses();

    if (tryRefresh())
        return;

    // Write-drain hysteresis: enter write mode on the high watermark or
    // when there is nothing else to do; leave on the low watermark once
    // reads are waiting.
    if (!writeMode_) {
        // Read credits guarantee reads a burst of service between
        // write drains even when the write queue is pinned full.
        const bool creditsSpent = readCredit_ == 0 ||
                                  readQueue_.empty();
        if ((creditsSpent &&
             writeQueue_.size() >= cfg_.writeHiWatermark) ||
            (readQueue_.empty() && !writeQueue_.empty())) {
            writeMode_ = true;
            writeBurst_ = 0;
        }
    } else {
        // Leave write mode at the low watermark, or after a bounded
        // burst when reads are waiting (fairness: a producer that
        // refills the write queue as fast as it drains must not
        // starve reads).
        const bool drained =
            writeQueue_.size() <= cfg_.writeLoWatermark;
        const bool burstDone = writeBurst_ >= cfg_.writeBurstMax;
        if (writeQueue_.empty() ||
            ((drained || burstDone) && !readQueue_.empty())) {
            writeMode_ = false;
            readCredit_ = cfg_.writeBurstMax;
        }
    }

    if (writeMode_) {
        tryIssueFrom(writeQueue_, true);
    } else {
        tryIssueFrom(readQueue_, false);
    }
}

bool
MemoryController::tryRefresh()
{
    if (!cfg_.timings.refreshEnabled)
        return false;

    if (!refreshPending_ && now_ >= nextRefresh_)
        refreshPending_ = true;
    if (!refreshPending_)
        return false;

    // Close all open rows, one PRE per cycle, then issue REF once every
    // bank is precharged and its tRP has elapsed.
    bool allClosed = true;
    for (auto &bank : banks_) {
        if (bank.openRow >= 0) {
            allClosed = false;
            if (bank.nextPre <= now_) {
                issuePre(bank);
                return true;
            }
        }
    }
    if (!allClosed)
        return true; // stall issuing demand commands while draining

    Cycle ready = now_;
    for (const auto &bank : banks_)
        ready = std::max(ready, bank.nextAct);
    if (ready > now_)
        return true;

    for (auto &bank : banks_)
        bank.nextAct = now_ + cfg_.timings.tRFC;
    nextRefresh_ += cfg_.timings.tREFI;
    refreshPending_ = false;
    ++stats_.refCommands;
    return true;
}

bool
MemoryController::tryIssueFrom(std::vector<Entry> &queue, bool writes)
{
    if (tryColumn(queue, writes)) {
        if (writes)
            ++writeBurst_;
        else if (readCredit_ > 0)
            --readCredit_;
        return true;
    }
    if (tryActivate(queue))
        return true;
    return tryPrecharge(queue);
}

bool
MemoryController::tryColumn(std::vector<Entry> &queue, bool writes)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        Entry &e = queue[i];
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow != static_cast<std::int64_t>(e.req.coord.row))
            continue;
        const Cycle ready = writes ? bank.nextWr : bank.nextRd;
        if (ready > now_)
            continue;

        if (writes)
            issueWrite(e);
        else
            issueRead(e);

        if (e.neededAct)
            ++stats_.rowMisses;
        else
            ++stats_.rowHits;

        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false;
}

bool
MemoryController::tryActivate(std::vector<Entry> &queue)
{
    for (auto &e : queue) {
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow >= 0)
            continue;
        if (bank.nextAct > now_ || !actAllowedByFaw())
            continue;
        issueAct(bank, e.req.coord.row, e.req.coord.bankGroup);
        e.neededAct = true;
        // Sibling requests to the same (bank, row) become row hits and
        // need no flag; requests to other rows of this bank will conflict.
        return true;
    }
    return false;
}

bool
MemoryController::tryPrecharge(std::vector<Entry> &queue)
{
    for (auto &e : queue) {
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow < 0 ||
            bank.openRow == static_cast<std::int64_t>(e.req.coord.row)) {
            continue;
        }
        if (bank.nextPre > now_)
            continue;
        // FR-FCFS: do not close a row that still has pending hits in
        // the queue currently being served. (Only that queue: letting
        // the idle queue's hits pin rows open deadlocks the drain.)
        if (rowHitPendingFor(queue, bank, flatBankFor(e.req.coord)))
            continue;
        issuePre(bank);
        ++stats_.rowConflicts;
        return true;
    }
    return false;
}

bool
MemoryController::rowHitPendingFor(const std::vector<Entry> &queue,
                                   const Bank &bank,
                                   unsigned flatBank) const
{
    for (const auto &e : queue) {
        if (flatBankFor(e.req.coord) == flatBank &&
            static_cast<std::int64_t>(e.req.coord.row) ==
                bank.openRow) {
            return true;
        }
    }
    return false;
}

bool
MemoryController::actAllowedByFaw() const
{
    return actWindow_.size() < 4 ||
           now_ >= actWindow_.front() + cfg_.timings.tFAW;
}

void
MemoryController::issueAct(Bank &bank, std::uint32_t row,
                           std::uint16_t bankGroup)
{
    const auto &t = cfg_.timings;
    bank.openRow = row;
    bank.nextRd = std::max(bank.nextRd, now_ + t.tRCD);
    bank.nextWr = std::max(bank.nextWr, now_ + t.tRCD);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tRAS);
    bank.nextAct = std::max(bank.nextAct, now_ + t.tRC());

    // tRRD spacing to every other bank, by bank-group affinity.
    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const unsigned gap = (bg == bankGroup) ? t.tRRD_L : t.tRRD_S;
        banks_[b].nextAct = std::max(banks_[b].nextAct, now_ + gap);
    }

    actWindow_.push_back(now_);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
    ++stats_.actCommands;
}

void
MemoryController::issuePre(Bank &bank)
{
    bank.openRow = -1;
    bank.nextAct = std::max(bank.nextAct, now_ + cfg_.timings.tRP);
    ++stats_.preCommands;
}

void
MemoryController::issueRead(Entry &e)
{
    const auto &t = cfg_.timings;
    Bank &bank = bankFor(e.req.coord);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tRTP);

    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const bool sameGroup = bg == e.req.coord.bankGroup;
        const unsigned ccd = sameGroup ? t.tCCD_L : t.tCCD_S;
        banks_[b].nextRd = std::max(banks_[b].nextRd, now_ + ccd);
        banks_[b].nextWr = std::max(banks_[b].nextWr, now_ + t.tRTW);
    }

    stats_.busBusyCycles += t.tBL;
    ++stats_.readsServed;

    e.req.neededAct = e.neededAct;
    pending_.push_back({now_ + t.tCL + t.tBL, e.req});
}

void
MemoryController::issueWrite(Entry &e)
{
    const auto &t = cfg_.timings;
    Bank &bank = bankFor(e.req.coord);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tCWL + t.tBL + t.tWR);

    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const bool sameGroup = bg == e.req.coord.bankGroup;
        const unsigned ccd = sameGroup ? t.tCCD_L : t.tCCD_S;
        const unsigned wtr = sameGroup ? t.tWTR_L : t.tWTR_S;
        banks_[b].nextWr = std::max(banks_[b].nextWr, now_ + ccd);
        banks_[b].nextRd =
            std::max(banks_[b].nextRd, now_ + t.tCWL + t.tBL + wtr);
    }

    stats_.busBusyCycles += t.tBL;
    ++stats_.writesServed;

    // Writes complete (from the requester's view) once issued.
    e.req.neededAct = e.neededAct;
    if (e.req.sink)
        pending_.push_back({now_ + t.tCWL + t.tBL, e.req});
}

} // namespace dx::mem

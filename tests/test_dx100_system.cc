/**
 * @file
 * End-to-end tests: microbenchmark workloads run on the full baseline
 * and DX100 systems; functional results must verify and the headline
 * architectural effects (speedup, row-buffer hit rate, occupancy,
 * instruction reduction) must materialize.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

struct RunResult
{
    RunStats stats;
    bool verified = false;
};

RunResult
runOn(Workload &w, const SystemConfig &cfg)
{
    System sys(cfg);
    w.init(sys);
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned c = 0; c < sys.cores(); ++c) {
        kernels.push_back(
            w.makeKernel(sys, c, cfg.dx100Instances > 0));
        sys.setKernel(c, kernels.back().get());
    }
    RunResult r;
    r.stats = sys.run();
    r.verified = w.verify(sys);
    return r;
}

} // namespace

TEST(EndToEnd, GatherFullCorrectOnBaseline)
{
    GatherMicro w(GatherMicro::Mode::kFull, 1 << 15);
    const RunResult r = runOn(w, SystemConfig::baseline());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.instructions, (1u << 15) * 4);
}

TEST(EndToEnd, GatherFullCorrectOnDx100)
{
    GatherMicro w(GatherMicro::Mode::kFull, 1 << 15);
    const RunResult r = runOn(w, SystemConfig::withDx100());
    EXPECT_TRUE(r.verified);
    // The core's job collapses to doorbells + waits.
    EXPECT_LT(r.stats.instructions, 1u << 13);
    EXPECT_GT(r.stats.dxInstructions, 0u);
}

TEST(EndToEnd, GatherSpdCorrectOnDx100)
{
    GatherMicro w(GatherMicro::Mode::kSpd, 1 << 15);
    const RunResult r = runOn(w, SystemConfig::withDx100());
    EXPECT_TRUE(r.verified);
}

TEST(EndToEnd, RandomGatherDx100Faster)
{
    DramPatternParams pat;
    pat.rbhPercent = 0;
    pat.channelInterleave = false;
    pat.bankGroupInterleave = false;

    GatherMicro wb(GatherMicro::Mode::kFull, 1 << 15, pat);
    const RunResult base = runOn(wb, SystemConfig::baseline());
    ASSERT_TRUE(base.verified);

    GatherMicro wd(GatherMicro::Mode::kFull, 1 << 15, pat);
    const RunResult dx = runOn(wd, SystemConfig::withDx100());
    ASSERT_TRUE(dx.verified);

    const double speedup = static_cast<double>(base.stats.cycles) /
                           dx.stats.cycles;
    EXPECT_GT(speedup, 2.0) << "baseline " << base.stats.toString()
                            << "\ndx100 " << dx.stats.toString();

    // The mechanisms behind the speedup (paper Fig. 8/10).
    EXPECT_GT(dx.stats.rowBufferHitRate,
              base.stats.rowBufferHitRate + 0.2);
    // This micro's loads are independent, so the baseline already has
    // decent MLP; the dramatic occupancy gap (paper Fig. 10c) comes
    // from dependency-chained workloads and is checked in the benches.
    EXPECT_GT(dx.stats.requestBufferOccupancy,
              base.stats.requestBufferOccupancy);
    EXPECT_GT(dx.stats.bandwidthUtil, base.stats.bandwidthUtil * 1.5);
}

TEST(EndToEnd, RmwCorrectAndFasterThanAtomicBaseline)
{
    RmwMicro wb(1 << 15, /*atomic=*/true);
    const RunResult base = runOn(wb, SystemConfig::baseline());
    ASSERT_TRUE(base.verified);

    RmwMicro wd(1 << 15, true);
    const RunResult dx = runOn(wd, SystemConfig::withDx100());
    ASSERT_TRUE(dx.verified);

    const double speedup = static_cast<double>(base.stats.cycles) /
                           dx.stats.cycles;
    EXPECT_GT(speedup, 3.0) << "baseline " << base.stats.toString()
                            << "\ndx100 " << dx.stats.toString();
}

TEST(EndToEnd, RmwNoAtomBaselineCorrectSingleThreadedSlices)
{
    // B[i] = i gives disjoint targets per core, so even the non-atomic
    // baseline is correct here.
    RmwMicro w(1 << 14, /*atomic=*/false);
    const RunResult r = runOn(w, SystemConfig::baseline());
    EXPECT_TRUE(r.verified);
}

TEST(EndToEnd, ScatterCorrectBothWays)
{
    ScatterMicro wb(1 << 14);
    const RunResult base = runOn(wb, SystemConfig::baseline(1));
    EXPECT_TRUE(base.verified);

    ScatterMicro wd(1 << 14);
    const RunResult dx = runOn(wd, SystemConfig::withDx100(1));
    EXPECT_TRUE(dx.verified);
}

TEST(EndToEnd, Dx100ReducesCoreInstructions)
{
    GatherMicro wb(GatherMicro::Mode::kFull, 1 << 15);
    const RunResult base = runOn(wb, SystemConfig::baseline());

    GatherMicro wd(GatherMicro::Mode::kFull, 1 << 15);
    const RunResult dx = runOn(wd, SystemConfig::withDx100());

    EXPECT_GT(static_cast<double>(base.stats.instructions) /
                  dx.stats.instructions,
              2.5);
}

TEST(EndToEnd, Dx100CoalescesDuplicateIndices)
{
    // All-hit streaming indices: 16 words per line => the indirect
    // unit should coalesce ~16 words per DRAM column.
    GatherMicro w(GatherMicro::Mode::kFull, 1 << 15);
    const RunResult r = runOn(w, SystemConfig::withDx100());
    EXPECT_GT(r.stats.coalescingFactor, 8.0);
}

TEST(EndToEnd, DmpSystemRunsGatherCorrectly)
{
    GatherMicro w(GatherMicro::Mode::kFull, 1 << 14);
    const RunResult r = runOn(w, SystemConfig::withDmp());
    EXPECT_TRUE(r.verified);
}

TEST(EndToEnd, DmpHelpsRandomGatherButDx100Wins)
{
    // Cold, scattered indirect loads: DMP should beat the plain
    // baseline by prefetching A[B[i+d]], and DX100 should beat DMP
    // (paper Fig. 12) — DMP hides latency but neither reorders DRAM
    // traffic nor reduces instructions.
    DramPatternParams pat;
    pat.rbhPercent = 0;
    pat.channelInterleave = false;
    pat.bankGroupInterleave = false;

    GatherMicro wb(GatherMicro::Mode::kFull, 1 << 15, pat);
    const RunResult base = runOn(wb, SystemConfig::baseline());
    GatherMicro wp(GatherMicro::Mode::kFull, 1 << 15, pat);
    const RunResult dmp = runOn(wp, SystemConfig::withDmp());
    GatherMicro wd(GatherMicro::Mode::kFull, 1 << 15, pat);
    const RunResult dx = runOn(wd, SystemConfig::withDx100());

    ASSERT_TRUE(dmp.verified);
    EXPECT_LT(dmp.stats.cycles, base.stats.cycles);
    EXPECT_LT(dx.stats.cycles, dmp.stats.cycles);
    // DMP leaves the instruction stream untouched; DX100 shrinks it.
    EXPECT_NEAR(static_cast<double>(dmp.stats.instructions),
                static_cast<double>(base.stats.instructions),
                base.stats.instructions * 0.01);
    EXPECT_LT(dx.stats.instructions, base.stats.instructions / 2);
}

#include "sim/parallel_runner.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"

namespace dx::sim
{

namespace
{

JobResult
executeJob(const Job &job)
{
    // Tag every warn/inform this job emits, and turn dx_fatal into a
    // catchable error so one failed cell cannot kill the matrix.
    ScopedLogPrefix prefix("[" + job.label + "] ");
    ScopedFatalThrow fatalThrows;
    JobResult r;
    try {
        r.stats = job.work();
        r.ok = true;
    } catch (const FatalError &e) {
        r.error = e.what();
    } catch (const std::exception &e) {
        r.error = e.what();
    }
    return r;
}

} // namespace

ParallelRunner::ParallelRunner(unsigned jobs) : workers_(jobs)
{
    if (workers_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers_ = hw > 0 ? hw : 1;
    }
}

std::vector<JobResult>
ParallelRunner::run(const std::vector<Job> &jobs) const
{
    std::vector<JobResult> results(jobs.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            results[i] = executeJob(jobs[i]);
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(workers_, jobs.size()));
    if (n <= 1) {
        worker();
        return results;
    }

    {
        std::vector<std::jthread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
    } // jthread joins on destruction

    return results;
}

} // namespace dx::sim

/**
 * @file
 * A single-channel DDR4 memory controller with an FR-FCFS scheduler.
 *
 * The controller owns a bounded request buffer (32 entries by default,
 * per paper Table 3) and a write buffer with drain watermarks. Every
 * controller cycle it issues at most one DRAM command, chosen
 * first-ready-first-come-first-served: ready column commands to open rows
 * win over row commands; among equals, the oldest request wins. All DDR4
 * bank/bank-group/rank timing constraints from DramTimings are enforced,
 * including tCCD_S/tCCD_L bank-group spacing, tFAW, write-to-read
 * turnaround, and periodic all-bank refresh.
 */

#ifndef DX_MEM_CONTROLLER_HH
#define DX_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/dram_timings.hh"
#include "mem/request.hh"

namespace dx::mem
{

class MemoryController
{
  public:
    struct Config
    {
        DramTimings timings;
        DramGeometry geom;
        unsigned readQueueSize = 32;
        unsigned writeQueueSize = 32;
        unsigned writeHiWatermark = 24;
        unsigned writeLoWatermark = 8;
        unsigned writeBurstMax = 24; //!< writes per drain when reads wait
    };

    struct Stats
    {
        Counter cycles;
        Counter readsServed;
        Counter writesServed;
        Counter rowHits;       //!< column commands needing no ACT
        Counter rowMisses;     //!< column commands that required an ACT
        Counter rowConflicts;  //!< requests that forced a PRE first
        Counter actCommands;
        Counter preCommands;
        Counter refCommands;
        Counter busBusyCycles; //!< data-bus occupancy in controller cycles
        std::uint64_t occupancyAccum = 0; //!< sum of queue sizes per cycle

        double
        rowHitRate() const
        {
            const double total =
                static_cast<double>(rowHits.value() + rowMisses.value());
            return total > 0 ? rowHits.value() / total : 0.0;
        }

        double
        busUtilization() const
        {
            return cycles.value()
                ? static_cast<double>(busBusyCycles.value()) /
                      cycles.value()
                : 0.0;
        }
    };

    MemoryController(const Config &cfg, unsigned channelId);

    /** True if a request of the given type can be enqueued right now. */
    bool canAccept(bool write) const;

    /** Free read-buffer slots (used by DX100's request generator). */
    unsigned readSlotsFree() const;

    /** Enqueue a request; canAccept(write) must be true. */
    void enqueue(const MemRequest &req);

    /** Advance one controller clock cycle. */
    void tick();

    /** Current controller cycle. */
    Cycle now() const { return now_; }

    /** True when both queues and in-flight responses are empty. */
    bool idle() const;

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }
    unsigned channelId() const { return channel_; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Cycle nextAct = 0;
        Cycle nextPre = 0;
        Cycle nextRd = 0;
        Cycle nextWr = 0;
    };

    struct Entry
    {
        MemRequest req;
        bool neededAct = false; //!< an ACT was issued on its behalf
    };

    struct PendingResp
    {
        Cycle ready;
        MemRequest req;
    };

    // Scheduling helpers; each returns true if a command was issued.
    bool tryRefresh();
    bool tryIssueFrom(std::vector<Entry> &queue, bool writes);
    bool tryColumn(std::vector<Entry> &queue, bool writes);
    bool tryActivate(std::vector<Entry> &queue);
    bool tryPrecharge(std::vector<Entry> &queue);

    void issueRead(Entry &e);
    void issueWrite(Entry &e);
    void issueAct(Bank &bank, std::uint32_t row, std::uint16_t bankGroup);
    void issuePre(Bank &bank);

    bool actAllowedByFaw() const;
    bool rowHitPendingFor(const std::vector<Entry> &queue,
                          const Bank &bank, unsigned flatBank) const;

    Bank &bankFor(const DramCoord &c);
    unsigned flatBankFor(const DramCoord &c) const;

    void deliverResponses();

    const Config cfg_;
    const unsigned channel_;
    Cycle now_ = 0;

    std::vector<Bank> banks_;       //!< per (rank, bg, bank) in channel
    std::vector<Entry> readQueue_;
    std::vector<Entry> writeQueue_;
    std::deque<PendingResp> pending_;

    bool writeMode_ = false;
    unsigned writeBurst_ = 0;
    unsigned readCredit_ = 0;
    bool refreshPending_ = false;
    Cycle nextRefresh_;
    std::deque<Cycle> actWindow_;   //!< timestamps of recent ACTs (tFAW)

    Stats stats_;
};

} // namespace dx::mem

#endif // DX_MEM_CONTROLLER_HH

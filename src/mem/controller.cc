#include "mem/controller.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "sim/stat_registry.hh"

namespace dx::mem
{

MemoryController::MemoryController(const Config &cfg, unsigned channelId)
    : Component("ch" + std::to_string(channelId)),
      cfg_(cfg), channel_(channelId),
      banks_(cfg.geom.banksPerChannel()),
      nextRefresh_(cfg.timings.tREFI)
{
    readQueue_.reserve(cfg.readQueueSize);
    writeQueue_.reserve(cfg.writeQueueSize);
}

bool
MemoryController::canAccept(bool write) const
{
    return write ? writeQueue_.size() < cfg_.writeQueueSize
                 : readQueue_.size() < cfg_.readQueueSize;
}

unsigned
MemoryController::readSlotsFree() const
{
    return cfg_.readQueueSize - static_cast<unsigned>(readQueue_.size());
}

void
MemoryController::enqueue(const MemRequest &req)
{
    dx_assert(canAccept(req.write), "controller queue overflow");
    dx_assert(req.coord.channel == channel_, "request routed to wrong "
              "channel");
    Entry e;
    e.req = req;
    e.req.enqueued = now_;
    (req.write ? writeQueue_ : readQueue_).push_back(e);

    // An enqueue only *adds* command candidates, so the cached hint
    // remains a conservative-early bound for everything already
    // queued; fold in a bound for the new entry instead of reingesting
    // both queues. Row-hit pinning is ignored here — it can only delay
    // the entry, and the hint may run early, never late.
    if (eventHintValid_) {
        const Bank &bank = banks_[flatBankFor(req.coord)];
        Cycle ev;
        if (bank.openRow == static_cast<std::int64_t>(req.coord.row))
            ev = req.write ? bank.nextWr : bank.nextRd;
        else if (bank.openRow < 0)
            ev = std::max(bank.nextAct, fawReadyAt());
        else
            ev = bank.nextPre;
        if (wouldToggleWriteMode())
            ev = Cycle{0};
        eventHint_ = std::min(eventHint_, ev);
    }
}

bool
MemoryController::idle() const
{
    return readQueue_.empty() && writeQueue_.empty() && pending_.empty();
}

MemoryController::Bank &
MemoryController::bankFor(const DramCoord &c)
{
    return banks_[c.bankInChannel(cfg_.geom)];
}

unsigned
MemoryController::flatBankFor(const DramCoord &c) const
{
    return c.bankInChannel(cfg_.geom);
}

bool
MemoryController::deliverResponses()
{
    bool delivered = false;
    while (!pending_.empty() && pending_.front().ready <= now_) {
        MemRequest req = pending_.front().req;
        pending_.pop_front();
        if (req.sink)
            req.sink->complete(req);
        delivered = true;
    }
    return delivered;
}

bool
MemoryController::wouldToggleWriteMode() const
{
    if (!writeMode_) {
        // Enter write mode on the high watermark or when there is
        // nothing else to do. Read credits guarantee reads a burst of
        // service between write drains even when the write queue is
        // pinned full.
        const bool creditsSpent = readCredit_ == 0 ||
                                  readQueue_.empty();
        return (creditsSpent &&
                writeQueue_.size() >= cfg_.writeHiWatermark) ||
               (readQueue_.empty() && !writeQueue_.empty());
    }
    // Leave write mode at the low watermark, or after a bounded burst
    // when reads are waiting (fairness: a producer that refills the
    // write queue as fast as it drains must not starve reads).
    const bool drained = writeQueue_.size() <= cfg_.writeLoWatermark;
    const bool burstDone = writeBurst_ >= cfg_.writeBurstMax;
    return writeQueue_.empty() ||
           ((drained || burstDone) && !readQueue_.empty());
}

void
MemoryController::tick()
{
    ++now_;
    ++stats_.cycles;
    stats_.occupancyAccum += readQueue_.size() + writeQueue_.size();

    // The event hint is in absolute cycles, so an unproductive tick
    // (nothing delivered, refreshed, toggled or issued — only the clock
    // and the per-cycle stats advanced) leaves it valid.
    bool productive = deliverResponses();

    if (tryRefresh()) {
        eventHintValid_ = false;
        idleStreak_ = 0;
        return;
    }

    // Write-drain hysteresis (single source of truth with the
    // nextEventAt() hint: see wouldToggleWriteMode).
    if (wouldToggleWriteMode()) {
        if (!writeMode_) {
            writeMode_ = true;
            writeBurst_ = 0;
        } else {
            writeMode_ = false;
            readCredit_ = cfg_.writeBurstMax;
        }
        productive = true;
    }

    if (writeMode_) {
        productive |= tryIssueFrom(writeQueue_, true);
    } else {
        productive |= tryIssueFrom(readQueue_, false);
    }
    // A productive tick moved state the hint depends on. An
    // unproductive tick with an *overdue* hint means the early bound
    // fired spuriously (the hint may run early, never late) — drop it
    // too, or the now_+1 clamp in nextEventAt() would pin the channel
    // awake until the next productive tick.
    if (productive || (eventHintValid_ && eventHint_ <= now_))
        eventHintValid_ = false;
    if (productive)
        idleStreak_ = 0;
    else if (idleStreak_ < 2)
        ++idleStreak_;
}

bool
MemoryController::tryRefresh()
{
    if (!cfg_.timings.refreshEnabled)
        return false;

    if (!refreshPending_ && now_ >= nextRefresh_)
        refreshPending_ = true;
    if (!refreshPending_)
        return false;

    // Close all open rows, one PRE per cycle, then issue REF once every
    // bank is precharged and its tRP has elapsed.
    bool allClosed = true;
    for (auto &bank : banks_) {
        if (bank.openRow >= 0) {
            allClosed = false;
            if (bank.nextPre <= now_) {
                issuePre(bank);
                return true;
            }
        }
    }
    if (!allClosed)
        return true; // stall issuing demand commands while draining

    Cycle ready = now_;
    for (const auto &bank : banks_)
        ready = std::max(ready, bank.nextAct);
    if (ready > now_)
        return true;

    for (auto &bank : banks_)
        bank.nextAct = now_ + cfg_.timings.tRFC;
    nextRefresh_ += cfg_.timings.tREFI;
    refreshPending_ = false;
    ++stats_.refCommands;
    return true;
}

bool
MemoryController::tryIssueFrom(std::vector<Entry> &queue, bool writes)
{
    if (tryColumn(queue, writes)) {
        if (writes)
            ++writeBurst_;
        else if (readCredit_ > 0)
            --readCredit_;
        return true;
    }
    if (tryActivate(queue))
        return true;
    return tryPrecharge(queue);
}

bool
MemoryController::tryColumn(std::vector<Entry> &queue, bool writes)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        Entry &e = queue[i];
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow != static_cast<std::int64_t>(e.req.coord.row))
            continue;
        const Cycle ready = writes ? bank.nextWr : bank.nextRd;
        if (ready > now_)
            continue;

        if (writes)
            issueWrite(e);
        else
            issueRead(e);

        if (e.neededAct)
            ++stats_.rowMisses;
        else
            ++stats_.rowHits;

        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        ++dequeues_; // a waiter upstream may be watching for space
        if (dequeueMirror_)
            ++*dequeueMirror_;
        return true;
    }
    return false;
}

bool
MemoryController::tryActivate(std::vector<Entry> &queue)
{
    for (auto &e : queue) {
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow >= 0)
            continue;
        if (bank.nextAct > now_ || !actAllowedByFaw())
            continue;
        issueAct(bank, e.req.coord.row, e.req.coord.bankGroup);
        e.neededAct = true;
        // Sibling requests to the same (bank, row) become row hits and
        // need no flag; requests to other rows of this bank will conflict.
        return true;
    }
    return false;
}

bool
MemoryController::tryPrecharge(std::vector<Entry> &queue)
{
    for (auto &e : queue) {
        Bank &bank = bankFor(e.req.coord);
        if (bank.openRow < 0 ||
            bank.openRow == static_cast<std::int64_t>(e.req.coord.row)) {
            continue;
        }
        if (bank.nextPre > now_)
            continue;
        // FR-FCFS: do not close a row that still has pending hits in
        // the queue currently being served. (Only that queue: letting
        // the idle queue's hits pin rows open deadlocks the drain.)
        if (rowHitPendingFor(queue, bank, flatBankFor(e.req.coord)))
            continue;
        issuePre(bank);
        ++stats_.rowConflicts;
        return true;
    }
    return false;
}

bool
MemoryController::rowHitPendingFor(const std::vector<Entry> &queue,
                                   const Bank &bank,
                                   unsigned flatBank) const
{
    for (const auto &e : queue) {
        if (flatBankFor(e.req.coord) == flatBank &&
            static_cast<std::int64_t>(e.req.coord.row) ==
                bank.openRow) {
            return true;
        }
    }
    return false;
}

bool
MemoryController::actAllowedByFaw() const
{
    return actWindow_.size() < 4 ||
           now_ >= actWindow_.front() + cfg_.timings.tFAW;
}

void
MemoryController::issueAct(Bank &bank, std::uint32_t row,
                           std::uint16_t bankGroup)
{
    const auto &t = cfg_.timings;
    bank.openRow = row;
    bank.nextRd = std::max(bank.nextRd, now_ + t.tRCD);
    bank.nextWr = std::max(bank.nextWr, now_ + t.tRCD);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tRAS);
    bank.nextAct = std::max(bank.nextAct, now_ + t.tRC());

    // tRRD spacing to every other bank, by bank-group affinity.
    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const unsigned gap = (bg == bankGroup) ? t.tRRD_L : t.tRRD_S;
        banks_[b].nextAct = std::max(banks_[b].nextAct, now_ + gap);
    }

    actWindow_.push_back(now_);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
    ++stats_.actCommands;
}

void
MemoryController::issuePre(Bank &bank)
{
    bank.openRow = -1;
    bank.nextAct = std::max(bank.nextAct, now_ + cfg_.timings.tRP);
    ++stats_.preCommands;
}

void
MemoryController::issueRead(Entry &e)
{
    const auto &t = cfg_.timings;
    Bank &bank = bankFor(e.req.coord);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tRTP);

    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const bool sameGroup = bg == e.req.coord.bankGroup;
        const unsigned ccd = sameGroup ? t.tCCD_L : t.tCCD_S;
        banks_[b].nextRd = std::max(banks_[b].nextRd, now_ + ccd);
        banks_[b].nextWr = std::max(banks_[b].nextWr, now_ + t.tRTW);
    }

    stats_.busBusyCycles += t.tBL;
    ++stats_.readsServed;

    e.req.neededAct = e.neededAct;
    pending_.push_back({now_ + t.tCL + t.tBL, e.req});
}

void
MemoryController::issueWrite(Entry &e)
{
    const auto &t = cfg_.timings;
    Bank &bank = bankFor(e.req.coord);
    bank.nextPre = std::max(bank.nextPre, now_ + t.tCWL + t.tBL + t.tWR);

    const unsigned perGroup = cfg_.geom.banksPerGroup;
    for (unsigned b = 0; b < banks_.size(); ++b) {
        const unsigned bg = (b / perGroup) % cfg_.geom.bankGroups;
        const bool sameGroup = bg == e.req.coord.bankGroup;
        const unsigned ccd = sameGroup ? t.tCCD_L : t.tCCD_S;
        const unsigned wtr = sameGroup ? t.tWTR_L : t.tWTR_S;
        banks_[b].nextWr = std::max(banks_[b].nextWr, now_ + ccd);
        banks_[b].nextRd =
            std::max(banks_[b].nextRd, now_ + t.tCWL + t.tBL + wtr);
    }

    stats_.busBusyCycles += t.tBL;
    ++stats_.writesServed;

    // Writes complete (from the requester's view) once issued.
    e.req.neededAct = e.neededAct;
    if (e.req.sink)
        pending_.push_back({now_ + t.tCWL + t.tBL, e.req});
}

Cycle
MemoryController::fawReadyAt() const
{
    return actWindow_.size() < 4
               ? Cycle{0}
               : actWindow_.front() + cfg_.timings.tFAW;
}

Cycle
MemoryController::earliestCommandAt() const
{
    const std::vector<Entry> &q = writeMode_ ? writeQueue_ : readQueue_;
    Cycle ev = kNeverCycle;

    // Banks whose open row has a pending hit in the served queue must
    // not be precharged from under it (mirrors tryPrecharge); the hit
    // entry itself contributes the candidate for that bank.
    std::uint64_t hitMask = 0;
    const bool maskOk = banks_.size() <= 64;
    for (const auto &e : q) {
        const unsigned flat = flatBankFor(e.req.coord);
        if (maskOk &&
            banks_[flat].openRow ==
                static_cast<std::int64_t>(e.req.coord.row)) {
            hitMask |= std::uint64_t{1} << flat;
        }
    }

    for (const auto &e : q) {
        const unsigned flat = flatBankFor(e.req.coord);
        const Bank &bank = banks_[flat];
        if (bank.openRow ==
            static_cast<std::int64_t>(e.req.coord.row)) {
            ev = std::min(ev, writeMode_ ? bank.nextWr : bank.nextRd);
        } else if (bank.openRow < 0) {
            ev = std::min(ev, std::max(bank.nextAct, fawReadyAt()));
        } else {
            const bool pinned =
                maskOk ? ((hitMask >> flat) & 1) != 0
                       : rowHitPendingFor(q, bank, flat);
            if (!pinned)
                ev = std::min(ev, bank.nextPre);
        }
    }
    return ev;
}

Cycle
MemoryController::computeEventHint() const
{
    Cycle ev = kNeverCycle;
    if (!pending_.empty())
        ev = std::min(ev, pending_.front().ready);
    if (cfg_.timings.refreshEnabled)
        ev = std::min(ev, refreshPending_ ? Cycle{0} : nextRefresh_);
    if (wouldToggleWriteMode())
        ev = Cycle{0};
    return std::min(ev, earliestCommandAt());
}

void
MemoryController::refreshEventHint() const
{
    eventHint_ = computeEventHint();
    eventHintValid_ = true;
}

void
MemoryController::registerStats(StatRegistry &reg) const
{
    auto g = reg.group(path());
    g.counter("cycles", stats_.cycles);
    g.counter("readsServed", stats_.readsServed);
    g.counter("writesServed", stats_.writesServed);
    g.counter("rowHits", stats_.rowHits);
    g.counter("rowMisses", stats_.rowMisses);
    g.counter("rowConflicts", stats_.rowConflicts);
    g.counter("actCommands", stats_.actCommands);
    g.counter("preCommands", stats_.preCommands);
    g.counter("refCommands", stats_.refCommands);
    g.counter("busBusyCycles", stats_.busBusyCycles);
    g.value("occupancyAccum", stats_.occupancyAccum);
    g.gauge("rowHitRate", [this] { return stats_.rowHitRate(); });
    g.gauge("busUtilization",
            [this] { return stats_.busUtilization(); });
}

} // namespace dx::mem

/**
 * @file
 * Lightweight named statistics.
 *
 * Components own Counter / Average members and register them with a
 * StatGroup so run harnesses can dump everything by name. The accessors
 * are trivially inlined; updating a stat is a single add.
 */

#ifndef DX_COMMON_STATS_HH
#define DX_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dx
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates a sum and a sample count; reports their mean. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t samples() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A flat name -> value map used to report a finished run. Values are
 * doubles; integral counters are converted on insertion.
 */
class StatDump
{
  public:
    void
    add(std::string name, double value)
    {
        entries_.emplace_back(std::move(name), value);
    }

    /** Look up a stat; panics if absent (tests rely on presence). */
    double get(const std::string &name) const;

    /** True if the stat exists. */
    bool has(const std::string &name) const;

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace dx

#endif // DX_COMMON_STATS_HH

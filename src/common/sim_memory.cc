#include "common/sim_memory.hh"

#include <algorithm>

namespace dx
{

SimMemory::Frame &
SimMemory::frameFor(Addr addr)
{
    const Addr key = addr >> kFrameShift;
    auto it = frames_.find(key);
    if (it == frames_.end()) {
        it = frames_.emplace(key, Frame(kFrameBytes, 0)).first;
    }
    return it->second;
}

const SimMemory::Frame *
SimMemory::frameForConst(Addr addr) const
{
    const Addr key = addr >> kFrameShift;
    auto it = frames_.find(key);
    return it == frames_.end() ? nullptr : &it->second;
}

void
SimMemory::readBytes(Addr addr, void *dst, std::size_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const Addr off = addr & (kFrameBytes - 1);
        const std::size_t chunk =
            std::min<std::size_t>(len, kFrameBytes - off);
        const Frame *f = frameForConst(addr);
        if (f) {
            std::memcpy(out, f->data() + off, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        out += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
SimMemory::writeBytes(Addr addr, const void *src, std::size_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const Addr off = addr & (kFrameBytes - 1);
        const std::size_t chunk =
            std::min<std::size_t>(len, kFrameBytes - off);
        Frame &f = frameFor(addr);
        std::memcpy(f.data() + off, in, chunk);
        in += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
SimMemory::zero(Addr addr, std::size_t len)
{
    while (len > 0) {
        const Addr off = addr & (kFrameBytes - 1);
        const std::size_t chunk =
            std::min<std::size_t>(len, kFrameBytes - off);
        Frame &f = frameFor(addr);
        std::memset(f.data() + off, 0, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace dx

/**
 * @file
 * Reproduces paper Fig. 8(a): all-hit microbenchmarks with streaming
 * indices (B[i] = i). Paper speedups: Gather-SPD 1.2x, Gather-Full
 * 3.2x, RMW vs atomic baseline 17.8x, RMW vs non-atomic 3.7x, Scatter
 * 6.6x (single-core configs).
 */

#include <cstdio>
#include <memory>

#include "sim/experiment.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

double
speedupOf(Workload &base, Workload &dx, const SystemConfig &baseCfg,
          const SystemConfig &dxCfg)
{
    const RunStats b = runWorkloadOnce(base, baseCfg);
    const RunStats d = runWorkloadOnce(dx, dxCfg);
    return static_cast<double>(b.cycles) / d.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 8(a) - all-hit microbenchmarks", opt);

    const auto n = static_cast<std::size_t>(1 << 18);

    std::printf("%-12s %9s %9s\n", "kernel", "speedup", "paper");

    {
        GatherMicro b(GatherMicro::Mode::kSpd, n);
        GatherMicro d(GatherMicro::Mode::kSpd, n);
        std::printf("%-12s %8.2fx %9s\n", "Gather-SPD",
                    speedupOf(b, d, SystemConfig::baseline(),
                              SystemConfig::withDx100()),
                    "1.2x");
    }
    {
        GatherMicro b(GatherMicro::Mode::kFull, n);
        GatherMicro d(GatherMicro::Mode::kFull, n);
        std::printf("%-12s %8.2fx %9s\n", "Gather-Full",
                    speedupOf(b, d, SystemConfig::baseline(),
                              SystemConfig::withDx100()),
                    "3.2x");
    }
    {
        RmwMicro b(n, /*atomic=*/true);
        RmwMicro d(n, true);
        std::printf("%-12s %8.2fx %9s\n", "RMW-Atomic",
                    speedupOf(b, d, SystemConfig::baseline(),
                              SystemConfig::withDx100()),
                    "17.8x");
    }
    {
        RmwMicro b(n, /*atomic=*/false);
        RmwMicro d(n, false);
        std::printf("%-12s %8.2fx %9s\n", "RMW-NoAtom",
                    speedupOf(b, d, SystemConfig::baseline(),
                              SystemConfig::withDx100()),
                    "3.7x");
    }
    {
        // Scatter cannot be parallelized safely: 1-core configs, with
        // the paper's 4MB/2MB LLC split.
        SystemConfig bc = SystemConfig::baseline(1);
        bc.llc.sizeBytes = 4 * 1024 * 1024;
        bc.llc.assoc = 16;
        SystemConfig dc = SystemConfig::withDx100(1);
        dc.llc.sizeBytes = 2 * 1024 * 1024;
        dc.llc.assoc = 16;
        ScatterMicro b(n, /*streaming=*/true);
        ScatterMicro d(n, true);
        std::printf("%-12s %8.2fx %9s\n", "Scatter",
                    speedupOf(b, d, bc, dc), "6.6x");
    }
    return 0;
}

/**
 * @file
 * Quickstart: offload a bulk gather (C[i] = A[B[i]]) to DX100.
 *
 * Shows the full flow a user of this library follows:
 *   1. build a simulated system with a DX100 instance,
 *   2. allocate and initialize arrays in the simulated memory,
 *   3. write a kernel that drives the DX100 runtime API
 *      (SLD -> ILD -> SST per tile, double-buffered),
 *   4. run to completion and read the architectural statistics.
 */

#include <cstdio>
#include <memory>

#include "common/rng.hh"
#include "sim/system.hh"
#include "workloads/kernels.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;
using runtime::DataType;

int
main()
{
    // 1. A 4-core system with one DX100 instance (paper Table 3).
    System sys(SystemConfig::withDx100());
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    // 2. Arrays: A (data), B (indices), C (output).
    const std::size_t n = 1 << 16;
    const Addr a = alloc.alloc(n * 4);
    const Addr b = alloc.alloc(n * 4);
    const Addr c = alloc.alloc(n * 4);

    Rng rng(42);
    for (std::size_t i = 0; i < n; ++i) {
        mem.write<std::uint32_t>(a + i * 4,
                                 static_cast<std::uint32_t>(i * 3));
        mem.write<std::uint32_t>(
            b + i * 4, static_cast<std::uint32_t>(rng.below(n)));
    }

    // Transfer page-table entries for the regions DX100 will touch.
    sys.runtime(0)->registerRegion(a, n * 4);
    sys.runtime(0)->registerRegion(b, n * 4);
    sys.runtime(0)->registerRegion(c, n * 4);

    // 3. One kernel per core; each offloads its slice tile by tile.
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
    for (unsigned core = 0; core < sys.cores(); ++core) {
        auto *rt = sys.runtimeFor(core);
        const auto [begin, end] = wl::coreSlice(n, core, sys.cores());

        // Two buffer sets per core for software pipelining.
        auto tiles = std::make_shared<std::array<unsigned, 4>>();
        for (auto &t : *tiles)
            t = rt->allocTile();

        auto emitTile = [rt, core, tiles, a, b, c](
                            cpu::OpEmitter &e, unsigned buf,
                            std::size_t tb, std::uint32_t cnt) {
            const unsigned idxT = (*tiles)[buf * 2];
            const unsigned datT = (*tiles)[buf * 2 + 1];
            rt->sld(e, static_cast<int>(core), DataType::kU32, b,
                    idxT, tb, cnt);
            rt->ild(e, static_cast<int>(core), DataType::kU32, a,
                    datT, idxT);
            return rt->sst(e, static_cast<int>(core), DataType::kU32,
                           c, datT, tb, cnt);
        };
        kernels.push_back(std::make_unique<wl::TiledDxKernel>(
            *rt, begin, end, rt->tileElems(), emitTile));
        sys.setKernel(core, kernels.back().get());
    }

    // 4. Run and report.
    const RunStats stats = sys.run();

    bool correct = true;
    for (std::size_t i = 0; i < n && correct; ++i) {
        const auto idx = mem.read<std::uint32_t>(b + i * 4);
        correct = mem.read<std::uint32_t>(c + i * 4) ==
                  mem.read<std::uint32_t>(a + Addr{idx} * 4);
    }

    std::printf("gathered %zu elements: %s\n", n,
                correct ? "CORRECT" : "WRONG");
    std::printf("cycles                 %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("core instructions      %llu\n",
                static_cast<unsigned long long>(stats.instructions));
    std::printf("DX100 instructions     %llu\n",
                static_cast<unsigned long long>(stats.dxInstructions));
    std::printf("DRAM bus utilization   %.1f%%\n",
                stats.bandwidthUtil * 100.0);
    std::printf("row-buffer hit rate    %.1f%%\n",
                stats.rowBufferHitRate * 100.0);
    std::printf("words per DRAM column  %.2f (coalescing)\n",
                stats.coalescingFactor);
    return correct ? 0 : 1;
}

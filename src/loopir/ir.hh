/**
 * @file
 * A miniature loop-level IR standing in for the paper's MLIR/Polygeist
 * pipeline (§4.2).
 *
 * Programs are single parallel loops over [lo, hi) whose statements
 * store (or read-modify-write) an expression into an array element,
 * optionally guarded by a condition. Expressions combine the induction
 * variable, constants, array references (arbitrary nesting = arbitrary
 * indirection depth) and binary ALU ops — exactly the pattern family
 * of paper Table 1.
 */

#ifndef DX_LOOPIR_IR_HH
#define DX_LOOPIR_IR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dx100/isa.hh"

namespace dx::loopir
{

using dx100::AluOp;
using dx100::DataType;

/** An array known to the program (name, simulated base, type). */
struct Array
{
    std::string name;
    Addr base = 0;
    DataType type = DataType::kU32;
    std::size_t size = 0;
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr
{
    enum class Kind
    {
        kIndVar, //!< the loop induction variable i
        kConst,  //!< integer constant
        kRef,    //!< array[index] — kids[0] is the index expression
        kBin,    //!< kids[0] op kids[1]
    };

    Kind kind = Kind::kIndVar;
    int array = -1;              //!< kRef: index into Program::arrays
    std::uint64_t constant = 0;  //!< kConst
    AluOp op = AluOp::kNone;     //!< kBin
    std::vector<ExprPtr> kids;

    // -- factory helpers -------------------------------------------------

    static ExprPtr
    indVar()
    {
        auto e = std::make_shared<Expr>();
        e->kind = Kind::kIndVar;
        return e;
    }

    static ExprPtr
    cnst(std::uint64_t v)
    {
        auto e = std::make_shared<Expr>();
        e->kind = Kind::kConst;
        e->constant = v;
        return e;
    }

    static ExprPtr
    ref(int array, ExprPtr index)
    {
        auto e = std::make_shared<Expr>();
        e->kind = Kind::kRef;
        e->array = array;
        e->kids.push_back(std::move(index));
        return e;
    }

    static ExprPtr
    bin(AluOp op, ExprPtr a, ExprPtr b)
    {
        auto e = std::make_shared<Expr>();
        e->kind = Kind::kBin;
        e->op = op;
        e->kids.push_back(std::move(a));
        e->kids.push_back(std::move(b));
        return e;
    }
};

/** target[index] = value  |  target[index] op= value, guarded by cond. */
struct Stmt
{
    enum class Kind
    {
        kStore,
        kRmw,
    };

    Kind kind = Kind::kStore;
    int array = -1;
    ExprPtr index;
    ExprPtr value;
    ExprPtr cond;            //!< may be null (unconditional)
    AluOp rmwOp = AluOp::kAdd;
};

struct Program
{
    std::vector<Array> arrays;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::vector<Stmt> body;

    int
    addArray(std::string name, Addr base, DataType type,
             std::size_t size)
    {
        arrays.push_back({std::move(name), base, type, size});
        return static_cast<int>(arrays.size()) - 1;
    }
};

} // namespace dx::loopir

#endif // DX_LOOPIR_IR_HH

/**
 * @file
 * Domain example: graph analytics (the paper's motivating GAP suite).
 *
 * Runs one PageRank iteration on a uniform random graph three ways —
 * multicore baseline, baseline + DMP indirect prefetcher, and DX100 —
 * and prints a side-by-side architectural comparison. This is the
 * experiment class behind paper Figs. 9-12, at example scale.
 */

#include <cstdio>
#include <memory>

#include "sim/experiment.hh"
#include "workloads/gap.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

RunStats
run(const SystemConfig &cfg, const char *label)
{
    PageRank w{Scale{0.1}};
    std::printf("running %-10s ...\n", label);
    return runWorkloadOnce(w, cfg);
}

} // namespace

int
main()
{
    const RunStats base = run(SystemConfig::baseline(), "baseline");
    const RunStats dmp = run(SystemConfig::withDmp(), "DMP");
    const RunStats dx = run(SystemConfig::withDx100(), "DX100");

    std::printf("\n%-24s %12s %12s %12s\n", "PageRank (1 iteration)",
                "baseline", "DMP", "DX100");
    std::printf("%-24s %12llu %12llu %12llu\n", "cycles",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(dmp.cycles),
                static_cast<unsigned long long>(dx.cycles));
    std::printf("%-24s %12s %11.2fx %11.2fx\n", "speedup", "1.00x",
                static_cast<double>(base.cycles) / dmp.cycles,
                static_cast<double>(base.cycles) / dx.cycles);
    std::printf("%-24s %11.1f%% %11.1f%% %11.1f%%\n",
                "DRAM bus utilization", base.bandwidthUtil * 100,
                dmp.bandwidthUtil * 100, dx.bandwidthUtil * 100);
    std::printf("%-24s %11.1f%% %11.1f%% %11.1f%%\n",
                "row-buffer hit rate", base.rowBufferHitRate * 100,
                dmp.rowBufferHitRate * 100,
                dx.rowBufferHitRate * 100);
    std::printf("%-24s %12llu %12llu %12llu\n", "core instructions",
                static_cast<unsigned long long>(base.instructions),
                static_cast<unsigned long long>(dmp.instructions),
                static_cast<unsigned long long>(dx.instructions));
    std::printf("\nWhy DX100 wins here: the scattered newScore[E[j]]\n"
                "updates need atomic RMWs on the cores (fence-\n"
                "serialized), while DX100 reorders them into row-\n"
                "buffer-friendly bulk IRMWs with exclusive access.\n");
    return 0;
}

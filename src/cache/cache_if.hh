/**
 * @file
 * Request/response interfaces between cache levels and memory-side ports.
 */

#ifndef DX_CACHE_CACHE_IF_HH
#define DX_CACHE_CACHE_IF_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/request.hh"

namespace dx::cache
{

/** Receives line-granularity completions from a cache or port. */
class CacheRespSink
{
  public:
    virtual ~CacheRespSink() = default;
    virtual void cacheResponse(std::uint64_t tag) = 0;
};

/** One request into a cache level (or a memory-side port). */
struct CacheReq
{
    Addr addr = 0;            //!< raw byte address
    bool write = false;
    bool fullLine = false;    //!< whole-line write: no fetch-on-miss
    mem::Origin origin = mem::Origin::kCpuDemand;
    std::uint16_t pc = 0;     //!< static instruction id (prefetch training)
    std::uint64_t value = 0;  //!< loaded value (indirect-prefetch training)
    std::uint64_t tag = 0;    //!< requester-defined cookie
    CacheRespSink *sink = nullptr;
};

/** Anything a cache can send misses to (a lower cache, DRAM, DX100). */
class CachePort
{
  public:
    virtual ~CachePort() = default;
    virtual bool portCanAccept() const = 0;

    /**
     * Request-specific admission: ports that multiplex resources by
     * address (the DRAM adapter's per-channel queues) override this so
     * one busy resource does not starve traffic headed elsewhere.
     */
    virtual bool
    portCanAcceptReq(const CacheReq &req) const
    {
        (void)req;
        return portCanAccept();
    }

    virtual void portRequest(const CacheReq &req) = 0;
};

} // namespace dx::cache

#endif // DX_CACHE_CACHE_IF_HH

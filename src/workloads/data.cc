#include "workloads/data.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace dx::wl
{

CsrGraph
makeUniformGraph(std::uint32_t nodes, unsigned degree,
                 std::uint64_t seed)
{
    Rng rng(seed);
    CsrGraph g;
    g.nodes = nodes;
    g.rowPtr.resize(nodes + 1);

    // Degree varies uniformly in [degree/2, 3*degree/2].
    std::vector<std::uint32_t> deg(nodes);
    for (auto &d : deg) {
        d = static_cast<std::uint32_t>(
            rng.range(degree / 2, degree + degree / 2 + 1));
    }
    g.rowPtr[0] = 0;
    for (std::uint32_t v = 0; v < nodes; ++v)
        g.rowPtr[v + 1] = g.rowPtr[v] + deg[v];

    g.col.resize(g.rowPtr.back());
    for (auto &c : g.col)
        c = static_cast<std::uint32_t>(rng.below(nodes));
    return g;
}

CsrMatrix
makeSparseMatrix(std::uint32_t rows, std::uint32_t cols,
                 unsigned nnzPerRow, std::uint64_t seed)
{
    Rng rng(seed);
    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.resize(rows + 1);
    m.rowPtr[0] = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
        const auto nnz = static_cast<std::uint32_t>(
            rng.range(nnzPerRow / 2, nnzPerRow + nnzPerRow / 2 + 1));
        m.rowPtr[r + 1] = m.rowPtr[r] + nnz;
    }
    m.colIdx.resize(m.rowPtr.back());
    m.values.resize(m.rowPtr.back());
    for (std::size_t i = 0; i < m.colIdx.size(); ++i) {
        m.colIdx[i] = static_cast<std::uint32_t>(rng.below(cols));
        m.values[i] = rng.real() * 2.0 - 1.0;
    }
    return m;
}

std::vector<std::uint32_t>
makeMeshMap(std::uint32_t n, std::uint32_t spread, std::uint64_t seed)
{
    // Identity-based mapping with symmetric jitter of +-spread,
    // yielding an average index distance around spread/2 (limited
    // spatial locality, like the paper's UME dataset).
    Rng rng(seed);
    std::vector<std::uint32_t> map(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::int64_t jitter =
            static_cast<std::int64_t>(rng.below(2 * spread + 1)) -
            spread;
        std::int64_t t = static_cast<std::int64_t>(i) + jitter;
        if (t < 0)
            t += n;
        map[i] = static_cast<std::uint32_t>(t % n);
    }
    return map;
}

MeshRanges
makeMeshRanges(std::uint32_t outer, unsigned minLen, unsigned maxLen,
               std::uint64_t seed)
{
    Rng rng(seed);
    MeshRanges r;
    r.lo.resize(outer);
    r.hi.resize(outer);
    std::uint32_t pos = 0;
    for (std::uint32_t i = 0; i < outer; ++i) {
        const auto len = static_cast<std::uint32_t>(
            rng.range(minLen, maxLen + 1));
        r.lo[i] = pos;
        pos += len;
        r.hi[i] = pos;
    }
    r.innerTotal = pos;
    return r;
}

std::vector<std::uint32_t>
makeXragePattern(std::uint32_t n, std::uint32_t domain,
                 std::uint64_t seed)
{
    // AMR-block sweep: runs of quasi-strided indices within a block,
    // large jumps between blocks, with ~10% of blocks revisited.
    Rng rng(seed);
    std::vector<std::uint32_t> pattern;
    pattern.reserve(n);

    std::vector<std::uint32_t> recentBlocks;
    while (pattern.size() < n) {
        std::uint32_t blockBase;
        if (!recentBlocks.empty() && rng.below(50) == 0) {
            blockBase = recentBlocks[rng.below(recentBlocks.size())];
        } else {
            blockBase = static_cast<std::uint32_t>(
                rng.below(domain > 4096 ? domain - 4096 : 1));
            recentBlocks.push_back(blockBase);
            if (recentBlocks.size() > 4)
                recentBlocks.erase(recentBlocks.begin());
        }
        const auto runLen = static_cast<std::uint32_t>(
            rng.range(8, 64));
        const auto stride = static_cast<std::uint32_t>(
            rng.range(1, 9));
        std::uint32_t idx = blockBase;
        for (std::uint32_t k = 0;
             k < runLen && pattern.size() < n; ++k) {
            pattern.push_back(idx % domain);
            idx += stride;
            // frequent intra-block gaps (refined subcells)
            if (rng.below(8) == 0)
                idx += static_cast<std::uint32_t>(rng.below(256));
        }
    }
    return pattern;
}

std::vector<std::uint32_t>
makeTupleKeys(std::uint32_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> keys(n);
    for (auto &k : keys)
        k = static_cast<std::uint32_t>(rng.next());
    return keys;
}

std::vector<std::uint32_t>
makeDramPattern(std::uint32_t n, const DramPatternParams &p,
                const mem::AddressMap &map, std::uint64_t seed)
{
    (void)seed; // fully deterministic construction
    const mem::DramGeometry &g = map.geometry();
    const unsigned banks = g.totalBanks();
    const std::uint32_t perBank = n / banks;
    dx_assert(perBank * banks == n, "n must divide across banks");
    dx_assert(perBank <= p.rowsPerBank * g.linesPerRow(),
              "pattern exceeds row capacity");

    struct BankState
    {
        std::uint16_t ch, bg, ba;
        unsigned row = 0;
        std::vector<std::uint32_t> colPos; //!< per-row column cursor
        int err = 0;
        std::uint32_t emitted = 0;
        bool started = false;
    };

    // Group banks: interleaved dimensions rotate inside one group;
    // non-interleaved dimensions become sequential outer groups.
    std::vector<std::vector<BankState>> groups;
    const unsigned chGroups = p.channelInterleave ? 1 : g.channels;
    // Without bank-group interleaving, consecutive accesses stay on a
    // single *bank* for a whole burst (banks are sub-resources of the
    // group), which is what serializes the baseline on tRC/tCCD_L.
    const unsigned bgGroups = p.bankGroupInterleave
                                  ? 1
                                  : g.bankGroups * g.banksPerGroup;
    groups.resize(chGroups * bgGroups);
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        for (unsigned bg = 0; bg < g.bankGroups; ++bg) {
            for (unsigned ba = 0; ba < g.banksPerGroup; ++ba) {
                const unsigned gi =
                    (p.channelInterleave ? 0 : ch) * bgGroups +
                    (p.bankGroupInterleave
                         ? 0
                         : bg * g.banksPerGroup + ba);
                BankState b;
                b.ch = static_cast<std::uint16_t>(ch);
                b.bg = static_cast<std::uint16_t>(bg);
                b.ba = static_cast<std::uint16_t>(ba);
                b.colPos.assign(p.rowsPerBank, 0);
                groups[gi].push_back(b);
            }
        }
    }

    std::vector<std::uint32_t> out;
    out.reserve(n);

    // Non-interleaved dimensions are emitted in short bursts: within a
    // burst, consecutive accesses stay in one channel / bank group
    // (defeating the memory controller's interleaving window), but a
    // DX100 tile still spans the whole DRAM system.
    constexpr unsigned kBurst = 64;
    bool anyRemaining = true;
    std::vector<std::size_t> rrOfGroup(groups.size(), 0);
    std::size_t groupCursor = 0;
    while (anyRemaining) {
        anyRemaining = false;
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            auto &group = groups[(groupCursor + gi) % groups.size()];
            auto &rr = rrOfGroup[(groupCursor + gi) % groups.size()];
            unsigned emittedInBurst = 0;
            bool groupRemaining = true;
            while (groupRemaining && emittedInBurst < kBurst) {
                groupRemaining = false;
                for (std::size_t k = 0;
                     k < group.size() && emittedInBurst < kBurst;
                     ++k) {
                BankState &b = group[(rr + k) % group.size()];
                if (b.emitted >= perBank)
                    continue;
                groupRemaining = true;
                anyRemaining = true;
                ++emittedInBurst;

                // Row policy: Bresenham accumulator approximates the
                // requested hit percentage; a "hit" consumes the next
                // column of the current row, a "miss" moves to the
                // next row (cyclically).
                bool stay = false;
                if (b.started) {
                    b.err += static_cast<int>(p.rbhPercent);
                    if (b.err >= 100) {
                        b.err -= 100;
                        stay = true;
                    }
                }
                if (!b.started || !stay ||
                    b.colPos[b.row] >= g.linesPerRow()) {
                    // advance to the next row with room
                    for (unsigned t = 0; t < p.rowsPerBank; ++t) {
                        b.row = (b.row + 1) % p.rowsPerBank;
                        if (b.colPos[b.row] < g.linesPerRow())
                            break;
                    }
                    b.started = true;
                }

                mem::DramCoord c;
                c.channel = b.ch;
                c.bankGroup = b.bg;
                c.bank = b.ba;
                c.rank = 0;
                c.row = b.row;
                c.column = b.colPos[b.row]++;
                const Addr addr = map.compose(c);
                out.push_back(static_cast<std::uint32_t>(addr / 4));
                ++b.emitted;
                }
                ++rr;
            }
        }
        ++groupCursor;
    }
    dx_assert(out.size() == n, "pattern generation under-produced");
    return out;
}

} // namespace dx::wl

/**
 * @file
 * Compiler example: the paper's §4.2 pipeline on the miniature loop
 * IR. Builds the legacy loop
 *
 *     for i in [0, n): if (D[i] >= 3) A[B[i]] += V[i]
 *
 * as IR, runs the analysis / legality / codegen passes, prints the
 * generated DX100 packed-op plan, executes the *same IR* both as a
 * baseline micro-op stream and as the compiled DX100 program on the
 * simulator, and cross-checks both against the IR interpreter. Also
 * demonstrates a legality rejection (the Gauss-Seidel aliasing case).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "loopir/exec.hh"
#include "loopir/passes.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::loopir;
using namespace dx::sim;

namespace
{

Program
buildProgram(SimAllocator &alloc, std::size_t n)
{
    Program prog;
    prog.lo = 0;
    prog.hi = n;
    const int a = prog.addArray("A", alloc.alloc(n * 4),
                                DataType::kU32, n);
    const int b = prog.addArray("B", alloc.alloc(n * 4),
                                DataType::kU32, n);
    const int v = prog.addArray("V", alloc.alloc(n * 4),
                                DataType::kU32, n);
    const int d = prog.addArray("D", alloc.alloc(n * 4),
                                DataType::kU32, n);

    Stmt s;
    s.kind = Stmt::Kind::kRmw;
    s.rmwOp = AluOp::kAdd;
    s.array = a;
    s.index = Expr::ref(b, Expr::indVar());
    s.value = Expr::ref(v, Expr::indVar());
    s.cond = Expr::bin(AluOp::kGe, Expr::ref(d, Expr::indVar()),
                       Expr::cnst(3));
    prog.body.push_back(s);
    return prog;
}

void
initData(const Program &prog, SimMemory &mem, std::size_t n)
{
    Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
        mem.write<std::uint32_t>(prog.arrays[0].base + i * 4, 0);
        mem.write<std::uint32_t>(
            prog.arrays[1].base + i * 4,
            static_cast<std::uint32_t>(rng.below(n)));
        mem.write<std::uint32_t>(
            prog.arrays[2].base + i * 4,
            static_cast<std::uint32_t>(rng.below(100)));
        mem.write<std::uint32_t>(
            prog.arrays[3].base + i * 4,
            static_cast<std::uint32_t>(rng.below(8)));
    }
}

std::vector<std::uint32_t>
snapshotA(const Program &prog, SimMemory &mem, std::size_t n)
{
    std::vector<std::uint32_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = mem.read<std::uint32_t>(prog.arrays[0].base + i * 4);
    return out;
}

} // namespace

int
main()
{
    const std::size_t n = 1 << 15;

    // ---- reference: interpret the IR on a private memory ------------
    SimMemory refMem;
    SimAllocator refAlloc;
    Program refProg = buildProgram(refAlloc, n);
    initData(refProg, refMem, n);
    interpret(refProg, refMem);
    const auto expect = snapshotA(refProg, refMem, n);

    // ---- compile ------------------------------------------------------
    const CodegenResult cg = lowerToDx100(refProg);
    if (!cg.ok) {
        std::printf("codegen failed: %s\n", cg.reason.c_str());
        return 1;
    }
    std::printf("generated DX100 program:\n%s\n",
                planToString(refProg, cg.plan).c_str());

    // ---- run the compiled plan on the simulated DX100 system ---------
    System dxSys(SystemConfig::withDx100());
    Program dxProg = buildProgram(dxSys.allocator(), n);
    initData(dxProg, dxSys.memory(), n);
    for (const auto &arr : dxProg.arrays) {
        dxSys.runtime(0)->registerRegion(arr.base,
                                         arr.size * 4);
    }
    std::vector<std::unique_ptr<cpu::Kernel>> dxKernels;
    for (unsigned c = 0; c < dxSys.cores(); ++c) {
        const auto [bg, en] = wl::coreSlice(n, c, dxSys.cores());
        dxKernels.push_back(makeDx100Kernel(
            dxProg, cg.plan, *dxSys.runtimeFor(c),
            static_cast<int>(c), bg, en));
        dxSys.setKernel(c, dxKernels.back().get());
    }
    const RunStats dxStats = dxSys.run();
    const bool dxOk = snapshotA(dxProg, dxSys.memory(), n) == expect;

    // ---- run the un-offloaded loop on the baseline system ------------
    System baseSys(SystemConfig::baseline());
    Program baseProg = buildProgram(baseSys.allocator(), n);
    initData(baseProg, baseSys.memory(), n);
    std::vector<std::unique_ptr<cpu::Kernel>> baseKernels;
    for (unsigned c = 0; c < baseSys.cores(); ++c) {
        const auto [bg, en] = wl::coreSlice(n, c, baseSys.cores());
        baseKernels.push_back(makeBaselineKernel(
            baseProg, baseSys.memory(), bg, en));
        baseSys.setKernel(c, baseKernels.back().get());
    }
    const RunStats baseStats = baseSys.run();
    const bool baseOk =
        snapshotA(baseProg, baseSys.memory(), n) == expect;

    std::printf("baseline: %llu cycles (%s)\n",
                static_cast<unsigned long long>(baseStats.cycles),
                baseOk ? "correct" : "WRONG");
    std::printf("dx100:    %llu cycles (%s), speedup %.2fx\n",
                static_cast<unsigned long long>(dxStats.cycles),
                dxOk ? "correct" : "WRONG",
                static_cast<double>(baseStats.cycles) /
                    dxStats.cycles);

    // ---- legality: the Gauss-Seidel rejection -------------------------
    Program illegal = buildProgram(refAlloc, n);
    // A[B[i]] += A[C[i]]-style aliasing: value loads from the stored
    // array.
    illegal.body[0].value = Expr::ref(0, Expr::indVar());
    const Legality verdict = checkLegality(illegal);
    std::printf("\nlegality check on aliasing loop: %s (%s)\n",
                verdict.ok ? "ACCEPTED (bug!)" : "rejected",
                verdict.reason.c_str());

    return (dxOk && baseOk && !verdict.ok) ? 0 : 1;
}

/**
 * @file
 * google-benchmark component microbenchmarks: raw throughput of the
 * substrates (address map, DRAM controller, row table, ISA codec,
 * functional model). These measure the *simulator's* own speed and
 * component behaviour, complementing the figure benches.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "common/sim_memory.hh"
#include "dx100/functional.hh"
#include "dx100/row_table.hh"
#include "mem/dram_system.hh"

using namespace dx;

static void
BM_AddressMapDecompose(benchmark::State &state)
{
    mem::AddressMap map{mem::DramGeometry{},
                        mem::MapOrder::kChBgCoBaRo};
    Rng rng(1);
    Addr a = 0;
    for (auto _ : state) {
        a += 0x40;
        benchmark::DoNotOptimize(map.decompose(a & 0xffffffff));
    }
}
BENCHMARK(BM_AddressMapDecompose);

static void
BM_IsaEncodeDecode(benchmark::State &state)
{
    dx100::Instruction in;
    in.op = dx100::Opcode::kIrmw;
    in.dtype = dx100::DataType::kF64;
    in.aluOp = dx100::AluOp::kAdd;
    in.ts1 = 3;
    in.ts2 = 4;
    in.base = 0xdeadbeef000;
    for (auto _ : state) {
        auto words = dx100::encode(in);
        benchmark::DoNotOptimize(dx100::decode(words));
    }
}
BENCHMARK(BM_IsaEncodeDecode);

static void
BM_RowTableInsertDrain(benchmark::State &state)
{
    dx100::IndirectTables::Config cfg;
    dx100::IndirectTables t(cfg);
    Rng rng(7);
    for (auto _ : state) {
        state.PauseTiming();
        t.reset(4096);
        state.ResumeTiming();
        std::uint32_t inserted = 0;
        while (inserted < 4096) {
            const auto res = t.insert(
                static_cast<unsigned>(rng.below(cfg.slices)),
                static_cast<std::uint32_t>(rng.below(1024)),
                static_cast<std::uint32_t>(rng.below(128)), 0,
                inserted);
            if (res ==
                dx100::IndirectTables::InsertResult::kSliceFull) {
                for (unsigned s = 0; s < cfg.slices; ++s) {
                    if (auto req = t.nextRequest(s)) {
                        t.completeColumn(
                            req->handle,
                            [](std::uint32_t, std::uint16_t) {});
                    }
                }
                continue;
            }
            ++inserted;
        }
        while (!t.drained()) {
            for (unsigned s = 0; s < cfg.slices; ++s) {
                if (auto req = t.nextRequest(s)) {
                    t.completeColumn(
                        req->handle,
                        [](std::uint32_t, std::uint16_t) {});
                }
            }
        }
    }
}
BENCHMARK(BM_RowTableInsertDrain);

static void
BM_DramControllerRandomReads(benchmark::State &state)
{
    // Simulated-cycles-per-second of the FR-FCFS controller under
    // saturating random read traffic.
    mem::DramSystem::Config cfg;
    cfg.ctrl.timings.refreshEnabled = false;
    for (auto _ : state) {
        state.PauseTiming();
        mem::DramSystem dram(cfg);
        Rng rng(3);
        state.ResumeTiming();
        for (int t = 0; t < 4096; ++t) {
            const Addr a = lineAlign(rng.below(64u << 20));
            if (dram.canAccept(a, false))
                dram.access(a, false, mem::Origin::kCpuDemand, 0,
                            nullptr);
            dram.tick();
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DramControllerRandomReads);

static void
BM_FunctionalGather(benchmark::State &state)
{
    SimMemory mem;
    dx100::Functional fn(mem, 4, 16384, 8);
    Rng rng(5);
    auto &idx = fn.tileRef(0);
    for (unsigned i = 0; i < 16384; ++i)
        idx.data[i] = rng.below(1 << 20);
    idx.size = 16384;
    dx100::Instruction in;
    in.op = dx100::Opcode::kIld;
    in.dtype = dx100::DataType::kU32;
    in.td = 1;
    in.ts1 = 0;
    in.base = 0x100000;
    for (auto _ : state)
        fn.execute(in);
    state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_FunctionalGather);

BENCHMARK_MAIN();

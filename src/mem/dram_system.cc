#include "mem/dram_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/stat_registry.hh"

namespace dx::mem
{

DramSystem::DramSystem(const Config &cfg)
    : Component("dram"), cfg_(cfg), map_(cfg.ctrl.geom, cfg.order)
{
    for (unsigned c = 0; c < cfg_.ctrl.geom.channels; ++c) {
        channels_.push_back(
            std::make_unique<MemoryController>(cfg_.ctrl, c));
        channels_.back()->setDequeueMirror(&totalDequeues_);
        adopt(*channels_.back());
    }
}

unsigned
DramSystem::channelOf(Addr addr) const
{
    return map_.decompose(addr).channel;
}

bool
DramSystem::canAccept(Addr lineAddr, bool write) const
{
    return channels_[channelOf(lineAddr)]->canAccept(write);
}

void
DramSystem::access(Addr lineAddr, bool write, Origin origin,
                   std::uint64_t tag, MemRespSink *sink)
{
    MemRequest req;
    req.lineAddr = lineAlign(lineAddr);
    req.write = write;
    req.origin = origin;
    req.tag = tag;
    req.sink = sink;
    req.coord = map_.decompose(req.lineAddr);
    channels_[req.coord.channel]->enqueue(req);
}

void
DramSystem::tick()
{
    ++now_;
    if (++phase_ >= cfg_.clockRatio) {
        phase_ = 0;
        for (auto &ch : channels_)
            ch->tick();
    }
}

bool
DramSystem::tickScheduled()
{
    ++now_;
    if (++phase_ >= cfg_.clockRatio) {
        phase_ = 0;
        bool allSkipped = true;
        for (auto &ch : channels_) {
            if (ch->quiescent()) {
                ch->skipCycles(1);
            } else {
                ch->tick();
                allSkipped = false;
            }
        }
        return allSkipped;
    }
    return true; // off-phase core cycle: the controllers do not run
}

Cycle
DramSystem::nextEventAt() const
{
    Cycle best = kNeverCycle;
    for (const auto &ch : channels_) {
        const Cycle ev = ch->nextEventAt();
        if (ev == kNeverCycle)
            continue;
        // Controller tick #j (j >= 1) from here lands on core cycle
        // now_ + (clockRatio - phase_) + (j - 1) * clockRatio.
        const Cycle j = ev - ch->now();
        best = std::min(best, now_ + (cfg_.clockRatio - phase_) +
                                  (j - 1) * cfg_.clockRatio);
    }
    return best;
}

void
DramSystem::skipCycles(Cycle n)
{
    now_ += n;
    const Cycle ticks = (phase_ + n) / cfg_.clockRatio;
    phase_ = static_cast<unsigned>((phase_ + n) % cfg_.clockRatio);
    if (ticks == 0)
        return;
    for (auto &ch : channels_)
        ch->skipCycles(ticks);
}

bool
DramSystem::idle() const
{
    for (const auto &ch : channels_) {
        if (!ch->idle())
            return false;
    }
    return true;
}

double
DramSystem::busUtilization() const
{
    std::uint64_t busy = 0;
    std::uint64_t cycles = 0;
    for (const auto &ch : channels_) {
        busy += ch->stats().busBusyCycles.value();
        cycles += ch->stats().cycles.value();
    }
    return cycles ? static_cast<double>(busy) / cycles : 0.0;
}

double
DramSystem::rowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        hits += ch->stats().rowHits.value();
        total += ch->stats().rowHits.value() +
                 ch->stats().rowMisses.value();
    }
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
DramSystem::queueOccupancy() const
{
    double occ = 0.0;
    for (const auto &ch : channels_) {
        const auto &s = ch->stats();
        if (s.cycles.value() == 0)
            continue;
        const double cap = cfg_.ctrl.readQueueSize +
                           cfg_.ctrl.writeQueueSize;
        occ += static_cast<double>(s.occupancyAccum) /
               (static_cast<double>(s.cycles.value()) * cap);
    }
    return channels_.empty() ? 0.0 : occ / channels_.size();
}

std::uint64_t
DramSystem::linesTransferred() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->stats().readsServed.value() +
             ch->stats().writesServed.value();
    return n;
}

double
DramSystem::peakBytesPerCoreCycle() const
{
    // Each channel moves one line per tBL controller cycles at peak.
    const double perChannel =
        static_cast<double>(kLineBytes) /
        (cfg_.ctrl.timings.tBL * cfg_.clockRatio);
    return perChannel * channels_.size();
}

void
DramSystem::registerStats(StatRegistry &reg) const
{
    auto g = reg.group(path());
    g.gauge("busUtilization", [this] { return busUtilization(); });
    g.gauge("rowHitRate", [this] { return rowHitRate(); });
    g.gauge("queueOccupancy", [this] { return queueOccupancy(); });
    g.value("linesTransferred",
            std::function<std::uint64_t()>(
                [this] { return linesTransferred(); }));
    g.value("dequeues", totalDequeues_);
}

} // namespace dx::mem

#include "cache/mem_port.hh"

#include "common/logging.hh"

namespace dx::cache
{

bool
DramPort::canAccept() const
{
    // Conservative: every channel must have room for a read and a write,
    // since the caller does not tell us the target channel in advance.
    for (unsigned c = 0; c < dram_.channels(); ++c) {
        if (!dram_.channel(c).canAccept(false) ||
            !dram_.channel(c).canAccept(true)) {
            return false;
        }
    }
    return true;
}

bool
DramPort::canAcceptReq(const CacheReq &req) const
{
    return dram_.canAccept(lineAlign(req.addr), req.write);
}

void
DramPort::request(const CacheReq &req)
{
    const Addr line = lineAlign(req.addr);
    if (req.write) {
        // Writebacks are fire-and-forget from the cache's perspective.
        dram_.access(line, true, req.origin, 0, nullptr);
        return;
    }

    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[slot] = req;
    ++inflight_;
    dram_.access(line, false, req.origin, slot, this);
}

void
DramPort::complete(const mem::MemRequest &mreq)
{
    dx_assert(!mreq.write, "unexpected write response at DramPort");
    const auto slot = static_cast<std::uint32_t>(mreq.tag);
    CacheReq req = slots_[slot];
    freeSlots_.push_back(slot);
    --inflight_;
    if (req.sink)
        req.sink->complete(req.tag);
}

bool
RangeRouter::canAccept() const
{
    if (!fallback_->canAccept())
        return false;
    for (const auto &r : ranges_) {
        if (!r.port->canAccept())
            return false;
    }
    return true;
}

bool
RangeRouter::canAcceptReq(const CacheReq &req) const
{
    for (const auto &r : ranges_) {
        if (req.addr >= r.begin && req.addr < r.end)
            return r.port->canAcceptReq(req);
    }
    return fallback_->canAcceptReq(req);
}

void
RangeRouter::request(const CacheReq &req)
{
    for (const auto &r : ranges_) {
        if (req.addr >= r.begin && req.addr < r.end) {
            r.port->request(req);
            return;
        }
    }
    fallback_->request(req);
}

} // namespace dx::cache

/**
 * @file
 * Microbenchmarks for Fig. 8: Gather (SPD / Full), RMW (atomic /
 * non-atomic baselines), Scatter, and the all-miss Gather-Full with a
 * controlled DRAM index pattern.
 */

#ifndef DX_WORKLOADS_MICRO_HH
#define DX_WORKLOADS_MICRO_HH

#include <memory>
#include <optional>

#include "workloads/data.hh"
#include "workloads/workload.hh"

namespace dx::wl
{

/** C[i] = A[B[i]]. */
class GatherMicro : public Workload
{
  public:
    enum class Mode
    {
        kSpd,  //!< offload gather only; core reads packed data from SPD
        kFull, //!< offload the whole kernel (SLD + ILD + SST)
    };

    /**
     * @param n elements
     * @param pattern custom indices (all-miss experiments); if absent,
     *        B[i] = i (the all-hit streaming distribution).
     */
    GatherMicro(Mode mode, std::size_t n,
                std::optional<DramPatternParams> pattern = std::nullopt);

    std::string name() const override;
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    Mode mode_;
    std::size_t n_;
    std::optional<DramPatternParams> pattern_;
    Addr a_ = 0, b_ = 0, c_ = 0;
    std::size_t domain_ = 0; //!< elements in A
};

/** A[B[i]] += C[i]. */
class RmwMicro : public Workload
{
  public:
    /** @param atomicBaseline locked RMW ops vs plain load+add+store. */
    RmwMicro(std::size_t n, bool atomicBaseline);

    std::string name() const override;
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    std::size_t n_;
    bool atomic_;
    Addr a_ = 0, b_ = 0, c_ = 0;
    std::size_t domain_ = 0;
};

/** A[B[i]] = C[i] (indices unique: a permutation scatter). */
class ScatterMicro : public Workload
{
  public:
    /** @param streaming B[i] = i (the paper's all-hit distribution);
     *         otherwise a random permutation. */
    explicit ScatterMicro(std::size_t n, bool streaming = false);

    std::string name() const override;
    void init(sim::System &sys) override;
    std::unique_ptr<cpu::Kernel> makeKernel(sim::System &sys,
                                            unsigned core,
                                            bool dx100) override;
    bool verify(sim::System &sys) override;

  private:
    std::size_t n_;
    bool streaming_;
    Addr a_ = 0, b_ = 0, c_ = 0;
};

} // namespace dx::wl

#endif // DX_WORKLOADS_MICRO_HH

/**
 * @file
 * Reproduces paper Fig. 9: DX100 speedup over the 4-core baseline for
 * the 12 evaluation workloads (geomean reported 2.6x in the paper).
 *
 * Shares its run matrix (and on-disk stats cache) with fig10/fig11.
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 9 - DX100 speedup over 4-core baseline",
                     opt);

    std::printf("%-8s %-10s %14s %14s %9s\n", "kernel", "suite",
                "base cycles", "dx100 cycles", "speedup");
    std::vector<double> speedups;
    for (const auto &entry : paperWorkloads()) {
        const RunStats base = runWorkload(
            entry, SystemConfig::baseline(), "baseline", opt);
        const RunStats dx = runWorkload(
            entry, SystemConfig::withDx100(), "dx100", opt);
        const double speedup =
            static_cast<double>(base.cycles) / dx.cycles;
        speedups.push_back(speedup);
        std::printf("%-8s %-10s %14llu %14llu %8.2fx\n",
                    entry.name.c_str(), entry.suite.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(dx.cycles),
                    speedup);
    }
    std::printf("%-8s %-10s %14s %14s %8.2fx   (paper: 2.6x)\n",
                "geomean", "", "", "", geomean(speedups));
    return 0;
}

/**
 * @file
 * DMP-style indirect (differential-matching) prefetcher model.
 *
 * Reproduces the behaviour class of the paper's comparison point
 * (Fu et al., HPCA'24): a stream detector finds strided index loads
 * B[i]; a pattern matcher correlates recently loaded index *values*
 * with later demand-miss *addresses* to learn (base, scale) of the
 * dependent access A[B[i]]; once confident, every index load triggers a
 * prefetch of A[B[i + d]] using the index value d elements ahead.
 *
 * The model reads the future index value from the functional memory —
 * an idealization standing in for DMP's prefetched index lines. This is
 * generous to DMP (perfect value knowledge once the pattern is
 * learned), so DX100's advantage over it is measured conservatively.
 * Like the real design, it prefetches conditional accesses
 * unconditionally (cache pollution) and leaves the core's instruction
 * stream untouched.
 */

#ifndef DX_PREFETCH_INDIRECT_PREFETCHER_HH
#define DX_PREFETCH_INDIRECT_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/prefetcher.hh"
#include "common/sim_memory.hh"
#include "sim/component.hh"

namespace dx::prefetch
{

class IndirectPrefetcher final : public Component,
                                 public cache::Prefetcher
{
  public:
    struct Config
    {
        unsigned streamTableSize = 16;
        unsigned patternTableSize = 16;
        unsigned recentValues = 8;   //!< index values kept for matching
        unsigned distance = 16;      //!< index elements ahead
        int confidenceThreshold = 2;
        unsigned queueMax = 64;
        unsigned streamDegree = 2;   //!< also stream-prefetch the index
    };

    struct Stats
    {
        std::uint64_t patternsLearned = 0;
        std::uint64_t indirectPrefetches = 0;
        std::uint64_t streamPrefetches = 0;
    };

    IndirectPrefetcher(const Config &cfg, const SimMemory *mem);

    void observe(const cache::CacheReq &req, bool miss) override;
    bool nextPrefetch(Addr &line) override;
    bool pending() const override { return !queue_.empty(); }

    // Component introspection (passive component: no tick contract).
    void registerStats(StatRegistry &reg) const override;

    const Stats &stats() const { return stats_; }

  private:
    struct Stream
    {
        bool valid = false;
        std::uint16_t pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        int confidence = 0;
    };

    struct Recent
    {
        std::uint16_t pc = 0;
        std::uint64_t value = 0;
        Addr addr = 0;        //!< address the value was loaded from
        std::int64_t stride = 0;
        unsigned bytes = 4;   //!< index element size
    };

    struct Pattern
    {
        bool valid = false;
        std::uint16_t indexPc = 0;
        std::int64_t base = 0;
        unsigned scale = 4;
        int confidence = 0;
    };

    Stream &streamFor(std::uint16_t pc);
    void matchMiss(Addr missAddr);
    void triggerIndirect(const Recent &r);
    void push(Addr line);

    Config cfg_;
    const SimMemory *mem_;
    std::vector<Stream> streams_;
    std::vector<Pattern> patterns_;
    std::deque<Recent> recent_;
    std::deque<Addr> queue_;
    Stats stats_;
};

} // namespace dx::prefetch

#endif // DX_PREFETCH_INDIRECT_PREFETCHER_HH

/**
 * @file
 * Reproduces paper Fig. 13: DX100 speedup sensitivity to the tile
 * size, 1K -> 32K elements (paper: geomean rises from 1.7x to 2.9x,
 * driven by coalescing and row-buffer hit rate).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/run_matrix.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

// A representative subset spanning RMW, scatter, gather and range
// patterns (the full 12 at six tile sizes would take hours).
const std::vector<std::string> kSubset = {"IS", "GZZ", "XRAGE", "PR"};
const std::vector<unsigned> kTiles = {1024, 2048, 4096, 8192, 16384,
                                      32768};

RunMatrix
tileMatrix()
{
    RunMatrix m("tile_sweep");
    for (const auto &name : kSubset) {
        const WorkloadEntry *entry = findWorkload(name);
        if (!entry)
            dx_fatal("unknown workload in tile sweep: ", name);
        m.add(*entry);
    }
    m.addConfig("baseline", SystemConfig::baseline());
    for (unsigned t : kTiles) {
        SystemConfig cfg = SystemConfig::withDx100();
        cfg.dx.tileElems = t;
        m.addConfig("dx100_tile" + std::to_string(t), cfg);
    }
    return m;
}

void
formatTileTable(const MatrixResult &r)
{
    std::printf("%-8s", "tile");
    for (const auto &name : kSubset)
        std::printf(" %8s", name.c_str());
    std::printf(" %9s %9s\n", "geomean", "coalesce");

    for (unsigned t : kTiles) {
        const std::string tag = "dx100_tile" + std::to_string(t);
        std::vector<double> speedups;
        double coalesce = 0.0;
        std::printf("%-8u", t);
        for (const auto &name : kSubset) {
            const CellResult &base = r.cell(name, "baseline");
            const CellResult &dx = r.cell(name, tag);
            if (!base.ok || !dx.ok) {
                std::printf(" %8s", "FAILED");
                continue;
            }
            const double s = static_cast<double>(base.stats.cycles) /
                             dx.stats.cycles;
            speedups.push_back(s);
            coalesce += dx.stats.coalescingFactor;
            std::printf(" %7.2fx", s);
        }
        std::printf(" %8.2fx %9.2f\n", geomean(speedups),
                    coalesce / kSubset.size());
    }
    std::printf("(paper: 1.7x at 1K -> 2.9x at 32K)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 13 - tile size sensitivity", opt);

    const MatrixResult result = tileMatrix().run(opt);
    formatTileTable(result);
    maybeWriteJson(result, "fig13", opt);
    return result.failures() == 0 ? 0 : 1;
}

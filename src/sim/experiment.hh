/**
 * @file
 * Shared bench harness: configuration tags, a run-matrix helper and a
 * small on-disk stats cache so the figure benches that share a run
 * matrix (Fig. 9/10/11 use the same 24 simulations) do not re-simulate.
 */

#ifndef DX_SIM_EXPERIMENT_HH
#define DX_SIM_EXPERIMENT_HH

#include <optional>
#include <string>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace dx::sim
{

struct ExpOptions
{
    double scale = 0.5;      //!< workload scale factor
    bool useCache = true;    //!< reuse cached results when present
    std::string cacheDir = "bench_cache";

    /** Parse --scale=<f|small|paper> --no-cache --cache-dir=<d>. */
    static ExpOptions parse(int argc, char **argv);
};

/** Serialize / parse RunStats (one "key value" pair per line). */
std::string serializeStats(const RunStats &s);
std::optional<RunStats> parseStats(const std::string &text);

/**
 * Run @p entry on a system built from @p cfg (tagged @p configTag for
 * the cache), verifying the output. Results are cached per
 * (workload, tag, scale).
 */
RunStats runWorkload(const wl::WorkloadEntry &entry,
                     const SystemConfig &cfg,
                     const std::string &configTag,
                     const ExpOptions &opt);

/** Run a concrete Workload instance without caching. */
RunStats runWorkloadOnce(wl::Workload &w, const SystemConfig &cfg);

/** Geometric mean helper for "geomean" rows. */
double geomean(const std::vector<double> &values);

/** Print a header naming the bench and the configuration used. */
void printBenchHeader(const std::string &title, const ExpOptions &opt);

} // namespace dx::sim

#endif // DX_SIM_EXPERIMENT_HH

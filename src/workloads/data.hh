/**
 * @file
 * Deterministic input generators for the evaluation workloads: uniform
 * random graphs in CSR form, sparse matrices, unstructured-mesh
 * connectivity, join relations, and the synthetic xRAGE-like Spatter
 * pattern (substitute for the proprietary trace; see DESIGN.md).
 */

#ifndef DX_WORKLOADS_DATA_HH
#define DX_WORKLOADS_DATA_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "mem/address_map.hh"

namespace dx::wl
{

/** CSR graph: rowPtr has n+1 entries, col has rowPtr[n] entries. */
struct CsrGraph
{
    std::uint32_t nodes = 0;
    std::vector<std::uint32_t> rowPtr;
    std::vector<std::uint32_t> col;

    std::uint32_t edges() const { return rowPtr.empty() ? 0
        : rowPtr.back(); }
};

/** Uniform random graph (GAP "uniform", avg degree ~degree). */
CsrGraph makeUniformGraph(std::uint32_t nodes, unsigned degree,
                          std::uint64_t seed);

/** Random CSR sparse matrix with ~nnzPerRow entries per row. */
struct CsrMatrix
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> rowPtr;
    std::vector<std::uint32_t> colIdx;
    std::vector<double> values;
};

CsrMatrix makeSparseMatrix(std::uint32_t rows, std::uint32_t cols,
                           unsigned nnzPerRow, std::uint64_t seed);

/**
 * Unstructured-mesh style indirection map: a permutation-ish mapping
 * with large average index distance (the paper measures |i - B[i]| of
 * about 85K elements on the UME dataset), modelling zone->point and
 * point->zone connectivity.
 */
std::vector<std::uint32_t> makeMeshMap(std::uint32_t n,
                                       std::uint32_t spread,
                                       std::uint64_t seed);

/**
 * Mesh range structure for the *I kernels: outer entities own short
 * ranges (minLen..maxLen) of corner indices (like zone->corner lists).
 */
struct MeshRanges
{
    std::vector<std::uint32_t> lo; //!< H[K[i]]
    std::vector<std::uint32_t> hi; //!< H[K[i]+1]
    std::uint32_t innerTotal = 0;
};

MeshRanges makeMeshRanges(std::uint32_t outer, unsigned minLen,
                          unsigned maxLen, std::uint64_t seed);

/**
 * Synthetic xRAGE-like Spatter pattern: AMR block sweeps — runs of
 * quasi-strided indices within a block, with large jumps between
 * blocks and occasional revisits.
 */
std::vector<std::uint32_t> makeXragePattern(std::uint32_t n,
                                            std::uint32_t domain,
                                            std::uint64_t seed);

/** Join relation: tuples with uniformly distributed 32-bit keys. */
std::vector<std::uint32_t> makeTupleKeys(std::uint32_t n,
                                         std::uint64_t seed);

/**
 * Index pattern with controlled DRAM behaviour for the all-miss
 * microbenchmark (Fig. 8b/c): unique word indices spread over
 * `rowsPerBank` rows of every bank, then ordered to achieve a target
 * row-buffer-hit fraction and channel / bank-group interleaving.
 */
struct DramPatternParams
{
    unsigned rbhPercent = 100; //!< 0, 25, 50, 75 or 100
    bool channelInterleave = true;
    bool bankGroupInterleave = true;
    unsigned rowsPerBank = 16;
};

std::vector<std::uint32_t>
makeDramPattern(std::uint32_t n, const DramPatternParams &p,
                const mem::AddressMap &map, std::uint64_t seed);

} // namespace dx::wl

#endif // DX_WORKLOADS_DATA_HH

/**
 * @file
 * Failure-injection and misuse tests: illegal API usage panics
 * (caught as death tests), TLB-miss penalties show up in timing,
 * doorbell protocol violations are detected, and the dispatch window
 * survives adversarial instruction mixes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/dx100_api.hh"
#include "sim/system.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;

namespace
{

struct DirectEmitter : public cpu::OpEmitter
{
    dx100::Dx100 *dev = nullptr;
    SeqNum next = 1;

    SeqNum
    emit(const cpu::MicroOp &op) override
    {
        if (dev && op.kind == cpu::OpKind::kMmioStore)
            dev->mmioWrite(op.addr, op.value, 0);
        return next++;
    }
};

} // namespace

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, NonCommutativeRmwPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    System sys(SystemConfig::withDx100());
    auto *rt = sys.runtime(0);
    const unsigned t1 = rt->allocTile();
    const unsigned t2 = rt->allocTile();
    DirectEmitter e;
    e.dev = sys.dx100(0);
    EXPECT_DEATH(rt->irmw(e, 0, runtime::DataType::kU32,
                          runtime::AluOp::kSub, 0x1000, t1, t2),
                 "associative");
}

TEST(FailureDeathTest, OversizedStreamPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    System sys(SystemConfig::withDx100());
    auto *rt = sys.runtime(0);
    const unsigned t = rt->allocTile();
    DirectEmitter e;
    e.dev = sys.dx100(0);
    EXPECT_DEATH(rt->sld(e, 0, runtime::DataType::kU32, 0x1000, t, 0,
                         rt->tileElems() + 1),
                 "tile");
}

TEST(FailureDeathTest, DoubleFreeTilePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    System sys(SystemConfig::withDx100());
    auto *rt = sys.runtime(0);
    const unsigned t = rt->allocTile();
    rt->freeTile(t);
    EXPECT_DEATH(rt->freeTile(t), "unallocated");
}

TEST(FailureDeathTest, OutOfOrderDoorbellWordsPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    System sys(SystemConfig::withDx100());
    auto *dev = sys.dx100(0);
    // Word 1 before word 0 violates the doorbell protocol.
    EXPECT_DEATH(dev->mmioWrite(dev->config().doorbellAddr(0, 1), 0,
                                0),
                 "doorbell");
}

TEST(FailureModes, TlbMissPenaltyIsVisibleInTiming)
{
    // Same gather, once with PTEs transferred and once without: the
    // unregistered run must pay PTE-walk penalties.
    auto runGather = [](bool registerRegions) {
        System sys(SystemConfig::withDx100());
        auto *rt = sys.runtime(0);
        SimMemory &mem = sys.memory();
        const std::size_t n = 8192;
        // Spread over many huge pages to make walks frequent.
        const Addr a = sys.allocator().alloc(Addr{512} << 21);
        const Addr b = sys.allocator().alloc(n * 4);
        Rng rng(6);
        for (std::size_t i = 0; i < n; ++i) {
            mem.write<std::uint32_t>(
                b + i * 4,
                static_cast<std::uint32_t>(rng.below(1 << 28)));
        }
        if (registerRegions) {
            rt->registerRegion(a, Addr{512} << 21);
            rt->registerRegion(b, n * 4);
        }

        DirectEmitter e;
        e.dev = sys.dx100(0);
        const unsigned idx = rt->allocTile();
        const unsigned dat = rt->allocTile();
        rt->sld(e, 0, runtime::DataType::kU32, b, idx, 0, n);
        rt->ild(e, 0, runtime::DataType::kU32, a, dat, idx);
        Cycle t = 0;
        while (!sys.dx100(0)->idle() && t < 50'000'000) {
            sys.tick();
            ++t;
        }
        return t;
    };

    const Cycle with = runGather(true);
    const Cycle without = runGather(false);
    EXPECT_GT(without, with + 1000);
}

TEST(FailureModes, DispatchSurvivesAdversarialHazardMix)
{
    // A long chain of instructions all hammering the same two tiles:
    // the scoreboard must serialize them without deadlock or loss.
    System sys(SystemConfig::withDx100());
    auto *rt = sys.runtime(0);
    const std::size_t n = 1024;
    const Addr src = sys.allocator().alloc(n * 4);
    rt->registerRegion(src, n * 4);

    DirectEmitter e;
    e.dev = sys.dx100(0);
    const unsigned t1 = rt->allocTile();
    const unsigned t2 = rt->allocTile();
    rt->sld(e, 0, runtime::DataType::kU32, src, t1, 0, n);
    std::uint64_t lastTok = 0;
    for (int round = 0; round < 20; ++round) {
        lastTok = rt->alus(e, 0, runtime::DataType::kU32,
                           runtime::AluOp::kAdd,
                           round % 2 ? t1 : t2, round % 2 ? t2 : t1,
                           1);
    }
    Cycle t = 0;
    while (!sys.dx100(0)->idle() && t < 10'000'000) {
        sys.tick();
        ++t;
    }
    ASSERT_TRUE(sys.dx100(0)->idle());
    EXPECT_TRUE(sys.dx100(0)->mmioReady(lastTok, 0));
    EXPECT_EQ(sys.dx100(0)->stats().instructionsRetired.value(), 21u);
    // Functional result: alternating adds accumulate 20 on the chain.
    EXPECT_EQ(rt->spdValue(t1, 5),
              sys.memory().read<std::uint32_t>(src + 5 * 4) + 20);
}

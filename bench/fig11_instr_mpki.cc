/**
 * @file
 * Reproduces paper Fig. 11: (a) core instruction reduction (geomean
 * 3.6x in the paper) and (b) cache MPKI reduction (avg 6.1x).
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 11 - instruction and MPKI reduction", opt);

    std::printf("%-8s | %12s %12s %7s | %8s %8s %7s\n", "kernel",
                "instr.base", "instr.dx", "ratio", "mpki.b", "mpki.dx",
                "ratio");
    std::vector<double> instrRatios, mpkiRatios;
    for (const auto &entry : paperWorkloads()) {
        const RunStats base = runWorkload(
            entry, SystemConfig::baseline(), "baseline", opt);
        const RunStats dx = runWorkload(
            entry, SystemConfig::withDx100(), "dx100", opt);

        const double ir = static_cast<double>(base.instructions) /
                          std::max<std::uint64_t>(dx.instructions, 1);
        // LLC demand MPKI; DX100-originated traffic excluded.
        const double mb = std::max(base.llcMpki, 1e-3);
        const double md = std::max(dx.llcMpki, 1e-3);
        const double mr = mb / md;
        instrRatios.push_back(ir);
        mpkiRatios.push_back(mr);

        std::printf("%-8s | %12llu %12llu %6.2fx | %8.2f %8.2f "
                    "%6.1fx\n",
                    entry.name.c_str(),
                    static_cast<unsigned long long>(base.instructions),
                    static_cast<unsigned long long>(dx.instructions),
                    ir, base.llcMpki, dx.llcMpki, mr);
    }
    std::printf("%-8s | %26s %6.2fx | %11s %10.1fx\n", "geomean",
                "(paper 3.6x)", geomean(instrRatios), "(paper 6.1x)",
                geomean(mpkiRatios));
    return 0;
}

/**
 * @file
 * The DX100 accelerator timing model (paper §3).
 *
 * A shared, memory-mapped accelerator containing:
 *  - Controller: doorbell assembly, out-of-order dispatch through a
 *    scoreboard that enforces tile RAW/WAW hazards, retirement and
 *    tile ready bits.
 *  - Stream Access unit: streaming loads/stores through the LLC with a
 *    bounded request table (MSHR analogue).
 *  - Indirect Access unit: Row Table / Word Table based reordering,
 *    coalescing, and channel/bank-group interleaved request generation;
 *    direct DRAM injection for uncached lines, LLC access for cached
 *    lines (H bit via coherency snoop).
 *  - Range Fuser and ALU units: throughput-modeled tile operations.
 *  - Scratchpad port: services core loads of gathered data below the
 *    LLC; a coherency agent tracks which SPD lines the cores cached and
 *    back-invalidates them when an instruction rewrites a tile.
 */

#ifndef DX_DX100_DX100_HH
#define DX_DX100_DX100_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "cache/cache_if.hh"
#include "common/stats.hh"
#include "cpu/mmio.hh"
#include "dx100/config.hh"
#include "dx100/payload.hh"
#include "dx100/region_directory.hh"
#include "dx100/row_table.hh"
#include "dx100/tlb.hh"
#include "mem/dram_system.hh"
#include "sim/component.hh"

namespace dx::dx100
{

/**
 * Invalidates scratchpad lines from the cache hierarchy and answers
 * "is this DRAM line cached?" snoops (the LLC is inclusive, so LLC
 * presence covers the private levels).
 */
class CoherencyAgent
{
  public:
    void setLlc(SnoopPort *llc) { llc_ = llc; }
    void addCache(SnoopPort *c) { caches_.push_back(c); }

    bool
    isCached(Addr line) const
    {
        return llc_ && llc_->containsLine(line);
    }

    /** Invalidate one line everywhere; returns #caches that held it. */
    unsigned
    invalidateLine(Addr line)
    {
        unsigned n = 0;
        for (SnoopPort *c : caches_) {
            if (c->containsLine(line)) {
                c->invalidateLine(line);
                ++n;
            }
        }
        return n;
    }

    bool hasHierarchy() const { return llc_ != nullptr; }

  private:
    SnoopPort *llc_ = nullptr;
    std::vector<SnoopPort *> caches_;
};

class Dx100 final : public Component,
                    public cpu::MmioDevice,
                    public mem::MemRespSink
{
  public:
    struct Stats
    {
        Counter instructionsRetired;
        std::array<Counter, 8> byOpcode;
        Counter indirectWords;     //!< iterations processed (post-cond)
        Counter indirectColumns;   //!< unique DRAM columns accessed
        Counter dramReads;
        Counter dramWrites;
        Counter llcReads;
        Counter llcWrites;
        Counter spdLinesServed;    //!< core-side scratchpad line reads
        Counter invalidations;     //!< SPD lines invalidated on dispatch
        Counter fillStallCycles;   //!< fill blocked on a full slice
        Counter dispatchStalls;    //!< no instruction dispatchable

        double
        coalescingFactor() const
        {
            return indirectColumns.value()
                ? static_cast<double>(indirectWords.value()) /
                      indirectColumns.value()
                : 0.0;
        }
    };

    Dx100(const Dx100Config &cfg, mem::DramSystem &dram,
          cache::CachePort *llcPort, CoherencyAgent agent,
          unsigned maxCores = 16);

    // ---- runtime sideband --------------------------------------------

    /** Register the payload for the next doorbell from @p coreId. */
    std::uint64_t registerPayload(int coreId, ExecPayload payload);

    /** Model the one-time PTE transfer for a data region (§3.6). */
    void registerRegion(Addr base, Addr size);

    /** Join a multi-instance region-coherence domain (§6.6). */
    void
    setRegionDirectory(RegionDirectory *dir, int instanceId)
    {
        regionDir_ = dir;
        instanceId_ = instanceId;
    }

    // ---- MmioDevice ---------------------------------------------------

    void mmioWrite(Addr addr, std::uint64_t data, int coreId) override;
    bool mmioReady(std::uint64_t token, int coreId) override;

    // ---- simulation ----------------------------------------------------

    /** Port the LLC's range router steers SPD-region lines to. */
    cache::CachePort &spdPort() { return spdPort_; }

    void tick() override;
    bool idle() const;

    /** Component drain is the same predicate as idle(). */
    bool drained() const override { return idle(); }

    // Component introspection.
    void registerStats(StatRegistry &reg) const override;

    std::vector<PortRef>
    portRefs() const override
    {
        return {{llcPort_.name(), llcPort_.bound()}};
    }

    /**
     * Quiescence contract (see DESIGN.md): tick() would be a no-op —
     * every unit idle, nothing queued for dispatch, no scratchpad read
     * due. One exception: a busy indirect unit in its wait-idle drain
     * state (everything issued and in flight, nothing consumable, any
     * admission-blocked send still blocked) is quiescent, because its
     * tick is then provably side-effect free until a memory response
     * or port departure. All other busy-but-blocked unit states still
     * tick (conservative: their retries and stall counters must match
     * the naive loop).
     *
     * Inline fast path: the verdict is memoized across probes (see
     * QMemo below), so the common wait-idle shapes cost a compare —
     * or a compare plus a port pop-count read — per scheduler query.
     */
    bool
    quiescent() const override
    {
        if (qMemo_ == QMemo::kTimed && now_ + 1 < qSleepUntil_)
            return true;
        if (qMemo_ == QMemo::kBlocked && now_ + 1 < qSleepUntil_ &&
            drainPops() == qPops_) {
            return true;
        }
        return quiescentSlow();
    }

    /**
     * Earliest cycle tick() could act without external stimulus (the
     * scratchpad queue head); kNeverCycle when only a doorbell or a
     * memory response can wake us. Only meaningful while quiescent().
     * SPD entries share one fixed latency, so the head is the minimum.
     */
    Cycle
    nextEventAt() const override
    {
        return spdPort_.queue.empty() ? kNeverCycle
                                      : spdPort_.queue.front().first;
    }

    /**
     * Closed-form advance over @p n cycles the caller has proven
     * quiescent (quiescent() holds and nextEventAt() > now + n).
     * Accumulates the per-cycle stall stats a slice-full fill retry
     * would have produced, so skipped runs stay bit-identical.
     */
    void skipCycles(Cycle n) override;

    /** This instance's clock (kept in sync with the System clock). */
    Cycle localNow() const override { return now_; }

    /** Tile ready bit (true = no in-flight instruction uses it). */
    bool tileReady(unsigned tile) const;

    // mem::MemRespSink (direct DRAM responses for the indirect unit).
    void complete(const mem::MemRequest &req) override;

    const Stats &stats() const { return stats_; }
    const Dx100Config &config() const { return cfg_; }
    Tlb &tlb() { return tlb_; }

    /** Render unit/queue state for debugging. */
    std::string debugDump() const;

  private:
    // ---- scoreboard -----------------------------------------------------

    /**
     * Per-instruction element progress, the model of the paper's
     * scratchpad *finish bits* (§3.5): a producer publishes how many
     * destination elements are architecturally complete (as an
     * in-order prefix approximation), and consumers of its tiles gate
     * their element consumption on it. This is what lets the Indirect
     * unit start filling from an index tile while the Stream unit is
     * still loading it.
     */
    struct Progress
    {
        std::uint32_t prefix = 0;
        std::uint32_t total = 0;
    };
    using ProgressPtr = std::shared_ptr<Progress>;

    struct Active
    {
        bool valid = false;
        ExecPayload payload;
        std::uint64_t destMask = 0;
        std::uint64_t srcMask = 0;
        ProgressPtr progress;               //!< this instr's dest progress
        std::vector<ProgressPtr> srcGates;  //!< producers still running
    };

    /** Elements of its sources this instruction may consume so far. */
    static std::uint32_t gateLimit(const Active &a);

    enum class UnitKind
    {
        kStream,
        kIndirect,
        kAlu,
        kRange,
    };

    static UnitKind unitFor(Opcode op);
    std::uint64_t tileMaskDest(const Instruction &i) const;
    std::uint64_t tileMaskSrc(const Instruction &i) const;

    void tryDispatch();
    void dispatchTo(UnitKind unit, ExecPayload &&payload);
    void retire(UnitKind unit);
    void invalidateTileLines(unsigned tile);

    // ---- stream unit ----------------------------------------------------

    struct StreamSink : public cache::CacheRespSink
    {
        Dx100 *owner = nullptr;
        void complete(const std::uint64_t &tag) override;
    };

    struct StreamUnit
    {
        bool busy = false;
        Active active;
        std::vector<Addr> lines;
        std::size_t issuePos = 0;
        unsigned outstanding = 0;
        unsigned linesDone = 0;
        bool isStore = false;

        /**
         * Set by streamTick() after a cycle that issued nothing and
         * could not retire: the next tick is a provable no-op until a
         * response arrives (StreamSink::complete clears the
         * flag) or, when the LLC refused admission (waitBlocked),
         * until a port departure (watched via waitPops). Never set
         * while gated on a producer's finish bits — those advance in
         * later unit ticks of the same cycle.
         */
        bool waitIdle = false;
        bool waitBlocked = false;
        std::uint64_t waitPops = 0;

        /**
         * The no-issue cycle was gated on a producer's finish bits at
         * the recorded prefix. Unlike waitIdle this cannot be trusted
         * as-is (producers tick later in the same cycle): quiescent()
         * revalidates it by recomputing gateLimit and comparing with
         * gatePrefix — equal means the producer has not advanced, so
         * the next tick recomputes the same gate and is a no-op.
         */
        bool waitGated = false;
        std::uint32_t gatePrefix = 0;
    };

    void streamStart(StreamUnit &u);
    void streamTick(StreamUnit &u);

    // ---- indirect unit --------------------------------------------------

    struct LlcSink : public cache::CacheRespSink
    {
        Dx100 *owner = nullptr;
        void complete(const std::uint64_t &tag) override;
    };

    struct IndirectUnit
    {
        bool busy = false;
        Active active;
        std::uint32_t n = 0;
        std::uint32_t fillPos = 0;
        bool fillBlocked = false;
        bool fillGated = false; //!< waiting on a producer's finish bits
        unsigned tlbStall = 0;
        std::uint32_t wordsDone = 0;
        std::uint32_t skippedAtFill = 0; //!< condition-false elements
        std::vector<Addr> lineOfHandle;
        std::deque<std::pair<IndirectTables::ColHandle, bool>> responses;
        std::deque<std::pair<Addr, bool>> pendingWrites; //!< (line, viaCache)
        std::vector<unsigned> rrPtr; //!< per-channel slice round-robin
        unsigned outstandingReads = 0;

        bool needsWriteback = false; //!< IST/IRMW

        /**
         * Set by indirectTick() after a cycle that moved nothing: the
         * drain phase with every issued request in flight. The next
         * tick is provably a no-op until a response arrives (the
         * response entry points clear the flag) — or, when a sendable
         * request/write was merely blocked on DRAM/LLC admission
         * (waitBlocked), until those ports record a departure
         * (watched via waitPops, see CachePort::popCount).
         */
        bool waitIdle = false;
        bool waitBlocked = false;
        std::uint64_t waitPops = 0;

        /**
         * The wait-idle cycle was a slice-full fill retry: the only
         * effects of re-ticking are one fillStallCycles bump and one
         * (idempotent) TLB re-hit per cycle, which skipCycles()
         * accounts closed-form.
         */
        bool waitFillStall = false;
    };

    void indirectStart(IndirectUnit &u);
    void indirectTick(IndirectUnit &u);
    void indirectFill(IndirectUnit &u);
    /** Returns {sent any request, sendable but blocked on admission}. */
    std::pair<bool, bool> indirectRequests(IndirectUnit &u);
    /** Returns true when at least one response was consumed. */
    bool indirectResponses(IndirectUnit &u);
    /** Returns {sent any write, head write blocked on admission}. */
    std::pair<bool, bool> indirectWrites(IndirectUnit &u);
    bool indirectDone(const IndirectUnit &u) const;

    /**
     * Combined departure count of the ports the indirect drain loop
     * can block on (LLC input queue + DRAM request buffers);
     * kPortPopsUnknown if the LLC port cannot track departures.
     */
    std::uint64_t drainPops() const;

    // ---- fixed-throughput units ------------------------------------------

    struct TimedUnit
    {
        bool busy = false;
        Active active;
        std::uint64_t processed = 0; //!< input elements consumed
        std::uint64_t rate = 1;      //!< elements per cycle
    };

    // ---- scratchpad port -------------------------------------------------

    struct SpdPort : public cache::CachePort
    {
        Dx100 *owner = nullptr;
        std::deque<std::pair<Cycle, cache::CacheReq>> queue;

        bool canAccept() const override;
        void request(const cache::CacheReq &req) override;
    };

    void spdTick();
    void markSpdCached(Addr addr);
    unsigned tileOfSpdAddr(Addr addr) const;

    const Dx100Config cfg_;
    mem::DramSystem &dram_;
    //! Cache interface (may stay unbound in unit tests).
    PortSlot<cache::CacheReq> llcPort_{"llc"};
    //! LLC pop counter, resolved once at wiring (null if untracked).
    const std::uint64_t *llcPopAddr_ = nullptr;
    CoherencyAgent agent_;
    Tlb tlb_;
    RegionDirectory *regionDir_ = nullptr;
    int instanceId_ = 0;

    Cycle now_ = 0;

    // Doorbell assembly + sideband payloads, per core.
    struct Doorbell
    {
        std::array<std::uint64_t, 3> words{};
        unsigned have = 0;
    };
    std::vector<Doorbell> doorbells_;
    std::vector<std::deque<ExecPayload>> sideband_;

    /**
     * Last tryDispatch() scan found nothing dispatchable, for reasons
     * frozen while the whole accelerator is quiescent (unit-busy and
     * hazard masks; never set when a region-ownership retry — which
     * re-arbitrates against the clock — was involved). Cleared when
     * the queue grows (mmioWrite) or a unit retires. While it holds,
     * a skipped cycle accounts one dispatchStalls bump closed-form.
     */
    bool dispatchWait_ = false;

    /**
     * Cross-probe memo of the quiescent() verdict. Everything the
     * verdict reads — unit wait flags, finish-bit gates, the dispatch
     * memo, the SPD queue — mutates only through tick() and the
     * external entry points (mmioWrite, the response sinks, SPD port
     * requests), all of which clear the memo. Two residual inputs are
     * rechecked inline: the clock (qSleepUntil_ bounds validity at the
     * SPD queue head) and, for kBlocked, the downstream departure
     * count (an admission-blocked send stays blocked while no entry
     * left the LLC/DRAM queues — arrivals never free space).
     */
    enum class QMemo : std::uint8_t
    {
        kNone,
        kTimed,   //!< verdict is pops-independent
        kBlocked, //!< verdict also pinned on drainPops() == qPops_
    };
    mutable QMemo qMemo_ = QMemo::kNone;
    mutable Cycle qSleepUntil_ = 0;
    mutable std::uint64_t qPops_ = 0;

    /** Full verdict recomputation; (re)establishes the memo. */
    bool quiescentSlow() const;

    std::deque<ExecPayload> inputQueue_;
    std::vector<std::uint64_t> regs_;
    std::vector<bool> tileReady_;
    std::vector<ProgressPtr> tileProgress_; //!< last writer, per tile
    std::vector<bool> retired_;
    std::uint64_t nextId_ = 1;

    void timedTick(TimedUnit &u, UnitKind kind);

    StreamUnit stream_;
    IndirectUnit indirect_;
    TimedUnit alu_;
    TimedUnit range_;
    IndirectTables tables_;

    StreamSink streamSink_;
    LlcSink llcSink_;
    SpdPort spdPort_;

    //!< SPD lines the cores may hold, per tile.
    std::vector<std::vector<bool>> spdCached_;

    Stats stats_;
};

} // namespace dx::dx100

#endif // DX_DX100_DX100_HH

/**
 * @file
 * Executors for loop-IR programs:
 *  - interpret(): golden semantics straight on SimMemory;
 *  - makeBaselineKernel(): emit the loop as a core micro-op stream
 *    (what the unmodified program would execute);
 *  - makeDx100Kernel(): drive the generated packed-op plan through the
 *    DX100 runtime — the output of the compiler pipeline, runnable on
 *    the simulated system.
 */

#ifndef DX_LOOPIR_EXEC_HH
#define DX_LOOPIR_EXEC_HH

#include <memory>

#include "common/sim_memory.hh"
#include "cpu/microop.hh"
#include "loopir/passes.hh"
#include "runtime/dx100_api.hh"

namespace dx::loopir
{

/** Execute the program's semantics directly (reference). */
void interpret(const Program &prog, SimMemory &mem);

/** Evaluate one expression at iteration @p i (used by tests). */
std::uint64_t evalExpr(const Program &prog, const ExprPtr &e,
                       std::uint64_t i, SimMemory &mem);

/** Core micro-op stream for [begin, end) of the loop. */
std::unique_ptr<cpu::Kernel>
makeBaselineKernel(const Program &prog, SimMemory &mem,
                   std::uint64_t begin, std::uint64_t end);

/** DX100 kernel executing the compiled plan for [begin, end). */
std::unique_ptr<cpu::Kernel>
makeDx100Kernel(const Program &prog, const TilePlan &plan,
                runtime::Dx100Runtime &rt, int coreId,
                std::uint64_t begin, std::uint64_t end);

} // namespace dx::loopir

#endif // DX_LOOPIR_EXEC_HH

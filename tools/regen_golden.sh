#!/usr/bin/env bash
# Regenerate the golden-stats corpus (tests/golden/*.json).
#
# Run this after an *intended* behavioral change, then review the
# corpus diff like any other code change — every changed field is a
# claim that the new number is the right one.
#
# Usage: tools/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

cmake --build "$BUILD_DIR" -j "$(nproc)" --target test_golden_stats
DX_REGEN_GOLDEN=1 "$BUILD_DIR/tests/test_golden_stats"

echo
echo "Corpus regenerated. Review with: git diff tests/golden/"

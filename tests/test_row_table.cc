/**
 * @file
 * Row Table / Word Table tests: coalescing via word chains, row
 * grouping, capacity handling, drain ordering, and release.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "dx100/row_table.hh"

using namespace dx;
using namespace dx::dx100;

namespace
{

IndirectTables::Config
smallCfg()
{
    IndirectTables::Config cfg;
    cfg.slices = 4;
    cfg.rowsPerSlice = 4;
    cfg.colsPerRow = 2;
    return cfg;
}

} // namespace

TEST(RowTable, CoalescesWordsInSameColumn)
{
    IndirectTables t(smallCfg());
    t.reset(8);

    // Three iterations to the same (slice 0, row 5, col 7).
    EXPECT_EQ(t.insert(0, 5, 7, 0, 0),
              IndirectTables::InsertResult::kNewColumn);
    EXPECT_EQ(t.insert(0, 5, 7, 4, 1), IndirectTables::InsertResult::kOk);
    EXPECT_EQ(t.insert(0, 5, 7, 8, 2), IndirectTables::InsertResult::kOk);
    EXPECT_EQ(t.columnsAllocated(), 1u);

    auto req = t.nextRequest(0);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->row, 5u);
    EXPECT_EQ(req->col, 7u);
    EXPECT_EQ(t.wordsInColumn(req->handle), 3u);

    std::set<std::uint32_t> iters;
    t.completeColumn(req->handle,
                     [&](std::uint32_t i, std::uint16_t) {
                         iters.insert(i);
                     });
    EXPECT_EQ(iters, (std::set<std::uint32_t>{0, 1, 2}));
    EXPECT_TRUE(t.drained());
}

TEST(RowTable, GroupsColumnsUnderOneRow)
{
    IndirectTables t(smallCfg());
    t.reset(8);

    t.insert(1, 9, 0, 0, 0);
    t.insert(1, 9, 1, 0, 1);
    EXPECT_EQ(t.rowsLive(1), 1u); // one BCAM entry, two SRAM columns

    // Third distinct column overflows colsPerRow=2: new row entry.
    t.insert(1, 9, 2, 0, 2);
    EXPECT_EQ(t.rowsLive(1), 2u);
}

TEST(RowTable, SliceFullReportsAndRecovers)
{
    IndirectTables t(smallCfg());
    t.reset(64);

    // Fill slice 2 with 4 distinct rows.
    for (std::uint32_t r = 0; r < 4; ++r)
        EXPECT_EQ(t.insert(2, r, 0, 0, r),
                  IndirectTables::InsertResult::kNewColumn);
    EXPECT_EQ(t.insert(2, 99, 0, 0, 5),
              IndirectTables::InsertResult::kSliceFull);

    // Drain one row; space opens up.
    auto req = t.nextRequest(2);
    ASSERT_TRUE(req.has_value());
    t.completeColumn(req->handle, [](std::uint32_t, std::uint16_t) {});
    EXPECT_EQ(t.insert(2, 99, 0, 0, 5),
              IndirectTables::InsertResult::kNewColumn);
}

TEST(RowTable, DrainsOldestRowFirst)
{
    IndirectTables t(smallCfg());
    t.reset(16);

    t.insert(0, 30, 0, 0, 0);
    t.insert(0, 10, 0, 0, 1);
    t.insert(0, 20, 0, 0, 2);

    auto r1 = t.nextRequest(0);
    auto r2 = t.nextRequest(0);
    auto r3 = t.nextRequest(0);
    ASSERT_TRUE(r1 && r2 && r3);
    EXPECT_EQ(r1->row, 30u);
    EXPECT_EQ(r2->row, 10u);
    EXPECT_EQ(r3->row, 20u);
    EXPECT_FALSE(t.nextRequest(0).has_value());
}

TEST(RowTable, UnsendRevertsSelection)
{
    IndirectTables t(smallCfg());
    t.reset(4);
    t.insert(3, 1, 1, 0, 0);

    auto req = t.nextRequest(3);
    ASSERT_TRUE(req.has_value());
    EXPECT_FALSE(t.nextRequest(3).has_value());

    t.unsend(*req);
    auto again = t.nextRequest(3);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->handle, req->handle);
}

TEST(RowTable, CacheHitBitTravelsWithRequest)
{
    IndirectTables t(smallCfg());
    t.reset(4);
    t.insert(0, 2, 3, 0, 0);
    t.setCacheHit(0, true);
    auto req = t.nextRequest(0);
    ASSERT_TRUE(req.has_value());
    EXPECT_TRUE(req->cacheHit);
}

TEST(RowTable, RandomizedAllWordsDeliveredExactlyOnce)
{
    IndirectTables::Config cfg;
    cfg.slices = 8;
    cfg.rowsPerSlice = 64;
    cfg.colsPerRow = 8;
    IndirectTables t(cfg);

    const std::uint32_t n = 4096;
    t.reset(n);
    Rng rng(77);

    std::vector<bool> seen(n, false);
    std::uint32_t inserted = 0;
    std::uint32_t delivered = 0;

    auto drainSome = [&](unsigned count) {
        for (unsigned k = 0; k < count; ++k) {
            for (unsigned s = 0; s < cfg.slices; ++s) {
                auto req = t.nextRequest(s);
                if (!req)
                    continue;
                delivered += t.completeColumn(
                    req->handle, [&](std::uint32_t i, std::uint16_t) {
                        EXPECT_FALSE(seen[i]) << "duplicate " << i;
                        seen[i] = true;
                    });
            }
        }
    };

    while (inserted < n) {
        const unsigned slice = static_cast<unsigned>(rng.below(8));
        const auto row = static_cast<std::uint32_t>(rng.below(512));
        const auto col = static_cast<std::uint32_t>(rng.below(16));
        const auto res = t.insert(slice, row, col,
                                  static_cast<std::uint16_t>(
                                      rng.below(16)),
                                  inserted);
        if (res == IndirectTables::InsertResult::kSliceFull) {
            drainSome(4);
            continue;
        }
        ++inserted;
    }
    while (!t.drained())
        drainSome(1);

    EXPECT_EQ(delivered, n);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_TRUE(seen[i]) << "missing " << i;
}

TEST(RowTable, CoalescingReducesColumnCount)
{
    IndirectTables::Config cfg;
    cfg.slices = 2;
    cfg.rowsPerSlice = 64;
    cfg.colsPerRow = 8;
    IndirectTables t(cfg);

    // 1024 iterations over only 32 distinct columns.
    const std::uint32_t n = 1024;
    t.reset(n);
    Rng rng(5);
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::uint32_t>(rng.below(32));
        auto res = t.insert(c % 2, c / 16, c % 16,
                            static_cast<std::uint16_t>(i % 16), i);
        ASSERT_NE(res, IndirectTables::InsertResult::kSliceFull);
    }
    EXPECT_LE(t.columnsAllocated(), 32u);
    EXPECT_GE(static_cast<double>(n) / t.columnsAllocated(), 30.0);
}

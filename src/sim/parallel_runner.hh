/**
 * @file
 * A std::jthread pool that executes independent simulation jobs
 * concurrently. Each job owns its System (the simulator shares no
 * mutable state across System instances — see System::liveSystems()),
 * so jobs are embarrassingly parallel; results are collected in
 * declaration order regardless of completion order, which keeps every
 * downstream table deterministic.
 *
 * Failure isolation: each worker installs ScopedFatalThrow, so a run
 * that dx_fatal()s (e.g. failed verification) or throws reports its
 * label and error in its JobResult while the rest of the jobs
 * continue. Only dx_panic (a simulator bug) still aborts the process.
 */

#ifndef DX_SIM_PARALLEL_RUNNER_HH
#define DX_SIM_PARALLEL_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace dx::sim
{

/** One unit of work: a labelled closure producing RunStats. */
struct Job
{
    std::string label;                //!< log prefix + failure report
    std::function<RunStats()> work;
};

struct JobResult
{
    bool ok = false;
    RunStats stats;      //!< valid only when ok
    std::string error;   //!< failure description when !ok
};

class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 = hardware_concurrency. */
    explicit ParallelRunner(unsigned jobs);

    /**
     * Execute every job; results[i] always corresponds to jobs[i].
     * With one worker (or one job) the work runs on the calling
     * thread — the serial path — and still produces bit-identical
     * results to any worker count, since each job is self-contained.
     */
    std::vector<JobResult> run(const std::vector<Job> &jobs) const;

    unsigned workers() const { return workers_; }

  private:
    unsigned workers_;
};

} // namespace dx::sim

#endif // DX_SIM_PARALLEL_RUNNER_HH

#include "loopir/passes.hh"

#include <functional>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace dx::loopir
{

RefAnalysis
analyzeExpr(const ExprPtr &e)
{
    RefAnalysis out;
    if (!e)
        return out;
    switch (e->kind) {
      case Expr::Kind::kIndVar:
        out.usesIndVar = true;
        out.affine = true;
        return out;
      case Expr::Kind::kConst:
        return out;
      case Expr::Kind::kRef: {
        const RefAnalysis idx = analyzeExpr(e->kids[0]);
        out.usesIndVar = idx.usesIndVar;
        out.indirectionDepth = idx.indirectionDepth + 1;
        out.affine = false;
        return out;
      }
      case Expr::Kind::kBin: {
        const RefAnalysis a = analyzeExpr(e->kids[0]);
        const RefAnalysis b = analyzeExpr(e->kids[1]);
        out.usesIndVar = a.usesIndVar || b.usesIndVar;
        out.indirectionDepth =
            std::max(a.indirectionDepth, b.indirectionDepth);
        out.affine = false;
        return out;
      }
    }
    return out;
}

namespace
{

/** Collect every array id loaded anywhere in an expression. */
void
collectLoads(const ExprPtr &e, std::set<int> &loads)
{
    if (!e)
        return;
    if (e->kind == Expr::Kind::kRef)
        loads.insert(e->array);
    for (const auto &k : e->kids)
        collectLoads(k, loads);
}

} // namespace

Legality
checkLegality(const Program &prog)
{
    // Arrays loaded anywhere in the loop body.
    std::set<int> loads;
    for (const auto &s : prog.body) {
        collectLoads(s.index, loads);
        collectLoads(s.value, loads);
        collectLoads(s.cond, loads);
    }

    for (const auto &s : prog.body) {
        // A store target that is also loaded may alias across
        // iterations (e.g. the Gauss-Seidel case in §4.2): hoisting
        // the loads would observe stale data.
        if (loads.count(s.array)) {
            return {false,
                    "array '" + prog.arrays[s.array].name +
                        "' is both loaded and stored in the loop"};
        }
        if (s.kind == Stmt::Kind::kRmw &&
            !dx100::rmwSupported(s.rmwOp)) {
            return {false, "RMW operator is not associative/"
                           "commutative"};
        }
        const RefAnalysis idx = analyzeExpr(s.index);
        if (!idx.usesIndVar) {
            return {false, "store index does not depend on the "
                           "induction variable (loop-carried "
                           "output dependence)"};
        }
    }
    return {true, ""};
}

std::string
PackedOp::toString(const Program &prog) const
{
    auto arr = [&](int a) {
        return a >= 0 ? prog.arrays[static_cast<unsigned>(a)].name
                      : std::string("?");
    };
    std::ostringstream os;
    switch (kind) {
      case Kind::kSld:
        os << "t" << dst << " = SLD " << arr(array) << "[tile]";
        break;
      case Kind::kIld:
        os << "t" << dst << " = ILD " << arr(array) << "[t" << src1
           << "]";
        break;
      case Kind::kAluS:
        os << "t" << dst << " = ALUS." << to_string(op) << " t" << src1
           << ", #" << scalar;
        break;
      case Kind::kAluV:
        os << "t" << dst << " = ALUV." << to_string(op) << " t" << src1
           << ", t" << src2;
        break;
      case Kind::kIst:
        os << "IST " << arr(array) << "[t" << src1 << "] = t" << src2;
        break;
      case Kind::kIrmw:
        os << "IRMW." << to_string(op) << " " << arr(array) << "[t"
           << src1 << "] += t" << src2;
        break;
      case Kind::kSst:
        os << "SST " << arr(array) << "[tile] = t" << src1;
        break;
    }
    if (cond >= 0)
        os << " if t" << cond;
    return os.str();
}

namespace
{

/** Expression -> virtual tile compiler. */
class ExprCompiler
{
  public:
    explicit ExprCompiler(const Program &prog) : prog_(prog) {}

    /** Compile e; returns the virtual tile holding its lane values,
     *  or -1 with a reason on unsupported shapes. */
    int
    compile(const ExprPtr &e, std::string &reason)
    {
        switch (e->kind) {
          case Expr::Kind::kIndVar:
            reason = "bare induction variable as a value is not "
                     "supported (no iota unit)";
            return -1;
          case Expr::Kind::kConst:
            reason = "bare constant as a value is not supported "
                     "(fold it into a binary op)";
            return -1;
          case Expr::Kind::kRef:
            return compileRef(e, reason);
          case Expr::Kind::kBin:
            return compileBin(e, reason);
        }
        reason = "unknown expression";
        return -1;
    }

    /**
     * Compile a reference's *index* for a store/RMW/load: affine
     * indices need no tile (they become stream ops); otherwise the
     * index is materialized into a tile.
     */
    std::optional<int>
    compileIndex(const ExprPtr &index, std::string &reason)
    {
        const RefAnalysis a = analyzeExpr(index);
        if (a.affine)
            return std::nullopt; // stream form
        const int t = compile(index, reason);
        if (t < 0)
            return std::make_optional(-1);
        return t;
    }

    std::vector<PackedOp> ops;
    int nextTile = 0;

  private:
    int
    compileRef(const ExprPtr &e, std::string &reason)
    {
        const ExprPtr &index = e->kids[0];
        const RefAnalysis ia = analyzeExpr(index);
        PackedOp op;
        op.array = e->array;
        op.dtype = prog_.arrays[static_cast<unsigned>(e->array)].type;
        if (ia.affine) {
            op.kind = PackedOp::Kind::kSld;
        } else {
            const int idxTile = compile(index, reason);
            if (idxTile < 0)
                return -1;
            op.kind = PackedOp::Kind::kIld;
            op.src1 = idxTile;
        }
        op.dst = nextTile++;
        ops.push_back(op);
        return op.dst;
    }

    int
    compileBin(const ExprPtr &e, std::string &reason)
    {
        const ExprPtr &a = e->kids[0];
        const ExprPtr &b = e->kids[1];

        // Tile op scalar.
        if (b->kind == Expr::Kind::kConst) {
            const int src = compile(a, reason);
            if (src < 0)
                return -1;
            PackedOp op;
            op.kind = PackedOp::Kind::kAluS;
            op.op = e->op;
            op.src1 = src;
            op.scalar = b->constant;
            op.dst = nextTile++;
            op.dtype = DataType::kU64;
            ops.push_back(op);
            return op.dst;
        }

        const int sa = compile(a, reason);
        if (sa < 0)
            return -1;
        const int sb = compile(b, reason);
        if (sb < 0)
            return -1;
        PackedOp op;
        op.kind = PackedOp::Kind::kAluV;
        op.op = e->op;
        op.src1 = sa;
        op.src2 = sb;
        op.dst = nextTile++;
        op.dtype = DataType::kU64;
        ops.push_back(op);
        return op.dst;
    }

    const Program &prog_;
};

} // namespace

CodegenResult
lowerToDx100(const Program &prog)
{
    CodegenResult out;
    const Legality legal = checkLegality(prog);
    if (!legal.ok) {
        out.reason = legal.reason;
        return out;
    }

    ExprCompiler cc(prog);
    for (const auto &s : prog.body) {
        std::string reason;

        int condTile = -1;
        if (s.cond) {
            condTile = cc.compile(s.cond, reason);
            if (condTile < 0) {
                out.reason = "condition: " + reason;
                return out;
            }
        }

        const int valTile = cc.compile(s.value, reason);
        if (valTile < 0) {
            out.reason = "value: " + reason;
            return out;
        }

        const auto idxTile = cc.compileIndex(s.index, reason);
        if (idxTile && *idxTile < 0) {
            out.reason = "index: " + reason;
            return out;
        }

        PackedOp op;
        op.array = s.array;
        op.dtype = prog.arrays[static_cast<unsigned>(s.array)].type;
        op.cond = condTile;
        if (!idxTile) {
            // Affine store index -> streaming store.
            dx_assert(s.kind == Stmt::Kind::kStore,
                      "affine RMW should be a plain loop on the core");
            op.kind = PackedOp::Kind::kSst;
            op.src1 = valTile;
        } else if (s.kind == Stmt::Kind::kStore) {
            op.kind = PackedOp::Kind::kIst;
            op.src1 = *idxTile;
            op.src2 = valTile;
        } else {
            op.kind = PackedOp::Kind::kIrmw;
            op.op = s.rmwOp;
            op.src1 = *idxTile;
            op.src2 = valTile;
        }
        cc.ops.push_back(op);
    }

    out.ok = true;
    out.plan.ops = std::move(cc.ops);
    out.plan.tilesNeeded = static_cast<unsigned>(cc.nextTile);
    return out;
}

std::string
planToString(const Program &prog, const TilePlan &plan)
{
    std::ostringstream os;
    os << "for each tile of [" << prog.lo << ", " << prog.hi << "):\n";
    for (const auto &op : plan.ops)
        os << "  " << op.toString(prog) << "\n";
    return os.str();
}

} // namespace dx::loopir

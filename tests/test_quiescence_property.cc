/**
 * @file
 * Property test for the quiescence contract (DESIGN.md "Tick
 * scheduler contract"): on randomized micro traces, a component that
 * reports quiescent() may have its tick replaced by skipCycles(1)
 * with no observable difference. Because quiescence is
 * stall-accounting (a skipped cycle still accrues the stall counters
 * the naive tick would have bumped), the property is phrased as
 * tick-vs-skip *equivalence*, not "tick is a pure no-op".
 *
 * The harness drives two identical Systems in lockstep — one with the
 * naive tick() loop, one with tickScheduled()/skipTo() exactly as
 * System::run uses them — and compares full RunStats at every point
 * where the clocks align, so a violation is pinpointed to the first
 * divergent cycle and field rather than surfacing as a mismatched
 * total at the end of a run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr Cycle kCycleCap = 4u << 20;

/** One prepared System: workload + kernels installed, ready to tick. */
struct Rig
{
    std::unique_ptr<Workload> workload;
    std::unique_ptr<System> sys;
    std::vector<std::unique_ptr<cpu::Kernel>> kernels;
};

std::unique_ptr<Workload>
makeWorkload(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> kind(0, 3);
    std::uniform_int_distribution<std::size_t> sizeDist(256, 4096);
    const std::size_t n = sizeDist(rng);
    switch (kind(rng)) {
      case 0: {
        // Controlled-DRAM-pattern gather: the scheduler's hardest
        // case (deep queues, long admission-blocked stretches). The
        // pattern generator spreads indices across every bank, so the
        // element count must divide evenly across them.
        DramPatternParams pat;
        pat.rbhPercent =
            std::uniform_int_distribution<unsigned>(0, 100)(rng);
        pat.channelInterleave = rng() & 1;
        pat.bankGroupInterleave = rng() & 1;
        const std::size_t banked =
            1024 * std::uniform_int_distribution<std::size_t>(1, 4)(rng);
        return std::make_unique<GatherMicro>(GatherMicro::Mode::kFull,
                                             banked, pat);
      }
      case 1:
        return std::make_unique<GatherMicro>(
            rng() & 1 ? GatherMicro::Mode::kSpd
                      : GatherMicro::Mode::kFull,
            n);
      case 2:
        return std::make_unique<RmwMicro>(n, rng() & 1);
      default:
        return std::make_unique<ScatterMicro>(n, rng() & 1);
    }
}

SystemConfig
makeConfig(std::mt19937 &rng, TickPolicy policy)
{
    SystemConfig cfg;
    switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
      case 0:
        cfg = SystemConfig::baseline();
        break;
      case 1:
        cfg = SystemConfig::withDx100();
        break;
      default:
        cfg = SystemConfig::withDmp();
        break;
    }
    cfg.tickPolicy = policy;
    return cfg;
}

Rig
makeRig(unsigned seed, TickPolicy policy)
{
    // Same seed => same workload/config on both sides of the pair.
    std::mt19937 rng(seed);
    Rig r;
    r.workload = makeWorkload(rng);
    r.sys = std::make_unique<System>(makeConfig(rng, policy));
    r.workload->init(*r.sys);
    const bool dx = r.sys->config().dx100Instances > 0;
    for (unsigned c = 0; c < r.sys->cores(); ++c) {
        r.kernels.push_back(r.workload->makeKernel(*r.sys, c, dx));
        r.sys->setKernel(c, r.kernels.back().get());
    }
    return r;
}

std::string
diffStats(const RunStats &naive, const RunStats &sched)
{
    std::ostringstream os;
    std::vector<double> b;
    sched.forEachField(
        [&](const char *, auto v) { b.push_back(static_cast<double>(v)); });
    std::size_t i = 0;
    naive.forEachField([&](const char *name, auto v) {
        if (static_cast<double>(v) != b[i]) {
            os << "  " << name << ": naive=" << +v
               << " scheduled=" << b[i] << "\n";
        }
        ++i;
    });
    return os.str();
}

/**
 * Advance the scheduled rig exactly as System::run does (one
 * tickScheduled, then a fused fast-forward when every component
 * skipped), then march the naive rig to the same cycle and compare.
 */
void
runLockstep(unsigned seed)
{
    Rig naive = makeRig(seed, TickPolicy::kNaive);
    Rig sched = makeRig(seed, TickPolicy::kQuiescent);
    SCOPED_TRACE("seed " + std::to_string(seed) + ", workload " +
                 naive.workload->name());

    while (!sched.sys->drained() && sched.sys->now() < kCycleCap) {
        const Cycle horizon = sched.sys->tickScheduled();
        if (horizon > sched.sys->now() + 1)
            sched.sys->skipTo(horizon - 1);
        while (naive.sys->now() < sched.sys->now())
            naive.sys->tick();
        const RunStats a = naive.sys->collectStats();
        const RunStats b = sched.sys->collectStats();
        if (!(a == b)) {
            FAIL() << "first divergence at cycle " << sched.sys->now()
                   << ":\n"
                   << diffStats(a, b);
        }
    }
    ASSERT_LT(sched.sys->now(), kCycleCap) << "scheduled run wedged";
    // The naive side must agree that the run is over — quiescence must
    // not terminate a run early (or late) relative to the reference.
    EXPECT_TRUE(naive.sys->drained());
    EXPECT_EQ(naive.sys->now(), sched.sys->now());
    EXPECT_TRUE(naive.workload->verify(*naive.sys));
    EXPECT_TRUE(sched.workload->verify(*sched.sys));
}

} // namespace

TEST(QuiescenceProperty, LockstepTickSkipEquivalence)
{
    for (unsigned seed = 1; seed <= 12; ++seed)
        runLockstep(seed);
}

// The standalone fast-forward path: quiescentHorizon() promises that
// while *all* components are quiescent nothing can act before the
// horizon, so a loop that only ever skipTo's proven-quiescent
// stretches (and naive-ticks everything else) must match the naive
// reference bit-for-bit too. This exercises quiescentHorizon()/
// skipTo() as an independent scheduling mode — tickScheduled()'s
// fused horizon shares the soundness argument but not the code path.
TEST(QuiescenceProperty, HorizonDrivenSkipMatchesNaive)
{
    for (unsigned seed = 100; seed < 104; ++seed) {
        Rig naive = makeRig(seed, TickPolicy::kNaive);
        Rig sched = makeRig(seed, TickPolicy::kQuiescent);
        SCOPED_TRACE("seed " + std::to_string(seed) + ", workload " +
                     naive.workload->name());
        unsigned fastForwards = 0;
        bool diverged = false;
        while (!sched.sys->drained() && sched.sys->now() < kCycleCap) {
            const Cycle horizon = sched.sys->quiescentHorizon();
            if (horizon > sched.sys->now() + 1) {
                sched.sys->skipTo(horizon - 1);
                ++fastForwards;
            } else {
                sched.sys->tick();
            }
            while (naive.sys->now() < sched.sys->now())
                naive.sys->tick();
            const RunStats a = naive.sys->collectStats();
            const RunStats b = sched.sys->collectStats();
            if (!(a == b)) {
                ADD_FAILURE()
                    << "first divergence at cycle " << sched.sys->now()
                    << ":\n"
                    << diffStats(a, b);
                diverged = true;
                break;
            }
        }
        if (diverged)
            continue;
        ASSERT_LT(sched.sys->now(), kCycleCap) << "run wedged";
        EXPECT_TRUE(sched.workload->verify(*sched.sys));
        // A trace that never fast-forwards would make this test
        // vacuous for the skip path.
        EXPECT_GT(fastForwards, 0u) << "trace never fast-forwarded";
    }
}

/**
 * @file
 * Cycle-level out-of-order core model.
 *
 * Models the structures that bound memory-level parallelism in the
 * paper's baseline (Table 3): issue width, ROB, load and store queues,
 * cache MSHRs (via the attached hierarchy), the dependence chains between
 * index loads / address arithmetic / indirect accesses, and x86-style
 * locked RMW semantics (issue at ROB head with drained store buffer,
 * fencing younger memory ops). Fetch/decode details and branch
 * prediction are intentionally not modeled; every committed micro-op
 * counts as one instruction.
 */

#ifndef DX_CPU_CORE_HH
#define DX_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/cache_if.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/microop.hh"
#include "cpu/mmio.hh"

namespace dx::cpu
{

class Core : public cache::CacheRespSink, public OpEmitter
{
  public:
    struct Config
    {
        unsigned width = 8;        //!< dispatch/commit width
        unsigned robSize = 224;
        unsigned lqSize = 72;
        unsigned sqSize = 56;
        unsigned loadPorts = 2;    //!< loads issued to L1 per cycle
        unsigned storeDrain = 1;   //!< post-commit stores to L1 per cycle
        unsigned mmioLatency = 40; //!< core->device one-way, cycles
        unsigned pollInterval = 60;  //!< wait-loop poll period
        unsigned pollInstrCost = 3;  //!< spin-loop instructions per poll
    };

    struct Stats
    {
        Counter committedOps;
        Counter committedLoads;
        Counter committedStores;
        Counter committedRmws;
        Counter waitCycles;      //!< cycles stalled in kDxWait at head
        Counter robStallCycles;  //!< dispatch blocked: ROB full
        Counter lqStallCycles;
        Counter sqStallCycles;
        std::uint64_t lqOccupancyAccum = 0;
        std::uint64_t robOccupancyAccum = 0;
        std::uint64_t cycles = 0;
    };

    Core(const Config &cfg, int id, cache::CachePort *l1);

    /** Attach the kernel supplying this core's op stream. */
    void setKernel(Kernel *kernel) { kernel_ = kernel; }

    /** Attach the MMIO device (DX100 instance) visible to this core. */
    void setMmioDevice(MmioDevice *dev) { mmio_ = dev; }

    /** Advance one core cycle. */
    void tick();

    /** Kernel exhausted and every buffer drained. */
    bool done() const;

    // OpEmitter: queue an op into the front-end buffer.
    SeqNum emit(const MicroOp &op) override;

    // CacheRespSink: load/store/RMW completions from L1.
    void cacheResponse(std::uint64_t tag) override;

    const Stats &stats() const { return stats_; }
    int id() const { return id_; }

  private:
    enum class EntryState : std::uint8_t
    {
        kWaiting,   //!< dependencies outstanding
        kReady,     //!< in the ready queue
        kIssued,    //!< executing
        kComplete,  //!< result available
    };

    struct RobEntry
    {
        MicroOp op;
        EntryState state = EntryState::kWaiting;
        unsigned depsLeft = 0;
        std::vector<SeqNum> dependents;
        bool headBlocked = false; //!< kRmw/kDxWait: wait for ROB head
    };

    // Pipeline stages, called in tick().
    void refillOpBuffer();
    void dispatch();
    void issue();
    void commit();
    void drainStores();
    void drainMmio();

    RobEntry &entry(SeqNum seq);
    const RobEntry &entry(SeqNum seq) const;
    bool inRob(SeqNum seq) const;
    bool depSatisfied(SeqNum dep) const;
    void markComplete(SeqNum seq);
    void wakeDependents(RobEntry &e);
    bool issueMemOp(RobEntry &e, SeqNum seq);
    bool fencePending(SeqNum seq) const;

    const Config cfg_;
    const int id_;
    cache::CachePort *const l1_;
    Kernel *kernel_ = nullptr;
    MmioDevice *mmio_ = nullptr;

    Cycle now_ = 0;

    // Front-end buffer between the kernel and dispatch.
    std::deque<MicroOp> opBuffer_;
    SeqNum nextSeq_ = 1;     //!< seq of the next op to be *emitted*
    SeqNum bufferHeadSeq_ = 1; //!< seq of opBuffer_.front()

    // ROB ring: seq of the oldest in-flight op is robHead_.
    std::vector<RobEntry> rob_;
    SeqNum robHead_ = 1;
    SeqNum robTail_ = 1; //!< seq the next dispatched op will get
    unsigned lqUsed_ = 0;
    unsigned sqUsed_ = 0;

    std::deque<SeqNum> readyQueue_;
    std::vector<SeqNum> fenceBlocked_; //!< mem ops held by an older fence

    // Execution completion wheel for fixed-latency ALU ops.
    std::vector<std::vector<SeqNum>> wheel_;
    unsigned wheelPos_ = 0;

    // In-flight fencing ops (kRmw/kFence), oldest first.
    std::deque<SeqNum> fencing_;

    // Post-commit L1 store writes awaiting completion (SQ slots held).
    unsigned inflightStoreWrites_ = 0;

    // Post-commit store drain: stores awaiting L1 acceptance. The SQ
    // slot is released when the L1 write completes.
    std::deque<MicroOp> storeBuffer_;
    // Post-commit MMIO stores: delivered in order after mmioLatency.
    std::deque<std::pair<Cycle, MicroOp>> mmioBuffer_;

    Cycle nextPollAt_ = 0;

    Stats stats_;
};

} // namespace dx::cpu

#endif // DX_CPU_CORE_HH

#include "workloads/gap.hh"

#include <deque>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::AluOp;
using runtime::DataType;

namespace
{

void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

/** Host BFS computing depths from vertex 0. */
std::vector<std::uint32_t>
hostBfs(const CsrGraph &g)
{
    constexpr std::uint32_t kUnset = ~std::uint32_t{0};
    std::vector<std::uint32_t> depth(g.nodes, kUnset);
    std::deque<std::uint32_t> queue;
    depth[0] = 0;
    queue.push_back(0);
    while (!queue.empty()) {
        const std::uint32_t v = queue.front();
        queue.pop_front();
        for (std::uint32_t j = g.rowPtr[v]; j < g.rowPtr[v + 1]; ++j) {
            const std::uint32_t w = g.col[j];
            if (depth[w] == kUnset) {
                depth[w] = depth[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return depth;
}

constexpr std::uint32_t kUnsetDepth = 0x3fffffffu;

} // namespace

// =====================================================================
// PR
// =====================================================================

PageRank::PageRank(Scale s)
{
    g_ = makeUniformGraph(static_cast<std::uint32_t>(s.of(1 << 18)),
                          15, 900);
}

void
PageRank::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const std::uint32_t n = g_.nodes;
    const std::uint32_t m = g_.edges();

    rowPtr_ = alloc.alloc((n + 1) * 4);
    col_ = alloc.alloc(Addr{m} * 4);
    contrib_ = alloc.alloc(Addr{n} * 8);
    newScore_ = alloc.alloc(Addr{n} * 8);
    edgeVal_ = alloc.alloc(Addr{m} * 8);

    Rng rng(901);
    for (std::uint32_t v = 0; v <= n; ++v)
        mem.write<std::uint32_t>(rowPtr_ + Addr{v} * 4, g_.rowPtr[v]);
    for (std::uint32_t j = 0; j < m; ++j)
        mem.write<std::uint32_t>(col_ + Addr{j} * 4, g_.col[j]);
    for (std::uint32_t v = 0; v < n; ++v) {
        // Fixed-point contributions: small integers keep the scattered
        // f64 accumulation exact under any ordering.
        mem.write<double>(contrib_ + Addr{v} * 8,
                          static_cast<double>(rng.below(32) + 1));
        mem.write<double>(newScore_ + Addr{v} * 8, 0.0);
    }

    registerAll(sys, col_, Addr{m} * 4);
    registerAll(sys, newScore_, Addr{n} * 8);
    registerAll(sys, edgeVal_, Addr{m} * 8);

    // Cores reset newScore and recompute contrib between iterations.
    sys.warmLlc(newScore_, Addr{n} * 8);
    sys.warmLlc(contrib_, Addr{n} * 8);
}

namespace
{

class PrBaseKernel : public LoopKernel
{
  public:
    PrBaseKernel(SimMemory &mem, const CsrGraph &g, Addr rowPtr,
                 Addr col, Addr contrib, Addr newScore, std::size_t bg,
                 std::size_t en)
        : LoopKernel(bg, en), mem_(mem), g_(g), rowPtr_(rowPtr),
          col_(col), contrib_(contrib), newScore_(newScore)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t u) override
    {
        const SeqNum l0 =
            e.load(rowPtr_ + u * 4, 4, pc::kAux, g_.rowPtr[u]);
        e.load(rowPtr_ + (u + 1) * 4, 4, pc::kAux, g_.rowPtr[u + 1]);
        const double cu = mem_.read<double>(contrib_ + u * 8);
        const SeqNum lc = e.load(contrib_ + u * 8, 8, pc::kValue,
                                 std::bit_cast<std::uint64_t>(cu), l0);
        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
             ++j) {
            const std::uint32_t v = g_.col[j];
            const SeqNum le =
                e.load(col_ + Addr{j} * 4, 4, pc::kIndex, v);
            const SeqNum calc = e.intOp(1, le);
            const Addr target = newScore_ + Addr{v} * 8;
            mem_.write<double>(target,
                               mem_.read<double>(target) + cu);
            e.rmw(target, 8, pc::kTarget, calc, lc);
        }
        e.intOp();
    }

  private:
    SimMemory &mem_;
    const CsrGraph &g_;
    Addr rowPtr_, col_, contrib_, newScore_;
};

/**
 * DX100 PR: the core materializes the per-edge contribution stream
 * C[j] = contrib[u] (cheap streaming stores), and DX100 turns the
 * scattered accumulation into SLD(E) + SLD(C) + IRMW(newScore).
 */
class PrDxKernel : public cpu::Kernel
{
  public:
    PrDxKernel(runtime::Dx100Runtime &rt, int coreId, SimMemory &mem,
               const CsrGraph &g, Addr col, Addr contrib,
               Addr newScore, Addr edgeVal, std::size_t rowBegin,
               std::size_t rowEnd)
        : rt_(rt), mem_(mem), g_(g), contrib_(contrib),
          edgeVal_(edgeVal), row_(rowBegin)
    {
        for (int k = 0; k < 2; ++k) {
            idxT_[k] = rt_.allocTile();
            valT_[k] = rt_.allocTile();
        }
        const std::size_t jb = g_.rowPtr[rowBegin];
        const std::size_t je = g_.rowPtr[rowEnd];
        tiled_ = std::make_unique<TiledDxKernel>(
            rt_, jb, je, rt_.tileElems(),
            [this, coreId, col, newScore](cpu::OpEmitter &e,
                                          unsigned buf, std::size_t tb,
                                          std::uint32_t cnt) {
                fillEdgeValues(e, tb, cnt);
                rt_.sld(e, coreId, DataType::kU32, col, idxT_[buf], tb,
                        cnt);
                rt_.sld(e, coreId, DataType::kF64, edgeVal_,
                        valT_[buf], tb, cnt);
                return rt_.irmw(e, coreId, DataType::kF64, AluOp::kAdd,
                                newScore, idxT_[buf], valT_[buf]);
            });
    }

    bool more() const override { return tiled_->more(); }
    void emitChunk(cpu::OpEmitter &e) override { tiled_->emitChunk(e); }

  private:
    void
    fillEdgeValues(cpu::OpEmitter &e, std::size_t tb,
                   std::uint32_t cnt)
    {
        for (std::uint32_t k = 0; k < cnt; ++k) {
            const std::size_t j = tb + k;
            while (j >= g_.rowPtr[row_ + 1])
                ++row_;
            const double cu = mem_.read<double>(contrib_ + row_ * 8);
            SeqNum lc = kNoSeq;
            if (j == g_.rowPtr[row_]) {
                lc = e.load(contrib_ + row_ * 8, 8, pc::kValue,
                            std::bit_cast<std::uint64_t>(cu));
            }
            mem_.write<double>(edgeVal_ + j * 8, cu);
            e.store(edgeVal_ + j * 8, 8, pc::kAux, lc);
        }
    }

    runtime::Dx100Runtime &rt_;
    SimMemory &mem_;
    const CsrGraph &g_;
    Addr contrib_, edgeVal_;
    std::size_t row_;
    unsigned idxT_[2], valT_[2];
    std::unique_ptr<TiledDxKernel> tiled_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
PageRank::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(g_.nodes, core, sys.cores());
    if (!dx100) {
        return std::make_unique<PrBaseKernel>(sys.memory(), g_,
                                              rowPtr_, col_, contrib_,
                                              newScore_, begin, end);
    }
    return std::make_unique<PrDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), sys.memory(),
        g_, col_, contrib_, newScore_, edgeVal_, begin, end);
}

bool
PageRank::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    std::vector<double> expect(g_.nodes, 0.0);
    for (std::uint32_t u = 0; u < g_.nodes; ++u) {
        const double cu = mem.read<double>(contrib_ + Addr{u} * 8);
        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1]; ++j)
            expect[g_.col[j]] += cu;
    }
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        if (mem.read<double>(newScore_ + Addr{v} * 8) != expect[v])
            return false;
    }
    return true;
}

// =====================================================================
// BFS (bottom-up step)
// =====================================================================

BfsBottomUp::BfsBottomUp(Scale s)
{
    g_ = makeUniformGraph(static_cast<std::uint32_t>(s.of(1 << 18)),
                          15, 700);
    hostDepth_ = hostBfs(g_);
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        if (hostDepth_[v] >= step_)
            unvisited_.push_back(v);
    }
}

void
BfsBottomUp::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const std::uint32_t n = g_.nodes;
    const std::uint32_t m = g_.edges();

    rowPtr_ = alloc.alloc((n + 1) * 4);
    col_ = alloc.alloc(Addr{m} * 4);
    depth_ = alloc.alloc(Addr{n} * 4);
    parent_ = alloc.alloc(Addr{n} * 4);
    u_ = alloc.alloc(unvisited_.size() * 4);

    for (std::uint32_t v = 0; v <= n; ++v)
        mem.write<std::uint32_t>(rowPtr_ + Addr{v} * 4, g_.rowPtr[v]);
    for (std::uint32_t j = 0; j < m; ++j)
        mem.write<std::uint32_t>(col_ + Addr{j} * 4, g_.col[j]);
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t d =
            hostDepth_[v] < step_ ? hostDepth_[v] : kUnsetDepth;
        mem.write<std::uint32_t>(depth_ + Addr{v} * 4, d);
        mem.write<std::uint32_t>(parent_ + Addr{v} * 4,
                                 ~std::uint32_t{0});
    }
    for (std::size_t i = 0; i < unvisited_.size(); ++i)
        mem.write<std::uint32_t>(u_ + i * 4, unvisited_[i]);

    registerAll(sys, col_, Addr{m} * 4);
    registerAll(sys, depth_, Addr{n} * 4);
    registerAll(sys, parent_, Addr{n} * 4);
    registerAll(sys, rowPtr_, (n + 1) * 4);
    registerAll(sys, u_, unvisited_.size() * 4);

    // The previous BFS step wrote depth[] through the cores, so it is
    // cache-resident when this step begins.
    sys.warmLlc(depth_, Addr{n} * 4);
}

namespace
{

class BfsBaseKernel : public LoopKernel
{
  public:
    BfsBaseKernel(SimMemory &mem, const CsrGraph &g,
                  const std::vector<std::uint32_t> &unvisited,
                  Addr rowPtr, Addr col, Addr depth, Addr parent,
                  std::uint32_t step, std::size_t bg, std::size_t en)
        : LoopKernel(bg, en), mem_(mem), g_(g), unvisited_(unvisited),
          rowPtr_(rowPtr), col_(col), depth_(depth), parent_(parent),
          step_(step)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const std::uint32_t u = unvisited_[i];
        const SeqNum lu = e.load(
            // U list is streamed
            u_addr(i), 4, pc::kAux, u);
        const SeqNum l0 = e.load(rowPtr_ + Addr{u} * 4, 4, pc::kAux,
                                 g_.rowPtr[u], lu);
        e.load(rowPtr_ + Addr{u} * 4 + 4, 4, pc::kAux,
               g_.rowPtr[u + 1], lu);
        (void)l0;

        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
             ++j) {
            const std::uint32_t w = g_.col[j];
            const SeqNum le =
                e.load(col_ + Addr{j} * 4, 4, pc::kIndex, w);
            const SeqNum calc = e.intOp(1, le);
            const auto dw =
                mem_.read<std::uint32_t>(depth_ + Addr{w} * 4);
            const SeqNum ld = e.load(depth_ + Addr{w} * 4, 4,
                                     pc::kTarget, dw, calc);
            e.intOp(1, ld); // compare + branch
            if (dw == step_ - 1) {
                mem_.write<std::uint32_t>(depth_ + Addr{u} * 4, step_);
                mem_.write<std::uint32_t>(parent_ + Addr{u} * 4, w);
                e.store(depth_ + Addr{u} * 4, 4, pc::kOut, ld);
                e.store(parent_ + Addr{u} * 4, 4, pc::kOut, le);
                break; // bottom-up early exit
            }
        }
        e.intOp();
    }

  private:
    Addr u_addr(std::size_t i) const { return uBase_ + i * 4; }

  public:
    Addr uBase_ = 0;

  private:
    SimMemory &mem_;
    const CsrGraph &g_;
    const std::vector<std::uint32_t> &unvisited_;
    Addr rowPtr_, col_, depth_, parent_;
    std::uint32_t step_;
};

/**
 * DX100 BFS: SLD the unvisited chunk, ILD the range bounds, fuse with
 * RNG, gather neighbours and their depths, build the frontier
 * condition with ALUS, and conditionally IST depth/parent. Tiles are
 * aggressively reused to stay within the per-core budget (8 of 32).
 */
class BfsDxKernel : public cpu::Kernel
{
  public:
    BfsDxKernel(runtime::Dx100Runtime &rt, int coreId, Addr rowPtr,
                Addr col, Addr depth, Addr parent, Addr uArr,
                std::uint32_t step, std::size_t bg, std::size_t en)
        : rt_(rt), coreId_(coreId), rowPtr_(rowPtr), col_(col),
          depth_(depth), parent_(parent), uArr_(uArr), step_(step),
          pos_(bg), end_(en)
    {
        tU_ = rt_.allocTile();
        tU1_ = rt_.allocTile(); // K+1, later U[TO] gather
        tLo_ = rt_.allocTile();
        tHi_ = rt_.allocTile();
        tO_ = rt_.allocTile();  // later the constant-depth tile
        tJ_ = rt_.allocTile();  // j values, then gathered neighbours
        tCond_ = rt_.allocTile();
    }

    bool more() const override { return pos_ < end_; }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        if (chunkLeft_ == 0) {
            chunkBegin_ = pos_;
            chunkCount_ = static_cast<std::uint32_t>(
                std::min<std::size_t>(rt_.tileElems() / 2,
                                      end_ - pos_));
            rt_.sld(e, coreId_, DataType::kU32, uArr_, tU_,
                    chunkBegin_, chunkCount_);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tLo_, tU_);
            rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tU1_,
                     tU_, 1);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tHi_, tU1_);
            chunkConsumed_ = 0;
            chunkLeft_ = chunkCount_;
        }

        std::uint32_t consumed = 0;
        rt_.rng(e, coreId_, tO_, tJ_, tLo_, tHi_, chunkConsumed_,
                &consumed);
        dx_assert(consumed > 0, "adjacency list longer than a tile");

        // Gather neighbours in place over the fused j tile.
        rt_.ild(e, coreId_, DataType::kU32, col_, tJ_, tJ_);
        rt_.ild(e, coreId_, DataType::kU32, depth_, tCond_, tJ_);
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kEq, tCond_,
                 tCond_, step_ - 1);
        // u per inner element: gather U[chunkBegin + TO].
        rt_.ild(e, coreId_, DataType::kU32,
                uArr_ + Addr{chunkBegin_} * 4, tU1_, tO_);
        // Conditional frontier stores: parent[u] = neighbour.
        rt_.ist(e, coreId_, DataType::kU32, parent_, tU1_, tJ_,
                tCond_);
        // depth[u] = step: constant tile built in tO_ (free now).
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kMul, tO_, tO_, 0);
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tO_, tO_,
                 step_);
        const std::uint64_t tok = rt_.ist(
            e, coreId_, DataType::kU32, depth_, tU1_, tO_, tCond_);
        rt_.wait(e, tok);

        chunkConsumed_ += consumed;
        chunkLeft_ -= consumed;
        pos_ += consumed;
    }

  private:
    runtime::Dx100Runtime &rt_;
    int coreId_;
    Addr rowPtr_, col_, depth_, parent_, uArr_;
    std::uint32_t step_;
    std::size_t pos_, end_;
    std::size_t chunkBegin_ = 0;
    std::uint32_t chunkCount_ = 0;
    std::uint32_t chunkConsumed_ = 0;
    std::uint32_t chunkLeft_ = 0;
    unsigned tU_, tU1_, tLo_, tHi_, tO_, tJ_, tCond_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
BfsBottomUp::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] =
        coreSlice(unvisited_.size(), core, sys.cores());
    if (!dx100) {
        auto k = std::make_unique<BfsBaseKernel>(
            sys.memory(), g_, unvisited_, rowPtr_, col_, depth_,
            parent_, step_, begin, end);
        k->uBase_ = u_;
        return k;
    }
    return std::make_unique<BfsDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), rowPtr_, col_,
        depth_, parent_, u_, step_, begin, end);
}

bool
BfsBottomUp::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (const std::uint32_t u : unvisited_) {
        bool expectFound = false;
        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
             ++j) {
            if (hostDepth_[g_.col[j]] == step_ - 1) {
                expectFound = true;
                break;
            }
        }
        const auto d = mem.read<std::uint32_t>(depth_ + Addr{u} * 4);
        const auto p = mem.read<std::uint32_t>(parent_ + Addr{u} * 4);
        if (expectFound) {
            if (d != step_)
                return false;
            // Parent must be *some* frontier neighbour of u.
            bool ok = false;
            for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
                 ++j) {
                if (g_.col[j] == p &&
                    hostDepth_[p] == step_ - 1) {
                    ok = true;
                    break;
                }
            }
            if (!ok)
                return false;
        } else {
            if (d != kUnsetDepth || p != ~std::uint32_t{0})
                return false;
        }
    }
    return true;
}

// =====================================================================
// BFS (top-down step; paper footnote 1 extension)
// =====================================================================

BfsTopDown::BfsTopDown(Scale s)
{
    g_ = makeUniformGraph(static_cast<std::uint32_t>(s.of(1 << 18)),
                          15, 710);
    hostDepth_ = hostBfs(g_);

    // Expand at the most populous level: that is where top-down BFS
    // spends its time before direction-optimization flips bottom-up.
    std::vector<std::uint32_t> perLevel;
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        const std::uint32_t d = hostDepth_[v];
        if (d == ~std::uint32_t{0})
            continue;
        if (perLevel.size() <= d)
            perLevel.resize(d + 1, 0);
        ++perLevel[d];
    }
    std::uint32_t best = 0;
    for (std::uint32_t d = 1; d < perLevel.size(); ++d) {
        if (perLevel[d] > perLevel[best])
            best = d;
    }
    step_ = best + 1;
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        if (hostDepth_[v] == step_ - 1)
            frontier_.push_back(v);
    }
}

void
BfsTopDown::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const std::uint32_t n = g_.nodes;
    const std::uint32_t m = g_.edges();

    rowPtr_ = alloc.alloc((n + 1) * 4);
    col_ = alloc.alloc(Addr{m} * 4);
    depth_ = alloc.alloc(Addr{n} * 4);
    parent_ = alloc.alloc(Addr{n} * 4);
    f_ = alloc.alloc(frontier_.size() * 4);

    for (std::uint32_t v = 0; v <= n; ++v)
        mem.write<std::uint32_t>(rowPtr_ + Addr{v} * 4, g_.rowPtr[v]);
    for (std::uint32_t j = 0; j < m; ++j)
        mem.write<std::uint32_t>(col_ + Addr{j} * 4, g_.col[j]);
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t d =
            hostDepth_[v] < step_ ? hostDepth_[v] : kUnsetDepth;
        mem.write<std::uint32_t>(depth_ + Addr{v} * 4, d);
        mem.write<std::uint32_t>(parent_ + Addr{v} * 4,
                                 ~std::uint32_t{0});
    }
    for (std::size_t i = 0; i < frontier_.size(); ++i)
        mem.write<std::uint32_t>(f_ + i * 4, frontier_[i]);

    registerAll(sys, col_, Addr{m} * 4);
    registerAll(sys, depth_, Addr{n} * 4);
    registerAll(sys, parent_, Addr{n} * 4);
    registerAll(sys, rowPtr_, (n + 1) * 4);
    registerAll(sys, f_, frontier_.size() * 4);
    sys.warmLlc(depth_, Addr{n} * 4);
}

namespace
{

class BfsTdBaseKernel : public LoopKernel
{
  public:
    BfsTdBaseKernel(SimMemory &mem, const CsrGraph &g,
                    const std::vector<std::uint32_t> &frontier,
                    Addr fArr, Addr rowPtr, Addr col, Addr depth,
                    Addr parent, std::uint32_t step, std::size_t bg,
                    std::size_t en)
        : LoopKernel(bg, en), mem_(mem), g_(g), frontier_(frontier),
          fArr_(fArr), rowPtr_(rowPtr), col_(col), depth_(depth),
          parent_(parent), step_(step)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const std::uint32_t u = frontier_[i];
        const SeqNum lu = e.load(fArr_ + i * 4, 4, pc::kAux, u);
        e.load(rowPtr_ + Addr{u} * 4, 4, pc::kAux, g_.rowPtr[u], lu);
        e.load(rowPtr_ + Addr{u} * 4 + 4, 4, pc::kAux,
               g_.rowPtr[u + 1], lu);
        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
             ++j) {
            const std::uint32_t v = g_.col[j];
            const SeqNum le =
                e.load(col_ + Addr{j} * 4, 4, pc::kIndex, v);
            const SeqNum calc = e.intOp(1, le);
            const auto dv =
                mem_.read<std::uint32_t>(depth_ + Addr{v} * 4);
            const SeqNum ld = e.load(depth_ + Addr{v} * 4, 4,
                                     pc::kTarget, dv, calc);
            e.intOp(1, ld);
            if (dv == kUnsetDepth) {
                mem_.write<std::uint32_t>(depth_ + Addr{v} * 4,
                                          step_);
                mem_.write<std::uint32_t>(parent_ + Addr{v} * 4, u);
                e.store(depth_ + Addr{v} * 4, 4, pc::kOut, ld);
                e.store(parent_ + Addr{v} * 4, 4, pc::kOut, le, lu);
            }
        }
        e.intOp();
    }

  private:
    SimMemory &mem_;
    const CsrGraph &g_;
    const std::vector<std::uint32_t> &frontier_;
    Addr fArr_, rowPtr_, col_, depth_, parent_;
    std::uint32_t step_;
};

/** DX100 top-down step: fuse frontier adjacency ranges, gather
 *  neighbour depths, and conditionally claim the undiscovered. */
class BfsTdDxKernel : public cpu::Kernel
{
  public:
    BfsTdDxKernel(runtime::Dx100Runtime &rt, int coreId, Addr rowPtr,
                  Addr col, Addr depth, Addr parent, Addr fArr,
                  std::uint32_t step, std::size_t bg, std::size_t en)
        : rt_(rt), coreId_(coreId), rowPtr_(rowPtr), col_(col),
          depth_(depth), parent_(parent), fArr_(fArr), step_(step),
          pos_(bg), end_(en)
    {
        tF_ = rt_.allocTile();
        tF1_ = rt_.allocTile();
        tLo_ = rt_.allocTile();
        tHi_ = rt_.allocTile();
        tO_ = rt_.allocTile();
        tJ_ = rt_.allocTile();
        tCond_ = rt_.allocTile();
    }

    bool more() const override { return pos_ < end_; }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        if (chunkLeft_ == 0) {
            chunkBegin_ = pos_;
            chunkCount_ = static_cast<std::uint32_t>(
                std::min<std::size_t>(rt_.tileElems() / 2,
                                      end_ - pos_));
            rt_.sld(e, coreId_, DataType::kU32, fArr_, tF_,
                    chunkBegin_, chunkCount_);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tLo_, tF_);
            rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tF1_,
                     tF_, 1);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tHi_, tF1_);
            chunkConsumed_ = 0;
            chunkLeft_ = chunkCount_;
        }

        std::uint32_t consumed = 0;
        rt_.rng(e, coreId_, tO_, tJ_, tLo_, tHi_, chunkConsumed_,
                &consumed);
        dx_assert(consumed > 0, "adjacency list longer than a tile");

        // v = E[j] (in place); cond = (depth[v] == unset).
        rt_.ild(e, coreId_, DataType::kU32, col_, tJ_, tJ_);
        rt_.ild(e, coreId_, DataType::kU32, depth_, tCond_, tJ_);
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kEq, tCond_,
                 tCond_, kUnsetDepth);
        // u per inner element: F[chunkBegin + TO].
        rt_.ild(e, coreId_, DataType::kU32,
                fArr_ + Addr{chunkBegin_} * 4, tF1_, tO_);
        rt_.ist(e, coreId_, DataType::kU32, parent_, tJ_, tF1_,
                tCond_);
        // depth[v] = step: constant tile built in tO_.
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kMul, tO_, tO_,
                 0);
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tO_, tO_,
                 step_);
        const std::uint64_t tok = rt_.ist(
            e, coreId_, DataType::kU32, depth_, tJ_, tO_, tCond_);
        rt_.wait(e, tok);

        chunkConsumed_ += consumed;
        chunkLeft_ -= consumed;
        pos_ += consumed;
    }

  private:
    runtime::Dx100Runtime &rt_;
    int coreId_;
    Addr rowPtr_, col_, depth_, parent_, fArr_;
    std::uint32_t step_;
    std::size_t pos_, end_;
    std::size_t chunkBegin_ = 0;
    std::uint32_t chunkCount_ = 0;
    std::uint32_t chunkConsumed_ = 0;
    std::uint32_t chunkLeft_ = 0;
    unsigned tF_, tF1_, tLo_, tHi_, tO_, tJ_, tCond_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
BfsTopDown::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] =
        coreSlice(frontier_.size(), core, sys.cores());
    if (!dx100) {
        return std::make_unique<BfsTdBaseKernel>(
            sys.memory(), g_, frontier_, f_, rowPtr_, col_, depth_,
            parent_, step_, begin, end);
    }
    return std::make_unique<BfsTdDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), rowPtr_, col_,
        depth_, parent_, f_, step_, begin, end);
}

bool
BfsTopDown::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    // A vertex is discovered iff it is undiscovered at step-1 and has
    // a frontier neighbour; its parent must be such a neighbour.
    std::vector<bool> hasFrontierParent(g_.nodes, false);
    for (const std::uint32_t u : frontier_) {
        for (std::uint32_t j = g_.rowPtr[u]; j < g_.rowPtr[u + 1];
             ++j) {
            if (hostDepth_[g_.col[j]] >= step_)
                hasFrontierParent[g_.col[j]] = true;
        }
    }
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        const auto d = mem.read<std::uint32_t>(depth_ + Addr{v} * 4);
        const auto p = mem.read<std::uint32_t>(parent_ + Addr{v} * 4);
        if (hostDepth_[v] < step_) {
            if (d != hostDepth_[v])
                return false;
            continue;
        }
        if (hasFrontierParent[v]) {
            if (d != step_)
                return false;
            if (p >= g_.nodes || hostDepth_[p] != step_ - 1)
                return false;
        } else {
            if (d != kUnsetDepth || p != ~std::uint32_t{0})
                return false;
        }
    }
    return true;
}

// =====================================================================
// BC (one dependency-accumulation level)
// =====================================================================

BetweennessCentrality::BetweennessCentrality(Scale s)
{
    g_ = makeUniformGraph(static_cast<std::uint32_t>(s.of(1 << 18)),
                          15, 650);
    hostDepth_ = hostBfs(g_);

    // Accumulate at the most populous BFS level: that is where the
    // dependency pass spends its time in the full algorithm.
    std::vector<std::uint32_t> perLevel;
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        const std::uint32_t d = hostDepth_[v];
        if (d == ~std::uint32_t{0} || d == 0)
            continue;
        if (perLevel.size() <= d)
            perLevel.resize(d + 1, 0);
        ++perLevel[d];
    }
    std::uint32_t best = 1;
    for (std::uint32_t d = 2; d < perLevel.size(); ++d) {
        if (perLevel[d] > perLevel[best])
            best = d;
    }
    d_ = best;
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        if (hostDepth_[v] == d_)
            level_.push_back(v);
    }
}

void
BetweennessCentrality::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();
    const std::uint32_t n = g_.nodes;
    const std::uint32_t m = g_.edges();

    rowPtr_ = alloc.alloc((n + 1) * 4);
    col_ = alloc.alloc(Addr{m} * 4);
    depth_ = alloc.alloc(Addr{n} * 4);
    sigma_ = alloc.alloc(Addr{n} * 4);
    delta_ = alloc.alloc(Addr{n} * 4); //!< fixed-point deltas
    f_ = alloc.alloc(Addr{n} * 4);
    w_ = alloc.alloc(level_.size() * 4);

    Rng rng(651);
    for (std::uint32_t v = 0; v <= n; ++v)
        mem.write<std::uint32_t>(rowPtr_ + Addr{v} * 4, g_.rowPtr[v]);
    for (std::uint32_t j = 0; j < m; ++j)
        mem.write<std::uint32_t>(col_ + Addr{j} * 4, g_.col[j]);
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t d =
            hostDepth_[v] == ~std::uint32_t{0} ? kUnsetDepth
                                               : hostDepth_[v];
        mem.write<std::uint32_t>(depth_ + Addr{v} * 4, d);
        mem.write<std::uint32_t>(
            sigma_ + Addr{v} * 4,
            static_cast<std::uint32_t>(rng.below(8) + 1));
        mem.write<std::uint32_t>(delta_ + Addr{v} * 4, 0);
        mem.write<std::uint32_t>(
            f_ + Addr{v} * 4,
            static_cast<std::uint32_t>(rng.below(8) + 1));
    }
    for (std::size_t i = 0; i < level_.size(); ++i)
        mem.write<std::uint32_t>(w_ + i * 4, level_[i]);

    registerAll(sys, col_, Addr{m} * 4);
    registerAll(sys, depth_, Addr{n} * 4);
    registerAll(sys, sigma_, Addr{n} * 4);
    registerAll(sys, delta_, Addr{n} * 4);
    registerAll(sys, f_, Addr{n} * 4);
    registerAll(sys, rowPtr_, (n + 1) * 4);
    registerAll(sys, w_, level_.size() * 4);

    // The forward sigma pass and deeper delta levels ran just before
    // this accumulation level; their arrays enter cache-resident.
    sys.warmLlc(depth_, Addr{n} * 4);
    sys.warmLlc(sigma_, Addr{n} * 4);
    sys.warmLlc(delta_, Addr{n} * 4);
}

namespace
{

class BcBaseKernel : public LoopKernel
{
  public:
    BcBaseKernel(SimMemory &mem, const CsrGraph &g,
                 const std::vector<std::uint32_t> &level, Addr wArr,
                 Addr rowPtr, Addr col, Addr depth, Addr sigma,
                 Addr delta, Addr f, std::uint32_t d, std::size_t bg,
                 std::size_t en)
        : LoopKernel(bg, en), mem_(mem), g_(g), level_(level),
          wArr_(wArr), rowPtr_(rowPtr), col_(col), depth_(depth),
          sigma_(sigma), delta_(delta), f_(f), d_(d)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const std::uint32_t w = level_[i];
        const SeqNum lw = e.load(wArr_ + i * 4, 4, pc::kAux, w);
        e.load(rowPtr_ + Addr{w} * 4, 4, pc::kAux, g_.rowPtr[w], lw);
        e.load(rowPtr_ + Addr{w} * 4 + 4, 4, pc::kAux,
               g_.rowPtr[w + 1], lw);
        const auto fw = mem_.read<std::uint32_t>(f_ + Addr{w} * 4);
        const SeqNum lf = e.load(f_ + Addr{w} * 4, 4, pc::kValue, fw,
                                 lw);

        for (std::uint32_t j = g_.rowPtr[w]; j < g_.rowPtr[w + 1];
             ++j) {
            const std::uint32_t v = g_.col[j];
            const SeqNum le =
                e.load(col_ + Addr{j} * 4, 4, pc::kIndex, v);
            const SeqNum calc = e.intOp(1, le);
            const auto dv =
                mem_.read<std::uint32_t>(depth_ + Addr{v} * 4);
            const SeqNum ld = e.load(depth_ + Addr{v} * 4, 4,
                                     pc::kTarget, dv, calc);
            e.intOp(1, ld);
            if (dv != d_ - 1)
                continue;
            const auto sv =
                mem_.read<std::uint32_t>(sigma_ + Addr{v} * 4);
            const SeqNum ls =
                e.load(sigma_ + Addr{v} * 4, 4, pc::kAux, sv, calc);
            const SeqNum mul = e.intOp(3, ls, lf);
            const Addr target = delta_ + Addr{v} * 4;
            mem_.write<std::uint32_t>(
                target,
                mem_.read<std::uint32_t>(target) + sv * fw);
            e.rmw(target, 4, pc::kOut, mul);
        }
        e.intOp();
    }

  private:
    SimMemory &mem_;
    const CsrGraph &g_;
    const std::vector<std::uint32_t> &level_;
    Addr wArr_, rowPtr_, col_, depth_, sigma_, delta_, f_;
    std::uint32_t d_;
};

/** DX100 BC: fused ranges + chained gathers + conditional IRMW. */
class BcDxKernel : public cpu::Kernel
{
  public:
    BcDxKernel(runtime::Dx100Runtime &rt, int coreId, Addr rowPtr,
               Addr col, Addr depth, Addr sigma, Addr delta, Addr f,
               Addr wArr, std::uint32_t d, std::size_t bg,
               std::size_t en)
        : rt_(rt), coreId_(coreId), rowPtr_(rowPtr), col_(col),
          depth_(depth), sigma_(sigma), delta_(delta), f_(f),
          wArr_(wArr), d_(d), pos_(bg), end_(en)
    {
        tW_ = rt_.allocTile();
        tW1_ = rt_.allocTile(); // W+1 -> W[TO] -> f[W[TO]]
        tLo_ = rt_.allocTile();
        tHi_ = rt_.allocTile();
        tO_ = rt_.allocTile();  // outer ids, then sigma products
        tJ_ = rt_.allocTile();  // j values, then gathered vertices
        tCond_ = rt_.allocTile();
    }

    bool more() const override { return pos_ < end_; }

    void
    emitChunk(cpu::OpEmitter &e) override
    {
        if (chunkLeft_ == 0) {
            chunkBegin_ = pos_;
            chunkCount_ = static_cast<std::uint32_t>(
                std::min<std::size_t>(rt_.tileElems() / 2,
                                      end_ - pos_));
            rt_.sld(e, coreId_, DataType::kU32, wArr_, tW_,
                    chunkBegin_, chunkCount_);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tLo_, tW_);
            rt_.alus(e, coreId_, DataType::kU32, AluOp::kAdd, tW1_,
                     tW_, 1);
            rt_.ild(e, coreId_, DataType::kU32, rowPtr_, tHi_, tW1_);
            chunkConsumed_ = 0;
            chunkLeft_ = chunkCount_;
        }

        std::uint32_t consumed = 0;
        rt_.rng(e, coreId_, tO_, tJ_, tLo_, tHi_, chunkConsumed_,
                &consumed);
        dx_assert(consumed > 0, "adjacency list longer than a tile");

        // Gather target vertices in place over the fused j tile.
        rt_.ild(e, coreId_, DataType::kU32, col_, tJ_, tJ_);
        rt_.ild(e, coreId_, DataType::kU32, depth_, tCond_, tJ_);
        rt_.alus(e, coreId_, DataType::kU32, AluOp::kEq, tCond_,
                 tCond_, d_ - 1);
        // f[W[TO]]: W ids into tW1_, then gather f through them.
        rt_.ild(e, coreId_, DataType::kU32,
                wArr_ + Addr{chunkBegin_} * 4, tW1_, tO_);
        rt_.ild(e, coreId_, DataType::kU32, f_, tW1_, tW1_);
        // sigma[v] into tO_ (outer ids no longer needed this batch).
        rt_.ild(e, coreId_, DataType::kU32, sigma_, tO_, tJ_, tCond_);
        // value = sigma[v] * f[w]
        rt_.aluv(e, coreId_, DataType::kU32, AluOp::kMul, tO_, tO_,
                 tW1_, tCond_);
        const std::uint64_t tok =
            rt_.irmw(e, coreId_, DataType::kU32, AluOp::kAdd, delta_,
                     tJ_, tO_, tCond_);
        rt_.wait(e, tok);

        chunkConsumed_ += consumed;
        chunkLeft_ -= consumed;
        pos_ += consumed;
    }

  private:
    runtime::Dx100Runtime &rt_;
    int coreId_;
    Addr rowPtr_, col_, depth_, sigma_, delta_, f_, wArr_;
    std::uint32_t d_;
    std::size_t pos_, end_;
    std::size_t chunkBegin_ = 0;
    std::uint32_t chunkCount_ = 0;
    std::uint32_t chunkConsumed_ = 0;
    std::uint32_t chunkLeft_ = 0;
    unsigned tW_, tW1_, tLo_, tHi_, tO_, tJ_, tCond_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
BetweennessCentrality::makeKernel(sim::System &sys, unsigned core,
                                  bool dx100)
{
    const auto [begin, end] =
        coreSlice(level_.size(), core, sys.cores());
    if (!dx100) {
        return std::make_unique<BcBaseKernel>(
            sys.memory(), g_, level_, w_, rowPtr_, col_, depth_,
            sigma_, delta_, f_, d_, begin, end);
    }
    return std::make_unique<BcDxKernel>(
        *sys.runtimeFor(core), static_cast<int>(core), rowPtr_, col_,
        depth_, sigma_, delta_, f_, w_, d_, begin, end);
}

bool
BetweennessCentrality::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    std::vector<std::uint32_t> expect(g_.nodes, 0);
    for (const std::uint32_t w : level_) {
        const auto fw = mem.read<std::uint32_t>(f_ + Addr{w} * 4);
        for (std::uint32_t j = g_.rowPtr[w]; j < g_.rowPtr[w + 1];
             ++j) {
            const std::uint32_t v = g_.col[j];
            if (hostDepth_[v] == d_ - 1) {
                expect[v] +=
                    mem.read<std::uint32_t>(sigma_ + Addr{v} * 4) * fw;
            }
        }
    }
    for (std::uint32_t v = 0; v < g_.nodes; ++v) {
        if (mem.read<std::uint32_t>(delta_ + Addr{v} * 4) != expect[v])
            return false;
    }
    return true;
}

} // namespace dx::wl

#include "workloads/spatter.hh"

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace dx::wl
{

using runtime::DataType;

namespace
{

void
registerAll(sim::System &sys, Addr base, Addr size)
{
    for (unsigned i = 0; sys.runtime(i); ++i)
        sys.runtime(i)->registerRegion(base, size);
}

/**
 * Stored value is a pure function of the target index, so duplicate
 * scatter targets are write-idempotent: any execution order (or any
 * winner among racing cores) produces the same final memory.
 */
std::uint32_t
valueFor(std::uint32_t target)
{
    return target * 2246822519u + 374761393u;
}

} // namespace

SpatterXrage::SpatterXrage(Scale s)
    : n_(s.of(1 << 20)), domain_(s.of(1 << 24))
{
    pattern_ = makeXragePattern(static_cast<std::uint32_t>(n_),
                                static_cast<std::uint32_t>(domain_),
                                777);
}

void
SpatterXrage::init(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    SimAllocator &alloc = sys.allocator();

    a_ = alloc.alloc(domain_ * 4);
    b_ = alloc.alloc(n_ * 4);
    v_ = alloc.alloc(n_ * 4);
    for (std::size_t i = 0; i < n_; ++i) {
        mem.write<std::uint32_t>(b_ + i * 4, pattern_[i]);
        mem.write<std::uint32_t>(v_ + i * 4, valueFor(pattern_[i]));
    }

    registerAll(sys, a_, domain_ * 4);
    registerAll(sys, b_, n_ * 4);
    registerAll(sys, v_, n_ * 4);

    // The previous timestep's sweep wrote the target field.
    sys.warmLlc(a_, domain_ * 4);
}

namespace
{

class SpatterBaseKernel : public LoopKernel
{
  public:
    SpatterBaseKernel(SimMemory &mem, Addr a, Addr b, Addr v,
                      std::size_t bg, std::size_t en)
        : LoopKernel(bg, en), mem_(mem), a_(a), b_(b), v_(v)
    {}

  protected:
    void
    emitIteration(cpu::OpEmitter &e, std::size_t i) override
    {
        const auto idx = mem_.read<std::uint32_t>(b_ + i * 4);
        const auto val = mem_.read<std::uint32_t>(v_ + i * 4);
        const SeqNum li = e.load(b_ + i * 4, 4, pc::kIndex, idx);
        const SeqNum lv = e.load(v_ + i * 4, 4, pc::kValue, val);
        const SeqNum calc = e.intOp(1, li);
        mem_.write<std::uint32_t>(a_ + Addr{idx} * 4, val);
        e.store(a_ + Addr{idx} * 4, 4, pc::kTarget, calc, lv);
        e.intOp();
    }

  private:
    SimMemory &mem_;
    Addr a_, b_, v_;
};

} // namespace

std::unique_ptr<cpu::Kernel>
SpatterXrage::makeKernel(sim::System &sys, unsigned core, bool dx100)
{
    const auto [begin, end] = coreSlice(n_, core, sys.cores());
    if (!dx100) {
        return std::make_unique<SpatterBaseKernel>(sys.memory(), a_,
                                                   b_, v_, begin, end);
    }

    auto *rt = sys.runtimeFor(core);
    const std::uint32_t T = rt->tileElems();
    const int coreId = static_cast<int>(core);

    struct Bufs
    {
        unsigned idx[2];
        unsigned val[2];
    };
    auto bufs = std::make_shared<Bufs>();
    for (int k = 0; k < 2; ++k) {
        bufs->idx[k] = rt->allocTile();
        bufs->val[k] = rt->allocTile();
    }

    const Addr a = a_, b = b_, v = v_;
    auto emitTile = [rt, coreId, bufs, a, b, v](cpu::OpEmitter &e,
                                                unsigned buf,
                                                std::size_t tb,
                                                std::uint32_t cnt) {
        rt->sld(e, coreId, DataType::kU32, b, bufs->idx[buf], tb, cnt);
        rt->sld(e, coreId, DataType::kU32, v, bufs->val[buf], tb, cnt);
        return rt->ist(e, coreId, DataType::kU32, a, bufs->idx[buf],
                       bufs->val[buf]);
    };
    return std::make_unique<TiledDxKernel>(*rt, begin, end, T,
                                           emitTile);
}

bool
SpatterXrage::verify(sim::System &sys)
{
    SimMemory &mem = sys.memory();
    for (std::size_t i = 0; i < n_; ++i) {
        const std::uint32_t t = pattern_[i];
        if (mem.read<std::uint32_t>(a_ + Addr{t} * 4) != valueFor(t))
            return false;
    }
    return true;
}

} // namespace dx::wl

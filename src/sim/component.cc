#include "sim/component.hh"

#include <utility>

#include "common/logging.hh"
#include "sim/stat_registry.hh"

namespace dx
{

Component::Component(std::string name) : name_(std::move(name)) {}

void
Component::adopt(Component &child)
{
    dx_assert(child.parent_ == nullptr,
              "component ", child.name_, " already has a parent");
    dx_assert(&child != this, "component cannot adopt itself");
    child.parent_ = this;
    children_.push_back(&child);
}

void
Component::rename(std::string name)
{
    dx_assert(parent_ == nullptr,
              "cannot rename ", name_, " after adoption");
    name_ = std::move(name);
}

std::string
Component::path() const
{
    if (parent_ == nullptr)
        return name_;
    return parent_->path() + "." + name_;
}

void
registerTreeStats(const Component &root, StatRegistry &reg)
{
    forEachComponent(root, [&](const Component &c) {
        c.registerStats(reg);
    });
}

} // namespace dx

/**
 * @file
 * Reproduces paper Fig. 8(a): all-hit microbenchmarks with streaming
 * indices (B[i] = i). Paper speedups: Gather-SPD 1.2x, Gather-Full
 * 3.2x, RMW vs atomic baseline 17.8x, RMW vs non-atomic 3.7x, Scatter
 * 6.6x (single-core configs).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/run_matrix.hh"
#include "workloads/micro.hh"

using namespace dx;
using namespace dx::sim;
using namespace dx::wl;

namespace
{

constexpr std::size_t kN = std::size_t{1} << 18;

struct Row
{
    std::string name;
    std::string baseTag;
    std::string dxTag;
    std::string paper;
};

const std::vector<Row> kRows = {
    {"Gather-SPD", "baseline", "dx100", "1.2x"},
    {"Gather-Full", "baseline", "dx100", "3.2x"},
    {"RMW-Atomic", "baseline", "dx100", "17.8x"},
    {"RMW-NoAtom", "baseline", "dx100", "3.7x"},
    {"Scatter", "baseline_1c", "dx100_1c", "6.6x"},
};

WorkloadSpec
micro(std::string name, wl::WorkloadFactory make)
{
    // Fixed-size micros ignore Scale: run fresh, never cached.
    return {std::move(name), "micro", std::move(make), false};
}

RunMatrix
allHitMatrix()
{
    RunMatrix m("allhit_micro");
    m.add(micro("Gather-SPD", [](Scale) {
        return std::make_unique<GatherMicro>(GatherMicro::Mode::kSpd,
                                             kN);
    }));
    m.add(micro("Gather-Full", [](Scale) {
        return std::make_unique<GatherMicro>(GatherMicro::Mode::kFull,
                                             kN);
    }));
    m.add(micro("RMW-Atomic", [](Scale) {
        return std::make_unique<RmwMicro>(kN, /*atomicBaseline=*/true);
    }));
    m.add(micro("RMW-NoAtom", [](Scale) {
        return std::make_unique<RmwMicro>(kN, false);
    }));
    m.add(micro("Scatter", [](Scale) {
        return std::make_unique<ScatterMicro>(kN, /*streaming=*/true);
    }));

    m.addConfig("baseline", SystemConfig::baseline());
    m.addConfig("dx100", SystemConfig::withDx100());

    // Scatter cannot be parallelized safely: 1-core configs, with the
    // paper's 4MB/2MB LLC split.
    SystemConfig bc = SystemConfig::baseline(1);
    bc.llc.sizeBytes = 4 * 1024 * 1024;
    bc.llc.assoc = 16;
    m.addConfig("baseline_1c", bc);
    SystemConfig dc = SystemConfig::withDx100(1);
    dc.llc.sizeBytes = 2 * 1024 * 1024;
    dc.llc.assoc = 16;
    m.addConfig("dx100_1c", dc);

    for (const auto &row : kRows)
        m.limit(row.name, {row.baseTag, row.dxTag});
    return m;
}

void
formatAllHitTable(const MatrixResult &r)
{
    std::printf("%-12s %9s %9s\n", "kernel", "speedup", "paper");
    for (const auto &row : kRows) {
        const CellResult &base = r.cell(row.name, row.baseTag);
        const CellResult &dx = r.cell(row.name, row.dxTag);
        if (!base.ok || !dx.ok) {
            std::printf("%-12s %9s %9s\n", row.name.c_str(), "FAILED",
                        row.paper.c_str());
            continue;
        }
        std::printf("%-12s %8.2fx %9s\n", row.name.c_str(),
                    static_cast<double>(base.stats.cycles) /
                        dx.stats.cycles,
                    row.paper.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const ExpOptions opt = ExpOptions::parse(argc, argv);
    printBenchHeader("Fig. 8(a) - all-hit microbenchmarks", opt);

    const MatrixResult result = allHitMatrix().run(opt);
    formatAllHitTable(result);
    maybeWriteJson(result, "fig08a", opt);
    return result.failures() == 0 ? 0 : 1;
}

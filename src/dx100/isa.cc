#include "dx100/isa.hh"

#include <sstream>

#include "common/logging.hh"

namespace dx::dx100
{

namespace
{

/** Pack a field into the low bits of a word being built. */
void
pack(std::uint64_t &word, unsigned &shift, std::uint64_t value,
     unsigned bits)
{
    dx_assert(value < (std::uint64_t{1} << bits), "field overflow");
    word |= value << shift;
    shift += bits;
}

std::uint64_t
unpack(std::uint64_t word, unsigned &shift, unsigned bits)
{
    const std::uint64_t v = (word >> shift) &
                            ((std::uint64_t{1} << bits) - 1);
    shift += bits;
    return v;
}

} // namespace

std::array<std::uint64_t, 3>
encode(const Instruction &instr)
{
    std::uint64_t w0 = 0;
    unsigned s = 0;
    pack(w0, s, static_cast<std::uint64_t>(instr.op), 4);
    pack(w0, s, static_cast<std::uint64_t>(instr.dtype), 3);
    pack(w0, s, static_cast<std::uint64_t>(instr.aluOp), 5);
    pack(w0, s, instr.td, 6);
    pack(w0, s, instr.td2, 6);
    pack(w0, s, instr.ts1, 6);
    pack(w0, s, instr.ts2, 6);
    pack(w0, s, instr.tc, 6);
    pack(w0, s, instr.rs1, 6);
    pack(w0, s, instr.rs2, 6);
    pack(w0, s, instr.rs3, 6);
    dx_assert(s <= 64, "word 0 overflow");
    return {w0, instr.base, instr.imm};
}

Instruction
decode(const std::array<std::uint64_t, 3> &words)
{
    Instruction instr;
    unsigned s = 0;
    const std::uint64_t w0 = words[0];
    instr.op = static_cast<Opcode>(unpack(w0, s, 4));
    instr.dtype = static_cast<DataType>(unpack(w0, s, 3));
    instr.aluOp = static_cast<AluOp>(unpack(w0, s, 5));
    instr.td = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.td2 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.ts1 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.ts2 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.tc = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.rs1 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.rs2 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.rs3 = static_cast<std::uint8_t>(unpack(w0, s, 6));
    instr.base = words[1];
    instr.imm = words[2];
    return instr;
}

std::string
to_string(Opcode op)
{
    switch (op) {
      case Opcode::kIld: return "ILD";
      case Opcode::kIst: return "IST";
      case Opcode::kIrmw: return "IRMW";
      case Opcode::kSld: return "SLD";
      case Opcode::kSst: return "SST";
      case Opcode::kAluv: return "ALUV";
      case Opcode::kAlus: return "ALUS";
      case Opcode::kRng: return "RNG";
    }
    return "?";
}

std::string
to_string(DataType t)
{
    switch (t) {
      case DataType::kU32: return "u32";
      case DataType::kI32: return "i32";
      case DataType::kF32: return "f32";
      case DataType::kU64: return "u64";
      case DataType::kI64: return "i64";
      case DataType::kF64: return "f64";
    }
    return "?";
}

std::string
to_string(AluOp op)
{
    switch (op) {
      case AluOp::kNone: return "none";
      case AluOp::kAdd: return "add";
      case AluOp::kSub: return "sub";
      case AluOp::kMul: return "mul";
      case AluOp::kMin: return "min";
      case AluOp::kMax: return "max";
      case AluOp::kAnd: return "and";
      case AluOp::kOr: return "or";
      case AluOp::kXor: return "xor";
      case AluOp::kShr: return "shr";
      case AluOp::kShl: return "shl";
      case AluOp::kLt: return "lt";
      case AluOp::kLe: return "le";
      case AluOp::kGt: return "gt";
      case AluOp::kGe: return "ge";
      case AluOp::kEq: return "eq";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << to_string(op) << "." << to_string(dtype);
    if (aluOp != AluOp::kNone)
        os << "." << to_string(aluOp);
    auto tile = [&os](const char *name, std::uint8_t t) {
        if (t != kNoOperand)
            os << " " << name << t;
    };
    tile(" td", td);
    tile(" td2", td2);
    tile(" ts1", ts1);
    tile(" ts2", ts2);
    tile(" tc", tc);
    os << " base=0x" << std::hex << base << std::dec << " imm=" << imm;
    return os.str();
}

} // namespace dx::dx100

/**
 * @file
 * Golden functional model of DX100.
 *
 * Executes instruction semantics against SimMemory and a scratchpad
 * mirror. The runtime API uses one instance as its eager mirror (values
 * are produced at emission time; see DESIGN.md), and tests validate the
 * ISA against it directly.
 */

#ifndef DX_DX100_FUNCTIONAL_HH
#define DX_DX100_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "common/sim_memory.hh"
#include "common/types.hh"
#include "dx100/isa.hh"

namespace dx::dx100
{

/** Scalar fields packed into the imm word of stream instructions. */
struct StreamScalars
{
    std::uint64_t start = 0; //!< first element index (32 bits)
    std::uint32_t count = 0; //!< elements to access (20 bits)
    std::int32_t stride = 1; //!< element stride (signed 12 bits)
};

/** Pack stream scalars into imm (start:32 | count:20 | stride:12). */
std::uint64_t packStream(const StreamScalars &s);

/** Unpack stream scalars from imm. */
StreamScalars unpackStream(std::uint64_t imm);

/** Apply a (typed) ALU operation to two raw 64-bit lane values. */
std::uint64_t applyAluOp(AluOp op, DataType t, std::uint64_t a,
                         std::uint64_t b);

class Functional
{
  public:
    struct Tile
    {
        std::vector<std::uint64_t> data;
        std::uint32_t size = 0;
    };

    Functional(SimMemory &mem, unsigned numTiles = 32,
               unsigned tileElems = 16384, unsigned numRegs = 32);

    void writeReg(unsigned r, std::uint64_t v);
    std::uint64_t reg(unsigned r) const;

    const Tile &tile(unsigned t) const;
    Tile &tileRef(unsigned t);

    unsigned tileElems() const { return tileElems_; }
    unsigned numTiles() const { return static_cast<unsigned>(
        tiles_.size()); }

    /** Execute one instruction's semantics. */
    void execute(const Instruction &instr);

  private:
    void execIndirect(const Instruction &instr);
    void execStream(const Instruction &instr);
    void execAlu(const Instruction &instr);
    void execRange(const Instruction &instr);

    /** Condition value for iteration i (true if no condition tile). */
    bool condAt(const Instruction &instr, std::uint32_t i) const;

    std::uint64_t loadElem(Addr addr, unsigned bytes) const;
    void storeElem(Addr addr, unsigned bytes, std::uint64_t v);

    SimMemory &mem_;
    unsigned tileElems_;
    std::vector<Tile> tiles_;
    std::vector<std::uint64_t> regs_;
};

} // namespace dx::dx100

#endif // DX_DX100_FUNCTIONAL_HH

/**
 * @file
 * Parameterized cache property tests: monotonicity of miss rates in
 * capacity and associativity, write-back conservation (dirty data is
 * never lost), and inclusive-hierarchy invariants under random
 * traffic.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_port.hh"
#include "common/rng.hh"
#include "mem/dram_system.hh"

using namespace dx;
using namespace dx::cache;

namespace
{

/** Run a random working-set trace; return demand misses. */
std::uint64_t
missesFor(std::uint64_t cacheBytes, unsigned assoc,
          std::uint64_t workingSet, std::uint64_t accesses,
          std::uint64_t seed)
{
    mem::DramSystem::Config dc;
    dc.ctrl.timings.refreshEnabled = false;
    mem::DramSystem dram(dc);
    DramPort port(dram);

    Cache::Config cfg;
    cfg.sizeBytes = cacheBytes;
    cfg.assoc = assoc;
    cfg.latency = 2;
    cfg.mshrs = 16;
    Cache cache(cfg, &port);

    struct Sink : public CacheRespSink
    {
        std::uint64_t done = 0;
        void complete(const std::uint64_t &) override { ++done; }
    } sink;

    Rng rng(seed);
    std::uint64_t issued = 0;
    while (sink.done < accesses) {
        if (issued < accesses && cache.canAccept()) {
            CacheReq req;
            req.addr = lineAlign(rng.below(workingSet));
            req.tag = issued++;
            req.sink = &sink;
            cache.request(req);
        }
        cache.tick();
        dram.tick();
    }
    return cache.stats().demandMisses.value();
}

} // namespace

TEST(CacheProperties, MissRateMonotoneInCapacity)
{
    const std::uint64_t ws = 256 * 1024;
    std::uint64_t prev = ~std::uint64_t{0};
    for (std::uint64_t size : {32u * 1024, 64u * 1024, 128u * 1024,
                               512u * 1024}) {
        const std::uint64_t m = missesFor(size, 8, ws, 20000, 42);
        EXPECT_LE(m, prev) << "size " << size;
        prev = m;
    }
    // The working set fits the largest cache: only cold misses remain.
    EXPECT_LE(prev, ws / kLineBytes + 16);
}

TEST(CacheProperties, HigherAssociativityNeverMuchWorse)
{
    // With a random trace, conflict misses shrink as associativity
    // grows (allowing small noise).
    const std::uint64_t ws = 128 * 1024;
    const std::uint64_t direct = missesFor(64 * 1024, 1, ws, 20000, 7);
    const std::uint64_t assoc8 = missesFor(64 * 1024, 8, ws, 20000, 7);
    EXPECT_LE(assoc8, direct + direct / 10);
}

TEST(CacheProperties, DirtyEvictionsAllReachMemory)
{
    // Write every line of a 4x-capacity region, then read a disjoint
    // region to force eviction of everything dirty: DRAM must receive
    // exactly one write per dirty line.
    mem::DramSystem::Config dc;
    dc.ctrl.timings.refreshEnabled = false;
    mem::DramSystem dram(dc);
    DramPort port(dram);

    Cache::Config cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = 4;
    cfg.latency = 2;
    cfg.mshrs = 8;
    Cache cache(cfg, &port);

    struct Sink : public CacheRespSink
    {
        std::uint64_t done = 0;
        void complete(const std::uint64_t &) override { ++done; }
    } sink;

    auto pump = [&](Addr base, std::uint64_t lines, bool write) {
        std::uint64_t issued = 0;
        const std::uint64_t start = sink.done;
        while (sink.done < start + lines) {
            if (issued < lines && cache.canAccept()) {
                CacheReq req;
                req.addr = base + issued * kLineBytes;
                req.write = write;
                req.fullLine = write;
                req.tag = issued++;
                req.sink = &sink;
                cache.request(req);
            }
            cache.tick();
            dram.tick();
        }
    };

    const std::uint64_t dirtyLines = 1024; // 64 KiB of dirty data
    pump(0, dirtyLines, true);
    pump(1 << 20, 2048, false); // evict everything
    for (int t = 0; t < 200000 && !(dram.idle() && !cache.busy()); ++t) {
        cache.tick();
        dram.tick();
    }

    std::uint64_t writes = 0;
    for (unsigned c = 0; c < dram.channels(); ++c)
        writes += dram.channel(c).stats().writesServed.value();
    EXPECT_EQ(writes, dirtyLines);
}

TEST(CacheProperties, InclusiveHierarchyNeverHoldsLineAboveLlc)
{
    // Random traffic through L1->LLC with a tiny inclusive LLC: at any
    // checkpoint, every valid L1 line must be present in the LLC.
    mem::DramSystem::Config dc;
    dc.ctrl.timings.refreshEnabled = false;
    mem::DramSystem dram(dc);
    DramPort port(dram);

    Cache::Config llcCfg;
    llcCfg.name = "LLC";
    llcCfg.sizeBytes = 8 * 1024;
    llcCfg.assoc = 4;
    llcCfg.latency = 4;
    llcCfg.mshrs = 16;
    llcCfg.inclusiveRoot = true;
    Cache llc(llcCfg, &port);

    Cache::Config l1Cfg;
    l1Cfg.name = "L1";
    l1Cfg.sizeBytes = 4 * 1024;
    l1Cfg.assoc = 4;
    l1Cfg.latency = 1;
    l1Cfg.mshrs = 8;
    Cache l1(l1Cfg, &llc);
    llc.addChild(&l1);

    struct Sink : public CacheRespSink
    {
        void complete(const std::uint64_t &) override {}
    } sink;

    Rng rng(11);
    std::vector<Addr> touched;
    for (int step = 0; step < 20000; ++step) {
        if (l1.canAccept() && rng.below(2)) {
            CacheReq req;
            req.addr = lineAlign(rng.below(256 * 1024));
            req.sink = &sink;
            l1.request(req);
            touched.push_back(lineAlign(req.addr));
        }
        l1.tick();
        llc.tick();
        dram.tick();

        if (step % 1000 == 999) {
            // Inclusion is a tag-store property: a line *installed*
            // in the L1 must be installed (or mid-fill) in the LLC.
            for (const Addr line : touched) {
                if (l1.tagsHold(line)) {
                    EXPECT_TRUE(llc.containsLine(line))
                        << "inclusion violated for 0x" << std::hex
                        << line;
                }
            }
        }
    }
}
